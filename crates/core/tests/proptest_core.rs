//! Property tests for lingua-core: Data ↔ MangaScript round-trips, DSL
//! parser totality, and pipeline pretty/parse round-trips.

use lingua_core::data::Data;
use lingua_core::modules::ModuleKind;
use lingua_core::pipeline::{LogicalOp, Pipeline};
use proptest::prelude::*;

fn scalar() -> impl Strategy<Value = Data> {
    prop_oneof![
        Just(Data::Null),
        any::<bool>().prop_map(Data::Bool),
        (-1_000_000i64..1_000_000).prop_map(Data::Int),
        (-1e6f64..1e6).prop_map(|f| Data::Float((f * 16.0).round() / 16.0)),
        "[ -~]{0,24}".prop_map(Data::Str),
    ]
}

fn data(depth: u32) -> impl Strategy<Value = Data> {
    scalar().prop_recursive(depth, 48, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Data::List),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Data::Map),
        ]
    })
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
        .prop_filter("not a DSL keyword", |s| !matches!(s.as_str(), "pipeline" | "using" | "with"))
}

fn logical_op() -> impl Strategy<Value = LogicalOp> {
    (
        ident(),
        prop::option::of(ident()),
        prop::collection::vec(ident(), 0..3),
        prop::option::of(prop_oneof![
            Just(ModuleKind::Custom),
            Just(ModuleKind::Llm),
            Just(ModuleKind::Llmgc),
        ]),
        prop::collection::btree_map("[a-z]{1,6}", "[ -~&&[^\\\\]]{0,16}", 0..3),
    )
        .prop_map(|(op_type, output, inputs, kind, params)| {
            let mut op = LogicalOp::new(op_type);
            if let Some(output) = output {
                op.output = output;
            }
            op.inputs = inputs;
            op.kind = kind;
            op.params = params;
            op
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Data survives the trip through MangaScript values (scripts can consume
    /// and produce any pipeline value losslessly).
    #[test]
    fn data_script_roundtrip(d in data(3)) {
        let back = Data::from_script(&d.to_script());
        prop_assert!(back.loose_eq(&d), "{back:?} vs {d:?}");
    }

    /// The DSL parser is total — no panic on arbitrary input.
    #[test]
    fn dsl_parser_is_total(src in "[ -~\n]{0,160}") {
        let _ = Pipeline::parse(&src);
    }

    /// pretty(pipeline) re-parses to the identical pipeline.
    #[test]
    fn pipeline_pretty_roundtrip(name in ident(), ops in prop::collection::vec(logical_op(), 0..5)) {
        let pipeline = Pipeline { name, ops };
        let pretty = pipeline.pretty();
        let reparsed = Pipeline::parse(&pretty)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{pretty}"));
        prop_assert_eq!(reparsed, pipeline);
    }

    /// Data rendering is total and loose_eq is reflexive.
    #[test]
    fn data_render_total_and_eq_reflexive(d in data(3)) {
        let _ = d.render();
        prop_assert!(d.loose_eq(&d));
    }
}
