//! Property tests for trace well-formedness under `parallel_map`: spans
//! emitted concurrently from scoped worker threads must always reassemble
//! into a well-formed forest — every span closed exactly once, every child
//! strictly nested inside its parent's logical-clock window, timestamps
//! unique — and per-span usage rollups must reconcile with the workload.

use lingua_core::executor::parallel_map;
use lingua_llm_sim::Usage;
use lingua_trace::{ring_tracer, SpanKind, SpanNode, TraceTree};
use proptest::prelude::*;
use proptest::test_runner::TestCaseResult;

/// A child's clock window must sit strictly inside its parent's, all the way
/// down — "parent opens before child, child closes before parent".
fn assert_nested(node: &SpanNode) -> TestCaseResult {
    for child in &node.children {
        prop_assert!(child.begin_seq > node.begin_seq, "child begins after its parent");
        prop_assert!(child.end_seq < node.end_seq, "child ends before its parent");
        assert_nested(child)?;
    }
    for instant in &node.instants {
        prop_assert!(instant.seq > node.begin_seq && instant.seq < node.end_seq);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary workloads over arbitrary thread counts: the interleaved
    /// event stream always rebuilds into item-shaped spans with exact usage.
    #[test]
    fn parallel_map_traces_stay_well_formed(
        items in prop::collection::vec((1u32..500, 1u32..200), 0..24),
        threads in 0usize..9,
    ) {
        let (tracer, sink) = ring_tracer(1 << 12);
        let outputs = parallel_map(&items, threads, |&(tokens_in, tokens_out)| {
            let mut op = tracer.span(SpanKind::Op, "work");
            op.attr("tokens_in", tokens_in.to_string());
            tracer.instant(SpanKind::Op, "checkpoint", Vec::new);
            {
                let mut call = tracer.span(SpanKind::LlmCall, "complete");
                let mut usage = Usage::default();
                usage.record(tokens_in as usize, tokens_out as usize);
                call.set_usage(usage);
            }
            tokens_in as u64 + tokens_out as u64
        });
        prop_assert_eq!(outputs.len(), items.len());
        prop_assert_eq!(tracer.dropped(), 0);

        // Well-formedness: build() enforces unique timestamps, every span
        // closed exactly once, and parents open at child emission.
        let tree = TraceTree::build(&sink.events()).expect("well-formed under concurrency");
        prop_assert_eq!(tree.roots.len(), items.len(), "one op root per item");
        for root in &tree.roots {
            prop_assert_eq!(root.kind, SpanKind::Op);
            prop_assert_eq!(root.children.len(), 1, "each op wraps exactly one llm call");
            prop_assert_eq!(root.children[0].kind, SpanKind::LlmCall);
            prop_assert_eq!(root.instants.len(), 1, "the checkpoint lands under its op");
            assert_nested(root)?;
        }

        // Cost attribution: every item's usage shows up exactly once, and
        // the forest total is the workload total.
        let mut expected = Usage::default();
        for &(tokens_in, tokens_out) in &items {
            expected.record(tokens_in as usize, tokens_out as usize);
        }
        prop_assert_eq!(tree.total_usage(), expected);

        // Per-root rollups match per-item bills: the begin-edge attr keys
        // each root back to its item's input size.
        for root in &tree.roots {
            let tokens_in: u64 = root.attrs["tokens_in"].parse().unwrap();
            prop_assert_eq!(root.rollup().tokens_in, tokens_in);
        }
    }

    /// The logical clock never reuses a timestamp, no matter how many
    /// threads race on it — checked over the raw event stream, not the tree.
    #[test]
    fn logical_clock_is_strictly_monotone_per_stream(
        n in 0usize..64,
        threads in 0usize..9,
    ) {
        let (tracer, sink) = ring_tracer(1 << 12);
        let items: Vec<usize> = (0..n).collect();
        parallel_map(&items, threads, |&i| {
            tracer.instant(SpanKind::Module, "tick", || vec![("i".into(), i.to_string())]);
        });
        let mut seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        prop_assert_eq!(seqs.len(), n);
        seqs.sort_unstable();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "timestamps are unique");
    }
}
