//! External tools that modules (especially LLMGC scripts, via `call_tool`)
//! can use — the "external tool APIs" users provide in §4.2 to sharpen
//! generated code.

use lingua_script::Value as ScriptValue;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A tool: a named host function over script values.
pub type ToolFn = dyn Fn(&[ScriptValue]) -> Result<ScriptValue, String> + Send + Sync;

/// A registry of tools, cheap to clone and share.
#[derive(Clone, Default)]
pub struct ToolRegistry {
    tools: BTreeMap<String, Arc<ToolFn>>,
}

impl ToolRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tool under `name` (replacing any previous one).
    pub fn register<F>(&mut self, name: impl Into<String>, tool: F)
    where
        F: Fn(&[ScriptValue]) -> Result<ScriptValue, String> + Send + Sync + 'static,
    {
        self.tools.insert(name.into(), Arc::new(tool));
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tools.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tools.keys().map(|s| s.as_str())
    }

    /// Invoke a tool.
    pub fn call(&self, name: &str, args: &[ScriptValue]) -> Result<ScriptValue, String> {
        match self.tools.get(name) {
            Some(tool) => tool(args),
            None => Err(format!("unknown tool `{name}`")),
        }
    }

    /// Register a constant list tool (e.g. a vocabulary).
    pub fn register_list(&mut self, name: impl Into<String>, items: Vec<String>) {
        let values: Vec<ScriptValue> = items.into_iter().map(ScriptValue::Str).collect();
        self.register(name, move |_args| Ok(ScriptValue::List(values.clone())));
    }
}

impl std::fmt::Debug for ToolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolRegistry")
            .field("tools", &self.tools.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Per-language stopword lists — the multilingual tool of §4.2. Backed by the
/// world's function-word lexicons when constructed via
/// [`stopwords_tool_from_world`].
pub fn stopwords_tool_from_world(
    world: &lingua_dataset::world::WorldSpec,
) -> impl Fn(&[ScriptValue]) -> Result<ScriptValue, String> + Send + Sync + 'static {
    let by_lang: BTreeMap<String, Vec<String>> = world
        .lexicons
        .iter()
        .map(|(lang, lex)| (lang.code().to_string(), lex.function_words.clone()))
        .collect();
    move |args: &[ScriptValue]| {
        let code = args
            .first()
            .and_then(|v| v.as_str())
            .ok_or_else(|| "stopwords expects a language code".to_string())?;
        let words = by_lang.get(code).or_else(|| by_lang.get("en")).cloned().unwrap_or_default();
        Ok(ScriptValue::List(words.into_iter().map(ScriptValue::Str).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut registry = ToolRegistry::new();
        registry.register("double", |args| {
            let n = args.first().and_then(|v| v.as_int()).ok_or("double expects an int")?;
            Ok(ScriptValue::Int(n * 2))
        });
        assert!(registry.contains("double"));
        assert_eq!(registry.call("double", &[ScriptValue::Int(4)]), Ok(ScriptValue::Int(8)));
        assert!(registry.call("double", &[]).is_err());
        assert!(registry.call("missing", &[]).is_err());
    }

    #[test]
    fn list_tools() {
        let mut registry = ToolRegistry::new();
        registry.register_list("vocabulary", vec!["Sony".into(), "Canon".into()]);
        let result = registry.call("vocabulary", &[]).unwrap();
        assert_eq!(
            result,
            ScriptValue::List(vec![
                ScriptValue::Str("Sony".into()),
                ScriptValue::Str("Canon".into())
            ])
        );
    }

    #[test]
    fn stopwords_tool_serves_languages() {
        let world = lingua_dataset::world::WorldSpec::generate(3);
        let tool = stopwords_tool_from_world(&world);
        let fr = tool(&[ScriptValue::Str("fr".into())]).unwrap();
        let fr_words = fr.as_list().unwrap();
        assert!(fr_words.iter().any(|w| w.as_str() == Some("le")));
        // Unknown language falls back to English.
        let xx = tool(&[ScriptValue::Str("xx".into())]).unwrap();
        assert!(xx.as_list().unwrap().iter().any(|w| w.as_str() == Some("the")));
        assert!(tool(&[]).is_err());
    }

    #[test]
    fn registry_clone_shares_tools() {
        let mut registry = ToolRegistry::new();
        registry.register_list("x", vec!["a".into()]);
        let cloned = registry.clone();
        assert!(cloned.contains("x"));
    }
}
