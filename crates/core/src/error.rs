//! The crate-wide error type.

use lingua_llm_sim::CancelReason;
use std::fmt;

/// The runtime traps a supervised script execution can hit. Each kind is a
/// *bounded-resource* stop — distinct from a bug in the program — and serve
/// counts them separately in its metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// The program exhausted its own fuel budget (a runaway loop).
    OutOfFuel,
    /// The program exceeded the interpreter's call-depth limit (runaway
    /// recursion, stopped before it can overflow the host thread's stack —
    /// a stack overflow aborts the process and cannot be caught).
    Recursion,
    /// The program ran out of fuel because the *job's deadline* cut the
    /// budget below the program's own allowance — the job was too slow, not
    /// the program too hungry.
    DeadlineFuel,
}

impl TrapKind {
    /// Stable lowercase label (used in trace attributes and reports).
    pub fn label(&self) -> &'static str {
        match self {
            TrapKind::OutOfFuel => "out_of_fuel",
            TrapKind::Recursion => "recursion",
            TrapKind::DeadlineFuel => "deadline_fuel",
        }
    }
}

/// Errors from compiling or executing pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The textual DSL failed to parse.
    Dsl { line: usize, message: String },
    /// A logical operator could not be bound to any physical module.
    Compile(String),
    /// A module failed at execution time.
    Module { module: String, message: String },
    /// A referenced pipeline variable is missing.
    UnknownVariable(String),
    /// Input data had the wrong shape for a module.
    DataShape { expected: &'static str, got: String },
    /// The connector rejected a query outside the allowlist.
    ConnectorDenied(String),
    /// Data-layer error (CSV, query engine, schema).
    Data(String),
    /// Script-layer error from an LLMGC module.
    Script(String),
    /// Validation gave up after exhausting its budgets.
    ValidationExhausted { module: String, cycles: usize, regenerations: usize },
    /// A module holds state that cannot be replicated for concurrent serving
    /// (see `Module::fresh_instance`).
    NotReplicable { module: String },
    /// Execution stopped cooperatively: the job's deadline passed or it was
    /// cancelled. Carries whatever the run produced so far only in the form
    /// of already-metered usage — the data output is discarded.
    Cancelled { reason: CancelReason },
    /// A script execution hit a bounded-resource trap (see [`TrapKind`]).
    Trap { module: String, trap: TrapKind },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dsl { line, message } => write!(f, "DSL error at line {line}: {message}"),
            CoreError::Compile(message) => write!(f, "compile error: {message}"),
            CoreError::Module { module, message } => {
                write!(f, "module `{module}` failed: {message}")
            }
            CoreError::UnknownVariable(name) => write!(f, "unknown pipeline variable `{name}`"),
            CoreError::DataShape { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            CoreError::ConnectorDenied(query) => {
                write!(f, "connector denied query outside allowlist: {query}")
            }
            CoreError::Data(message) => write!(f, "data error: {message}"),
            CoreError::Script(message) => write!(f, "script error: {message}"),
            CoreError::ValidationExhausted { module, cycles, regenerations } => write!(
                f,
                "validation of `{module}` exhausted {cycles} cycle(s) and {regenerations} regeneration(s)"
            ),
            CoreError::NotReplicable { module } => write!(
                f,
                "module `{module}` holds state that cannot be replicated for concurrent \
                 serving; build it with `CustomModule::stateless` (or another replicable \
                 module class) to serve it from a worker pool"
            ),
            CoreError::Cancelled { reason } => {
                write!(f, "execution cancelled: {}", reason.label())
            }
            CoreError::Trap { module, trap } => {
                write!(f, "module `{module}` trapped: {}", trap.label())
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<lingua_dataset::DataError> for CoreError {
    fn from(err: lingua_dataset::DataError) -> Self {
        CoreError::Data(err.to_string())
    }
}

impl From<lingua_script::ScriptError> for CoreError {
    fn from(err: lingua_script::ScriptError) -> Self {
        CoreError::Script(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CoreError::Module { module: "tagger".into(), message: "boom".into() };
        assert!(err.to_string().contains("tagger"));
        let err =
            CoreError::ValidationExhausted { module: "np".into(), cycles: 3, regenerations: 2 };
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn conversions_from_layers() {
        let err: CoreError = lingua_dataset::DataError::UnknownColumn("x".into()).into();
        assert!(matches!(err, CoreError::Data(_)));
        let err: CoreError = lingua_script::ScriptError::OutOfFuel.into();
        assert!(matches!(err, CoreError::Script(_)));
    }
}
