//! [`Data`] — the value type that flows between pipeline modules.
//!
//! Modules are functions `Data -> Data` (§3.1: "a module is a function
//! f: X → Y"). `Data` unifies scalars, collections, whole tables, and single
//! records, with lossless round-trips to MangaScript values so LLMGC modules
//! can consume and produce it.

use crate::error::CoreError;
use lingua_dataset::{Record, Schema, Table, Value as CellValue};
use lingua_script::Value as ScriptValue;
use std::collections::BTreeMap;
use std::fmt;

/// A value flowing through a pipeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Data {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Data>),
    Map(BTreeMap<String, Data>),
    /// A whole table.
    Table(Table),
    /// One row paired with its schema (record-at-a-time processing).
    Record {
        schema: Schema,
        record: Record,
    },
}

impl Data {
    pub fn type_name(&self) -> &'static str {
        match self {
            Data::Null => "null",
            Data::Bool(_) => "bool",
            Data::Int(_) => "int",
            Data::Float(_) => "float",
            Data::Str(_) => "str",
            Data::List(_) => "list",
            Data::Map(_) => "map",
            Data::Table(_) => "table",
            Data::Record { .. } => "record",
        }
    }

    pub fn as_table(&self) -> Result<&Table, CoreError> {
        match self {
            Data::Table(t) => Ok(t),
            other => Err(CoreError::DataShape { expected: "table", got: other.type_name().into() }),
        }
    }

    pub fn into_table(self) -> Result<Table, CoreError> {
        match self {
            Data::Table(t) => Ok(t),
            other => Err(CoreError::DataShape { expected: "table", got: other.type_name().into() }),
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Data::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Data::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Data]> {
        match self {
            Data::List(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&BTreeMap<String, Data>> {
        match self {
            Data::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Build a record value.
    pub fn record(schema: Schema, record: Record) -> Data {
        Data::Record { schema, record }
    }

    /// Build a map from `(key, value)` pairs.
    pub fn map<I: IntoIterator<Item = (String, Data)>>(pairs: I) -> Data {
        Data::Map(pairs.into_iter().collect())
    }

    /// Render the value as prompt-ready text (what LLM modules interpolate).
    pub fn render(&self) -> String {
        match self {
            Data::Null => String::new(),
            Data::Bool(b) => b.to_string(),
            Data::Int(i) => i.to_string(),
            Data::Float(f) => f.to_string(),
            Data::Str(s) => s.clone(),
            Data::List(items) => items.iter().map(|d| d.render()).collect::<Vec<_>>().join(", "),
            Data::Map(map) => map
                .iter()
                .map(|(k, v)| format!("{k}: {}", v.render()))
                .collect::<Vec<_>>()
                .join("; "),
            Data::Table(t) => format!("{t}"),
            Data::Record { schema, record } => record.describe(schema),
        }
    }

    /// Convert to a MangaScript value. Tables become lists of field maps;
    /// records become field maps.
    pub fn to_script(&self) -> ScriptValue {
        match self {
            Data::Null => ScriptValue::Null,
            Data::Bool(b) => ScriptValue::Bool(*b),
            Data::Int(i) => ScriptValue::Int(*i),
            Data::Float(f) => ScriptValue::Float(*f),
            Data::Str(s) => ScriptValue::Str(s.clone()),
            Data::List(items) => ScriptValue::List(items.iter().map(Data::to_script).collect()),
            Data::Map(map) => {
                ScriptValue::Map(map.iter().map(|(k, v)| (k.clone(), v.to_script())).collect())
            }
            Data::Table(table) => ScriptValue::List(
                table.rows().iter().map(|row| record_to_script(table.schema(), row)).collect(),
            ),
            Data::Record { schema, record } => record_to_script(schema, record),
        }
    }

    /// Convert back from a MangaScript value.
    pub fn from_script(value: &ScriptValue) -> Data {
        match value {
            ScriptValue::Null => Data::Null,
            ScriptValue::Bool(b) => Data::Bool(*b),
            ScriptValue::Int(i) => Data::Int(*i),
            ScriptValue::Float(f) => Data::Float(*f),
            ScriptValue::Str(s) => Data::Str(s.clone()),
            ScriptValue::List(items) => Data::List(items.iter().map(Data::from_script).collect()),
            ScriptValue::Map(map) => {
                Data::Map(map.iter().map(|(k, v)| (k.clone(), Data::from_script(v))).collect())
            }
        }
    }

    /// Loose equality for validation: numerics compare numerically, lists and
    /// maps recursively; everything else structurally.
    pub fn loose_eq(&self, other: &Data) -> bool {
        match (self, other) {
            (Data::Int(_) | Data::Float(_), Data::Int(_) | Data::Float(_)) => {
                let a = match self {
                    Data::Int(i) => *i as f64,
                    Data::Float(f) => *f,
                    _ => unreachable!(),
                };
                let b = match other {
                    Data::Int(i) => *i as f64,
                    Data::Float(f) => *f,
                    _ => unreachable!(),
                };
                (a - b).abs() < 1e-9
            }
            (Data::List(a), Data::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loose_eq(y))
            }
            (Data::Map(a), Data::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            _ => self == other,
        }
    }
}

fn record_to_script(schema: &Schema, record: &Record) -> ScriptValue {
    let mut map = std::collections::BTreeMap::new();
    for (i, value) in record.iter().enumerate() {
        let name = if i < schema.len() { schema.name(i).to_string() } else { format!("col{i}") };
        map.insert(name, cell_to_script(value));
    }
    ScriptValue::Map(map)
}

/// Convert a dataset cell into a script value.
pub fn cell_to_script(value: &CellValue) -> ScriptValue {
    match value {
        CellValue::Null => ScriptValue::Null,
        CellValue::Bool(b) => ScriptValue::Bool(*b),
        CellValue::Int(i) => ScriptValue::Int(*i),
        CellValue::Float(f) => ScriptValue::Float(*f),
        CellValue::Str(s) => ScriptValue::Str(s.clone()),
    }
}

/// Convert a script value into a dataset cell (collections render to text).
pub fn script_to_cell(value: &ScriptValue) -> CellValue {
    match value {
        ScriptValue::Null => CellValue::Null,
        ScriptValue::Bool(b) => CellValue::Bool(*b),
        ScriptValue::Int(i) => CellValue::Int(*i),
        ScriptValue::Float(f) => CellValue::Float(*f),
        ScriptValue::Str(s) => CellValue::Str(s.clone()),
        other => CellValue::Str(other.to_string()),
    }
}

impl From<CellValue> for Data {
    fn from(value: CellValue) -> Self {
        match value {
            CellValue::Null => Data::Null,
            CellValue::Bool(b) => Data::Bool(b),
            CellValue::Int(i) => Data::Int(i),
            CellValue::Float(f) => Data::Float(f),
            CellValue::Str(s) => Data::Str(s),
        }
    }
}

impl From<&str> for Data {
    fn from(s: &str) -> Self {
        Data::Str(s.to_string())
    }
}
impl From<String> for Data {
    fn from(s: String) -> Self {
        Data::Str(s)
    }
}
impl From<bool> for Data {
    fn from(b: bool) -> Self {
        Data::Bool(b)
    }
}
impl From<i64> for Data {
    fn from(i: i64) -> Self {
        Data::Int(i)
    }
}
impl From<Table> for Data {
    fn from(t: Table) -> Self {
        Data::Table(t)
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::csv;

    fn table() -> Table {
        csv::read_str("t", "name,price\nwidget,9.99\ngadget,\n").unwrap()
    }

    #[test]
    fn table_to_script_round_trip_shape() {
        let data = Data::Table(table());
        let script = data.to_script();
        let list = match &script {
            ScriptValue::List(items) => items,
            other => panic!("expected list, got {other:?}"),
        };
        assert_eq!(list.len(), 2);
        let first = list[0].as_map().unwrap();
        assert_eq!(first.get("name"), Some(&ScriptValue::Str("widget".into())));
        assert_eq!(first.get("price"), Some(&ScriptValue::Float(9.99)));
        let second = list[1].as_map().unwrap();
        assert_eq!(second.get("price"), Some(&ScriptValue::Null));
    }

    #[test]
    fn scalar_conversions_round_trip() {
        for data in [
            Data::Null,
            Data::Bool(true),
            Data::Int(-4),
            Data::Float(2.5),
            Data::Str("hello".into()),
            Data::List(vec![Data::Int(1), Data::Str("x".into())]),
            Data::map([("k".to_string(), Data::Int(1))]),
        ] {
            assert_eq!(Data::from_script(&data.to_script()), data);
        }
    }

    #[test]
    fn record_renders_for_prompts() {
        let t = table();
        let data = Data::record(t.schema().clone(), t.rows()[0].clone());
        assert_eq!(data.render(), "name: widget; price: 9.99");
    }

    #[test]
    fn shape_errors() {
        let err = Data::Str("x".into()).as_table().unwrap_err();
        assert!(matches!(err, CoreError::DataShape { expected: "table", .. }));
    }

    #[test]
    fn loose_eq_numeric_tolerance() {
        assert!(Data::Int(2).loose_eq(&Data::Float(2.0)));
        assert!(!Data::Int(2).loose_eq(&Data::Float(2.1)));
        assert!(Data::List(vec![Data::Int(1)]).loose_eq(&Data::List(vec![Data::Float(1.0)])));
        assert!(!Data::Str("2".into()).loose_eq(&Data::Int(2)));
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(script_to_cell(&ScriptValue::Int(3)), CellValue::Int(3));
        assert_eq!(
            script_to_cell(&ScriptValue::List(vec![ScriptValue::Int(1)])),
            CellValue::Str("[1]".into())
        );
        assert_eq!(Data::from(CellValue::Str("a".into())), Data::Str("a".into()));
    }
}
