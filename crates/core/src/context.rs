//! Execution context: the services and shared state every module invocation
//! receives, plus the host bridge that lets MangaScript programs reach back
//! into the system.

use crate::data::Data;
use crate::error::CoreError;
use crate::modules::Module;
use crate::stats::ExecStats;
use crate::tools::ToolRegistry;
use lingua_llm_sim::{CancelToken, CompletionRequest, LlmService};
use lingua_script::{Host, Value as ScriptValue};
use lingua_trace::{SpanKind, TracedLlm, Tracer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, named collection of live module instances, so modules (and LLMGC
/// scripts via `call_module`) can invoke each other — §3.1: "LINGUA MANGA
/// allows LLMGC to call other modules in the system".
type SharedModule = Arc<Mutex<Box<dyn Module>>>;

#[derive(Clone, Default)]
pub struct ModuleRegistry {
    inner: Arc<Mutex<BTreeMap<String, SharedModule>>>,
}

impl ModuleRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&self, name: impl Into<String>, module: Box<dyn Module>) {
        self.inner.lock().insert(name.into(), Arc::new(Mutex::new(module)));
    }

    pub fn get(&self, name: &str) -> Option<SharedModule> {
        self.inner.lock().get(name).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry").field("modules", &self.names()).finish()
    }
}

/// Everything a module invocation can reach.
pub struct ExecContext {
    /// The LLM service (shared; interior-mutable usage counters).
    pub llm: Arc<dyn LlmService>,
    /// Registered external tools.
    pub tools: ToolRegistry,
    /// Live modules addressable by `call_module`.
    pub registry: ModuleRegistry,
    /// Execution counters.
    pub stats: ExecStats,
    /// Trace emitter (disabled by default — every emit is one branch).
    pub tracer: Tracer,
    /// Cooperative cancellation: the job's deadline / cancel flag, checked by
    /// the executor between ops and by `invoke_module`. Unbounded by default,
    /// in which case every check is a no-op. Doubles as the worker heartbeat
    /// (each check bumps a logical progress counter the watchdog reads).
    pub cancel: CancelToken,
}

/// Builds fresh per-run [`ExecContext`]s over shared services.
///
/// The split matters for concurrent serving: the LLM service (with its
/// interior-mutable usage meters) and the tool registry are shared across
/// every worker, while each built context owns its *own* module registry and
/// execution counters — per-run mutable state never crosses threads.
#[derive(Clone)]
pub struct ContextFactory {
    llm: Arc<dyn LlmService>,
    tools: ToolRegistry,
    tracer: Tracer,
}

impl ContextFactory {
    pub fn new(llm: Arc<dyn LlmService>) -> ContextFactory {
        ContextFactory { llm, tools: ToolRegistry::new(), tracer: Tracer::disabled() }
    }

    /// Share a tool registry with every built context.
    pub fn with_tools(mut self, tools: ToolRegistry) -> ContextFactory {
        self.tools = tools;
        self
    }

    /// Replace the shared LLM service, keeping the tool registry — the hook
    /// for interposing a wrapper (a resilience gateway, a metering shim)
    /// between every built context and the original service.
    pub fn with_llm(mut self, llm: Arc<dyn LlmService>) -> ContextFactory {
        self.llm = llm;
        self
    }

    /// Share a tracer with every built context: pipeline, module, optimizer,
    /// and LLM-call spans all flow to its sink.
    pub fn with_tracer(mut self, tracer: Tracer) -> ContextFactory {
        self.tracer = tracer;
        self
    }

    /// The shared tracer (disabled unless [`ContextFactory::with_tracer`]
    /// installed one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared LLM service.
    pub fn llm(&self) -> Arc<dyn LlmService> {
        Arc::clone(&self.llm)
    }

    /// Build a fresh context: shared LLM + tools, private registry + stats.
    pub fn build(&self) -> ExecContext {
        self.build_with_llm(Arc::clone(&self.llm))
    }

    /// Build a fresh context over a *substitute* LLM service — typically a
    /// metering or routing wrapper around [`ContextFactory::llm`] — while
    /// keeping the shared tool registry.
    pub fn build_with_llm(&self, llm: Arc<dyn LlmService>) -> ExecContext {
        ExecContext::new(llm).with_tools(self.tools.clone()).with_tracer(self.tracer.clone())
    }
}

impl std::fmt::Debug for ContextFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextFactory").field("tools", &self.tools).finish()
    }
}

impl ExecContext {
    pub fn new(llm: Arc<dyn LlmService>) -> ExecContext {
        let stats = ExecStats { usage_at_start: llm.usage(), ..Default::default() };
        ExecContext {
            llm,
            tools: ToolRegistry::new(),
            registry: ModuleRegistry::new(),
            stats,
            tracer: Tracer::disabled(),
            cancel: CancelToken::unbounded(),
        }
    }

    pub fn with_tools(mut self, tools: ToolRegistry) -> ExecContext {
        self.tools = tools;
        self
    }

    /// Install the job's cancel token (deadline + explicit cancel). Serve
    /// workers call this with the token minted at admission.
    pub fn with_cancel(mut self, cancel: CancelToken) -> ExecContext {
        self.cancel = cancel;
        self
    }

    /// Install a tracer. When enabled, the LLM service is wrapped with
    /// [`TracedLlm`] so every call this context makes emits an `llm_call`
    /// span with exact token attribution; a disabled tracer leaves the
    /// service untouched.
    pub fn with_tracer(mut self, tracer: Tracer) -> ExecContext {
        self.llm = TracedLlm::wrap(&tracer, Arc::clone(&self.llm));
        self.tracer = tracer;
        self
    }

    /// Invoke a registered module by name.
    ///
    /// Note: a module invoking *itself* through the registry would deadlock
    /// on its own mutex; recursion must go through script functions instead.
    pub fn invoke_module(&mut self, name: &str, input: Data) -> Result<Data, CoreError> {
        // Cooperative cancellation: stop before starting new work once the
        // job's deadline passed (also the heartbeat for the watchdog).
        if let Err(reason) = self.cancel.check() {
            return Err(CoreError::Cancelled { reason });
        }
        let module = self
            .registry
            .get(name)
            .ok_or_else(|| CoreError::Compile(format!("no module named `{name}`")))?;
        self.stats.record_invocation(name);
        let mut guard = module.lock();
        let mut span = self.tracer.span(SpanKind::Module, name);
        span.attr("module_kind", guard.kind().name());
        let result = guard.invoke(input, self);
        if result.is_err() {
            span.attr("error", "true");
        }
        result
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("tools", &self.tools)
            .field("registry", &self.registry)
            .finish()
    }
}

/// Bridges MangaScript host calls back into the context.
pub struct HostBridge<'a> {
    pub ctx: &'a mut ExecContext,
}

impl Host for HostBridge<'_> {
    fn call_llm(&mut self, prompt: &str) -> Result<String, String> {
        Ok(self.ctx.llm.complete(&CompletionRequest::new(prompt)))
    }

    fn call_module(&mut self, name: &str, input: ScriptValue) -> Result<ScriptValue, String> {
        let data = Data::from_script(&input);
        self.ctx.invoke_module(name, data).map(|out| out.to_script()).map_err(|e| e.to_string())
    }

    fn call_tool(&mut self, name: &str, args: &[ScriptValue]) -> Result<ScriptValue, String> {
        self.ctx.tools.call(name, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::CustomModule;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(2);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 2)))
    }

    #[test]
    fn registry_insert_and_invoke() {
        let mut ctx = ctx();
        ctx.registry.insert(
            "upper",
            Box::new(CustomModule::new("upper", |input, _| {
                Ok(Data::Str(input.render().to_uppercase()))
            })),
        );
        let out = ctx.invoke_module("upper", Data::Str("abc".into())).unwrap();
        assert_eq!(out, Data::Str("ABC".into()));
        assert_eq!(ctx.stats.invocations_of("upper"), 1);
        assert!(ctx.invoke_module("missing", Data::Null).is_err());
    }

    #[test]
    fn host_bridge_reaches_llm_tools_and_modules() {
        let mut ctx = ctx();
        ctx.tools.register_list("vocab", vec!["Sony".into()]);
        ctx.registry.insert("echo", Box::new(CustomModule::new("echo", |input, _| Ok(input))));
        let mut bridge = HostBridge { ctx: &mut ctx };
        let response = bridge.call_llm("Summarize.\nText: a b c").unwrap();
        assert!(!response.is_empty());
        let vocab = bridge.call_tool("vocab", &[]).unwrap();
        assert_eq!(vocab.as_list().unwrap().len(), 1);
        let echoed = bridge.call_module("echo", ScriptValue::Int(7)).unwrap();
        assert_eq!(echoed, ScriptValue::Int(7));
        assert!(bridge.call_module("missing", ScriptValue::Null).is_err());
        assert!(bridge.call_tool("missing", &[]).is_err());
    }

    #[test]
    fn context_factory_shares_services_but_not_run_state() {
        let world = WorldSpec::generate(2);
        let factory = ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 2)));
        let mut a = factory.build();
        let mut b = factory.build();
        // Shared LLM: usage metered in one context is visible in the other.
        a.llm.complete(&lingua_llm_sim::CompletionRequest::new("Summarize.\nText: x y z"));
        assert_eq!(b.llm.usage().calls, 1);
        // Private per-run state: stats and module registries do not leak.
        a.stats.record_invocation("only_in_a");
        assert_eq!(b.stats.invocations_of("only_in_a"), 0);
        a.registry.insert("m", Box::new(CustomModule::new("m", |input, _| Ok(input))));
        assert!(b.registry.get("m").is_none());
        assert!(b.invoke_module("m", Data::Null).is_err());
        // Shared tools flow into every build.
        let mut tools = ToolRegistry::new();
        tools.register_list("vocab", vec!["Sony".into()]);
        let factory = factory.with_tools(tools);
        assert!(factory.build().tools.contains("vocab"));
    }

    #[test]
    fn with_llm_swaps_the_service_and_keeps_tools() {
        let world = WorldSpec::generate(2);
        let original: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 2));
        let replacement: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 3));
        let mut tools = ToolRegistry::new();
        tools.register_list("vocab", vec!["Sony".into()]);
        let factory =
            ContextFactory::new(original.clone()).with_tools(tools).with_llm(replacement.clone());
        let ctx = factory.build();
        ctx.llm.complete(&lingua_llm_sim::CompletionRequest::new("Summarize.\nText: x"));
        assert_eq!(replacement.usage().calls, 1, "calls land on the swapped-in service");
        assert_eq!(original.usage().calls, 0, "the original service is untouched");
        assert!(ctx.tools.contains("vocab"), "tools survive the swap");
    }

    #[test]
    fn modules_can_call_other_modules() {
        let mut ctx = ctx();
        ctx.registry.insert(
            "inner",
            Box::new(CustomModule::new("inner", |input, _| {
                Ok(Data::Str(format!("[{}]", input.render())))
            })),
        );
        ctx.registry.insert(
            "outer",
            Box::new(CustomModule::new("outer", |input, ctx| ctx.invoke_module("inner", input))),
        );
        let out = ctx.invoke_module("outer", Data::Str("x".into())).unwrap();
        assert_eq!(out, Data::Str("[x]".into()));
        assert_eq!(ctx.stats.invocations_of("inner"), 1);
        assert_eq!(ctx.stats.invocations_of("outer"), 1);
    }
}
