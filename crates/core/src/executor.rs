//! The executor: runs a compiled pipeline over a variable environment,
//! tracing per-op durations and LLM usage deltas.

use crate::compiler::PhysicalPipeline;
use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use lingua_llm_sim::Usage;
use std::collections::BTreeMap;
use std::time::Instant;

/// Trace of one operator execution.
#[derive(Debug, Clone)]
pub struct OpTrace {
    pub op_type: String,
    pub output: String,
    pub wall: std::time::Duration,
    /// LLM usage consumed by this op.
    pub usage: Usage,
}

/// The result of a pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// Final variable environment (every op output).
    pub env: BTreeMap<String, Data>,
    pub traces: Vec<OpTrace>,
}

impl RunReport {
    /// Fetch a variable, erroring if absent.
    pub fn get(&self, var: &str) -> Result<&Data, CoreError> {
        self.env.get(var).ok_or_else(|| CoreError::UnknownVariable(var.to_string()))
    }

    /// Total LLM calls across the run.
    pub fn llm_calls(&self) -> u64 {
        self.traces.iter().map(|t| t.usage.calls).sum()
    }

    /// Compact text report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for trace in &self.traces {
            out.push_str(&format!(
                "{:<24} {:>8.2?}  {} llm call(s)\n",
                trace.op_type, trace.wall, trace.usage.calls
            ));
        }
        out
    }
}

/// Pipeline executor.
pub struct Executor;

impl Executor {
    /// Run every op in order. Ops with one input receive that variable's
    /// value; multi-input ops receive a map keyed by variable name; source
    /// ops receive `Data::Null`.
    pub fn run(
        pipeline: &mut PhysicalPipeline,
        ctx: &mut ExecContext,
        initial_env: BTreeMap<String, Data>,
    ) -> Result<RunReport, CoreError> {
        let mut env = initial_env;
        let mut traces = Vec::with_capacity(pipeline.ops.len());
        let mut pipeline_span = ctx.tracer.span(lingua_trace::SpanKind::Pipeline, &pipeline.name);
        pipeline_span.attr("ops", pipeline.ops.len().to_string());
        for (op, module) in &mut pipeline.ops {
            let input = match op.inputs.len() {
                0 => Data::Null,
                1 => env
                    .get(&op.inputs[0])
                    .cloned()
                    .ok_or_else(|| CoreError::UnknownVariable(op.inputs[0].clone()))?,
                _ => {
                    let mut map = BTreeMap::new();
                    for var in &op.inputs {
                        let value = env
                            .get(var)
                            .cloned()
                            .ok_or_else(|| CoreError::UnknownVariable(var.clone()))?;
                        map.insert(var.clone(), value);
                    }
                    Data::Map(map)
                }
            };
            let usage_before = ctx.llm.usage();
            let start = Instant::now();
            ctx.stats.record_invocation(module.name());
            let mut op_span = ctx.tracer.span(lingua_trace::SpanKind::Op, &op.op_type);
            op_span.attr("module", module.name());
            op_span.attr("module_kind", module.kind().name());
            if !op.output.is_empty() {
                op_span.attr("output", op.output.as_str());
            }
            let output = module.invoke(input, ctx)?;
            drop(op_span);
            traces.push(OpTrace {
                op_type: op.op_type.clone(),
                output: op.output.clone(),
                wall: start.elapsed(),
                usage: ctx.llm.usage().since(&usage_before),
            });
            if !op.output.is_empty() {
                env.insert(op.output.clone(), output);
            }
        }
        Ok(RunReport { env, traces })
    }
}

/// Parallel map over items with a pure function, using scoped threads.
/// Used by record-at-a-time stages (feature extraction, blocking) where the
/// work is CPU-bound and independent per item.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<U>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::modules::CustomModule;
    use crate::pipeline::{LogicalOp, Pipeline};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(14);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 14)))
    }

    fn compiler_with_test_ops() -> Compiler {
        let mut compiler = Compiler::with_builtins();
        compiler.register("emit", |op, _| {
            let value = op.params.get("value").cloned().unwrap_or_default();
            Ok(Box::new(CustomModule::new("emit", move |_, _| Ok(Data::Str(value.clone()))))
                as Box<dyn crate::modules::Module>)
        });
        compiler.register("concat", |_, _| {
            Ok(Box::new(CustomModule::new("concat", |input, _| {
                let map = input
                    .as_map()
                    .ok_or(CoreError::DataShape { expected: "map", got: "other".into() })?;
                let joined: Vec<String> = map.values().map(|v| v.render()).collect();
                Ok(Data::Str(joined.join("+")))
            })) as Box<dyn crate::modules::Module>)
        });
        compiler.register("exclaim", |_, _| {
            Ok(Box::new(CustomModule::new("exclaim", |input, _| {
                Ok(Data::Str(format!("{}!", input.render())))
            })) as Box<dyn crate::modules::Module>)
        });
        compiler
    }

    #[test]
    fn dataflow_executes_in_order() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t")
            .op(LogicalOp::new("emit").output("a").param("value", "hello"))
            .op(LogicalOp::new("exclaim").output("b").input("a"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let report = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap();
        assert_eq!(report.get("b").unwrap(), &Data::Str("hello!".into()));
        assert_eq!(report.traces.len(), 2);
        assert!(report.summary().contains("exclaim"));
    }

    #[test]
    fn multi_input_ops_receive_maps() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t")
            .op(LogicalOp::new("emit").output("x").param("value", "1"))
            .op(LogicalOp::new("emit").output("y").param("value", "2"))
            .op(LogicalOp::new("concat").output("z").input("x").input("y"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let report = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap();
        assert_eq!(report.get("z").unwrap(), &Data::Str("1+2".into()));
    }

    #[test]
    fn missing_variables_error() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t").op(LogicalOp::new("exclaim").output("b").input("ghost"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let err = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownVariable(v) if v == "ghost"));
    }

    #[test]
    fn initial_env_feeds_first_op() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t").op(LogicalOp::new("exclaim").output("b").input("seed"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let mut env = BTreeMap::new();
        env.insert("seed".to_string(), Data::Str("go".into()));
        let report = Executor::run(&mut physical, &mut ctx, env).unwrap();
        assert_eq!(report.get("b").unwrap(), &Data::Str("go!".into()));
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let items: Vec<i64> = (0..1000).collect();
        let sequential: Vec<i64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_map(&items, threads, |x| x * x);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Empty and tiny inputs are fine.
        assert!(parallel_map::<i64, i64, _>(&[], 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let empty: Vec<String> = Vec::new();
        let out = parallel_map(&empty, 8, |s: &String| s.len());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(&["only"], 1, |s| s.to_uppercase()), vec!["ONLY"]);
        assert_eq!(parallel_map(&["only"], 64, |s| s.to_uppercase()), vec!["ONLY"]);
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        let items = [10, 20, 30];
        // Thread count clamps to the item count; results stay ordered.
        assert_eq!(parallel_map(&items, 100, |x| x / 10), vec![1, 2, 3]);
        assert_eq!(parallel_map(&items, 0, |x| x / 10), vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_preserves_order_under_uneven_work() {
        // Earlier items sleep longer, so later chunks finish first; the
        // output must still line up slot-for-slot with the input.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(&items, 8, |&i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) / 4));
            i * 10
        });
        let expected: Vec<u64> = items.iter().map(|i| i * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn simllm_usage_counters_are_consistent_under_threads() {
        use lingua_llm_sim::{CompletionRequest, LlmService};

        let world = WorldSpec::generate(14);
        let svc = SimLlm::with_seed(&world, 14);
        // Distinct prompts from many threads: every call is billed once.
        let prompts: Vec<String> =
            (0..64).map(|i| format!("Summarize.\nText: document number {i}")).collect();
        let responses = parallel_map(&prompts, 8, |p| svc.complete(&CompletionRequest::new(p)));
        assert_eq!(responses.len(), prompts.len());
        let usage = svc.usage();
        assert_eq!(usage.calls, prompts.len() as u64);
        assert_eq!(usage.cached_calls, 0);
        assert!(usage.tokens_in > 0 && usage.tokens_out > 0);
    }

    #[test]
    fn simllm_cache_keeps_the_billing_invariant_under_threads() {
        use lingua_llm_sim::{CompletionRequest, LlmService, SimLlmConfig};

        let world = WorldSpec::generate(14);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 14, cache_enabled: true, ..Default::default() },
        );
        // Many threads race on the SAME prompt: every request is either a
        // billed call or a cache hit — none double-counted, none lost.
        let requests: Vec<u64> = (0..64).collect();
        let out = parallel_map(&requests, 8, |_| {
            svc.complete(&CompletionRequest::new("Summarize.\nText: the contended document"))
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]), "all callers see one answer");
        let usage = svc.usage();
        assert_eq!(usage.calls + usage.cached_calls, requests.len() as u64);
        assert!(usage.calls >= 1);
    }
}
