//! The executor: runs a compiled pipeline over a variable environment,
//! tracing per-op durations and LLM usage deltas.

use crate::compiler::PhysicalPipeline;
use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use lingua_llm_sim::{CancelScope, CancelToken, Usage};
use std::collections::BTreeMap;
use std::time::Instant;

/// Trace of one operator execution.
#[derive(Debug, Clone)]
pub struct OpTrace {
    pub op_type: String,
    pub output: String,
    pub wall: std::time::Duration,
    /// LLM usage consumed by this op.
    pub usage: Usage,
}

/// The result of a pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// Final variable environment (every op output).
    pub env: BTreeMap<String, Data>,
    pub traces: Vec<OpTrace>,
}

impl RunReport {
    /// Fetch a variable, erroring if absent.
    pub fn get(&self, var: &str) -> Result<&Data, CoreError> {
        self.env.get(var).ok_or_else(|| CoreError::UnknownVariable(var.to_string()))
    }

    /// Total LLM calls across the run.
    pub fn llm_calls(&self) -> u64 {
        self.traces.iter().map(|t| t.usage.calls).sum()
    }

    /// Compact text report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for trace in &self.traces {
            out.push_str(&format!(
                "{:<24} {:>8.2?}  {} llm call(s)\n",
                trace.op_type, trace.wall, trace.usage.calls
            ));
        }
        out
    }
}

/// Pipeline executor.
pub struct Executor;

impl Executor {
    /// Run every op in order. Ops with one input receive that variable's
    /// value; multi-input ops receive a map keyed by variable name; source
    /// ops receive `Data::Null`.
    pub fn run(
        pipeline: &mut PhysicalPipeline,
        ctx: &mut ExecContext,
        initial_env: BTreeMap<String, Data>,
    ) -> Result<RunReport, CoreError> {
        let mut env = initial_env;
        let mut traces = Vec::with_capacity(pipeline.ops.len());
        let mut pipeline_span = ctx.tracer.span(lingua_trace::SpanKind::Pipeline, &pipeline.name);
        pipeline_span.attr("ops", pipeline.ops.len().to_string());
        for (op, module) in &mut pipeline.ops {
            // Cooperative cancellation between ops: a job past its deadline
            // stops here instead of starting the next operator. The check is
            // also the heartbeat the serve watchdog reads.
            if let Err(reason) = ctx.cancel.check() {
                pipeline_span.attr("cancelled", reason.label());
                return Err(CoreError::Cancelled { reason });
            }
            let input = match op.inputs.len() {
                0 => Data::Null,
                1 => env
                    .get(&op.inputs[0])
                    .cloned()
                    .ok_or_else(|| CoreError::UnknownVariable(op.inputs[0].clone()))?,
                _ => {
                    let mut map = BTreeMap::new();
                    for var in &op.inputs {
                        let value = env
                            .get(var)
                            .cloned()
                            .ok_or_else(|| CoreError::UnknownVariable(var.clone()))?;
                        map.insert(var.clone(), value);
                    }
                    Data::Map(map)
                }
            };
            let usage_before = ctx.llm.usage();
            let start = Instant::now();
            ctx.stats.record_invocation(module.name());
            let mut op_span = ctx.tracer.span(lingua_trace::SpanKind::Op, &op.op_type);
            op_span.attr("module", module.name());
            op_span.attr("module_kind", module.kind().name());
            if !op.output.is_empty() {
                op_span.attr("output", op.output.as_str());
            }
            let output = module.invoke(input, ctx)?;
            drop(op_span);
            traces.push(OpTrace {
                op_type: op.op_type.clone(),
                output: op.output.clone(),
                wall: start.elapsed(),
                usage: ctx.llm.usage().since(&usage_before),
            });
            if !op.output.is_empty() {
                env.insert(op.output.clone(), output);
            }
        }
        // Final check: if the deadline passed during the last op, its LLM
        // calls were answered with cancellation notices — the outputs are
        // not trustworthy and must not be reported as a completed run.
        if let Err(reason) = ctx.cancel.check() {
            pipeline_span.attr("cancelled", reason.label());
            return Err(CoreError::Cancelled { reason });
        }
        Ok(RunReport { env, traces })
    }
}

/// Parallel map over items with a pure function, using scoped threads.
/// Used by record-at-a-time stages (feature extraction, blocking) where the
/// work is CPU-bound and independent per item.
///
/// A panic in `f` propagates to the caller with its original payload (serve's
/// per-job `catch_unwind` isolation relies on this). For deadline-aware
/// callers, see [`try_parallel_map`].
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    match try_parallel_map(items, threads, &CancelToken::unbounded(), f) {
        Ok(out) => out,
        Err(_) => unreachable!("an unbounded token never cancels"),
    }
}

/// Cancellable [`parallel_map`]: every worker checks `cancel` before each
/// item (which also heartbeats the token), so a fired deadline stops the
/// whole scan within one item per thread instead of finishing the batch.
/// Returns `CoreError::Cancelled` if the token fired; partial results are
/// discarded. A panic in `f` still propagates with its original payload
/// after all workers have stopped.
pub fn try_parallel_map<T, U, F>(
    items: &[T],
    threads: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<U>, CoreError>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if let Err(reason) = cancel.check() {
                return Err(CoreError::Cancelled { reason });
            }
            out.push(f(item));
        }
        return Ok(out);
    }
    let mut results: Vec<Option<U>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    let scope_result = crossbeam::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    if cancel.check().is_err() {
                        return;
                    }
                    *slot = Some(f(item));
                }
            });
        }
    });
    if let Err(payload) = scope_result {
        // A worker panicked. Re-raise the original payload (unwrapping
        // crossbeam's aggregation when exactly one thread panicked) so the
        // caller's panic isolation sees what the module actually threw.
        let payload = match payload.downcast::<Vec<Box<dyn std::any::Any + Send + 'static>>>() {
            Ok(mut panics) if panics.len() == 1 => panics.pop().expect("length checked"),
            Ok(panics) => panics,
            Err(other) => other,
        };
        std::panic::resume_unwind(payload);
    }
    if let Some(reason) = cancel.status() {
        return Err(CoreError::Cancelled { reason });
    }
    Ok(results.into_iter().map(|r| r.expect("all slots filled when not cancelled")).collect())
}

/// Pipelined [`try_parallel_map`] for stages that **block on a service**
/// rather than burn CPU: the scan runs at `threads × depth` concurrent
/// lanes, so while one in-flight call sits inside the continuous batcher's
/// micro-batch window, up to `depth - 1` sibling calls from the same worker
/// are waiting alongside it. That oversubscription is what lets a single
/// serve worker fill size-triggered batches instead of trickling one
/// request per window.
///
/// Unlike [`try_parallel_map`], `f` runs with `cancel` installed as the
/// thread-local [`CancelScope`] on every lane, so service layers behind
/// `LlmService` (the batcher, the gateway, the simulator) observe the job's
/// deadline from spawned threads exactly as they do on the worker thread
/// itself — a cancelled job's in-flight batch members resolve to the
/// cancellation notice and bill nothing.
pub fn try_parallel_map_pipelined<T, U, F>(
    items: &[T],
    threads: usize,
    depth: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<U>, CoreError>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let lanes = threads.max(1).saturating_mul(depth.max(1));
    try_parallel_map(items, lanes, cancel, |item| {
        let _scope = CancelScope::enter(cancel);
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use crate::modules::CustomModule;
    use crate::pipeline::{LogicalOp, Pipeline};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(14);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 14)))
    }

    fn compiler_with_test_ops() -> Compiler {
        let mut compiler = Compiler::with_builtins();
        compiler.register("emit", |op, _| {
            let value = op.params.get("value").cloned().unwrap_or_default();
            Ok(Box::new(CustomModule::new("emit", move |_, _| Ok(Data::Str(value.clone()))))
                as Box<dyn crate::modules::Module>)
        });
        compiler.register("concat", |_, _| {
            Ok(Box::new(CustomModule::new("concat", |input, _| {
                let map = input
                    .as_map()
                    .ok_or(CoreError::DataShape { expected: "map", got: "other".into() })?;
                let joined: Vec<String> = map.values().map(|v| v.render()).collect();
                Ok(Data::Str(joined.join("+")))
            })) as Box<dyn crate::modules::Module>)
        });
        compiler.register("exclaim", |_, _| {
            Ok(Box::new(CustomModule::new("exclaim", |input, _| {
                Ok(Data::Str(format!("{}!", input.render())))
            })) as Box<dyn crate::modules::Module>)
        });
        compiler
    }

    #[test]
    fn dataflow_executes_in_order() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t")
            .op(LogicalOp::new("emit").output("a").param("value", "hello"))
            .op(LogicalOp::new("exclaim").output("b").input("a"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let report = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap();
        assert_eq!(report.get("b").unwrap(), &Data::Str("hello!".into()));
        assert_eq!(report.traces.len(), 2);
        assert!(report.summary().contains("exclaim"));
    }

    #[test]
    fn multi_input_ops_receive_maps() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t")
            .op(LogicalOp::new("emit").output("x").param("value", "1"))
            .op(LogicalOp::new("emit").output("y").param("value", "2"))
            .op(LogicalOp::new("concat").output("z").input("x").input("y"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let report = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap();
        assert_eq!(report.get("z").unwrap(), &Data::Str("1+2".into()));
    }

    #[test]
    fn missing_variables_error() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t").op(LogicalOp::new("exclaim").output("b").input("ghost"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let err = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownVariable(v) if v == "ghost"));
    }

    #[test]
    fn initial_env_feeds_first_op() {
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t").op(LogicalOp::new("exclaim").output("b").input("seed"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let mut env = BTreeMap::new();
        env.insert("seed".to_string(), Data::Str("go".into()));
        let report = Executor::run(&mut physical, &mut ctx, env).unwrap();
        assert_eq!(report.get("b").unwrap(), &Data::Str("go!".into()));
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let items: Vec<i64> = (0..1000).collect();
        let sequential: Vec<i64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_map(&items, threads, |x| x * x);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Empty and tiny inputs are fine.
        assert!(parallel_map::<i64, i64, _>(&[], 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let empty: Vec<String> = Vec::new();
        let out = parallel_map(&empty, 8, |s: &String| s.len());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(&["only"], 1, |s| s.to_uppercase()), vec!["ONLY"]);
        assert_eq!(parallel_map(&["only"], 64, |s| s.to_uppercase()), vec!["ONLY"]);
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        let items = [10, 20, 30];
        // Thread count clamps to the item count; results stay ordered.
        assert_eq!(parallel_map(&items, 100, |x| x / 10), vec![1, 2, 3]);
        assert_eq!(parallel_map(&items, 0, |x| x / 10), vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_preserves_order_under_uneven_work() {
        // Earlier items sleep longer, so later chunks finish first; the
        // output must still line up slot-for-slot with the input.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(&items, 8, |&i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) / 4));
            i * 10
        });
        let expected: Vec<u64> = items.iter().map(|i| i * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn run_stops_between_ops_once_cancelled() {
        use lingua_llm_sim::CancelReason;
        let mut compiler = compiler_with_test_ops();
        compiler.register("cancel_self", |_, _| {
            Ok(Box::new(CustomModule::new("cancel_self", |input, ctx| {
                ctx.cancel.cancel();
                Ok(input)
            })) as Box<dyn crate::modules::Module>)
        });
        let mut ctx = ctx();
        let pipeline = Pipeline::new("t")
            .op(LogicalOp::new("emit").output("a").param("value", "x"))
            .op(LogicalOp::new("cancel_self").output("b").input("a"))
            .op(LogicalOp::new("exclaim").output("c").input("b"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let err = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap_err();
        assert_eq!(err, CoreError::Cancelled { reason: CancelReason::Cancelled });
        assert_eq!(ctx.stats.invocations_of("exclaim"), 0, "the op after the cancel never ran");
    }

    #[test]
    fn run_with_expired_deadline_cancels_before_the_first_op() {
        use lingua_llm_sim::CancelReason;
        let compiler = compiler_with_test_ops();
        let mut ctx = ctx();
        let pipeline =
            Pipeline::new("t").op(LogicalOp::new("emit").output("a").param("value", "x"));
        let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        ctx.cancel =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let err = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap_err();
        assert_eq!(err, CoreError::Cancelled { reason: CancelReason::DeadlineExceeded });
        assert_eq!(ctx.stats.invocations_of("emit"), 0);
    }

    #[test]
    fn try_parallel_map_stops_after_cancel() {
        use lingua_llm_sim::CancelReason;
        let items: Vec<u64> = (0..512).collect();
        for threads in [1, 4] {
            let token = CancelToken::unbounded();
            let err = try_parallel_map(&items, threads, &token, |&i| {
                if i % 64 == 50 {
                    token.cancel();
                }
                i
            })
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::Cancelled { reason: CancelReason::Cancelled },
                "threads={threads}"
            );
        }
        // An already-expired deadline maps to DeadlineExceeded.
        let expired =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let err = try_parallel_map(&items, 4, &expired, |&i| i).unwrap_err();
        assert_eq!(err, CoreError::Cancelled { reason: CancelReason::DeadlineExceeded });
    }

    #[test]
    fn parallel_map_propagates_the_original_panic_payload() {
        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&i| {
                if i == 37 {
                    panic!("module blew up on item {i}");
                }
                i
            })
        }));
        let payload = result.unwrap_err();
        // Real crossbeam hands the child's payload back through `Err` and we
        // re-raise it verbatim. The offline stub's scope (std-backed)
        // replaces the payload with its own static message — accept both so
        // the test documents rather than trips on the divergence.
        match payload.downcast_ref::<String>() {
            Some(message) => assert_eq!(message, "module blew up on item 37"),
            None => {
                let message =
                    payload.downcast_ref::<&str>().expect("panic payload is a string type");
                assert_eq!(*message, "a scoped thread panicked");
            }
        }
    }

    #[test]
    fn pipelined_map_matches_sequential_at_any_depth() {
        let items: Vec<i64> = (0..200).collect();
        let sequential: Vec<i64> = items.iter().map(|x| x * 3).collect();
        let token = CancelToken::unbounded();
        for threads in [1, 2, 4] {
            for depth in [0, 1, 4, 16] {
                let out = try_parallel_map_pipelined(&items, threads, depth, &token, |x| x * 3)
                    .expect("live token");
                assert_eq!(out, sequential, "threads={threads} depth={depth}");
            }
        }
    }

    #[test]
    fn pipelined_map_installs_the_cancel_scope_on_every_lane() {
        use lingua_llm_sim::cancel;
        let items: Vec<u64> = (0..32).collect();
        let token = CancelToken::unbounded();
        let out = try_parallel_map_pipelined(&items, 2, 4, &token, |_| {
            // The service layers read the job token from the thread-local
            // scope; the pipelined map must have installed it on this lane.
            cancel::current().is_some()
        })
        .expect("live token");
        assert!(out.iter().all(|&scoped| scoped), "every lane saw the scope");
        // And the scope does not leak onto the caller's thread.
        assert!(cancel::current().is_none());
    }

    #[test]
    fn pipelined_map_cancels_like_the_plain_variant() {
        use lingua_llm_sim::CancelReason;
        let items: Vec<u64> = (0..256).collect();
        let token = CancelToken::unbounded();
        let err = try_parallel_map_pipelined(&items, 2, 4, &token, |&i| {
            if i == 10 {
                token.cancel();
            }
            i
        })
        .unwrap_err();
        assert_eq!(err, CoreError::Cancelled { reason: CancelReason::Cancelled });
    }

    #[test]
    fn simllm_usage_counters_are_consistent_under_threads() {
        use lingua_llm_sim::{CompletionRequest, LlmService};

        let world = WorldSpec::generate(14);
        let svc = SimLlm::with_seed(&world, 14);
        // Distinct prompts from many threads: every call is billed once.
        let prompts: Vec<String> =
            (0..64).map(|i| format!("Summarize.\nText: document number {i}")).collect();
        let responses = parallel_map(&prompts, 8, |p| svc.complete(&CompletionRequest::new(p)));
        assert_eq!(responses.len(), prompts.len());
        let usage = svc.usage();
        assert_eq!(usage.calls, prompts.len() as u64);
        assert_eq!(usage.cached_calls, 0);
        assert!(usage.tokens_in > 0 && usage.tokens_out > 0);
    }

    #[test]
    fn simllm_cache_keeps_the_billing_invariant_under_threads() {
        use lingua_llm_sim::{CompletionRequest, LlmService, SimLlmConfig};

        let world = WorldSpec::generate(14);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 14, cache_enabled: true, ..Default::default() },
        );
        // Many threads race on the SAME prompt: every request is either a
        // billed call or a cache hit — none double-counted, none lost.
        let requests: Vec<u64> = (0..64).collect();
        let out = parallel_map(&requests, 8, |_| {
            svc.complete(&CompletionRequest::new("Summarize.\nText: the contended document"))
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]), "all callers see one answer");
        let usage = svc.usage();
        assert_eq!(usage.calls + usage.cached_calls, requests.len() as u64);
        assert!(usage.calls >= 1);
    }
}
