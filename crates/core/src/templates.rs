//! Templates: "groups of pre-built pipelines ... rather than creating a
//! pipeline from scratch, LINGUA MANGA allows users to start with a
//! pre-defined, well-optimized pipeline" (§3).

use crate::modules::ModuleKind;
use crate::pipeline::{LogicalOp, Pipeline};
use std::collections::BTreeMap;

/// A registered template: a pipeline plus searchable metadata.
#[derive(Debug, Clone)]
pub struct Template {
    pub name: String,
    pub description: String,
    pub keywords: Vec<String>,
    pub pipeline: Pipeline,
}

/// The searchable template registry (Figure 2b's "built-in template" path).
#[derive(Debug, Clone, Default)]
pub struct TemplateRegistry {
    templates: BTreeMap<String, Template>,
}

impl TemplateRegistry {
    /// An empty registry.
    pub fn new() -> TemplateRegistry {
        TemplateRegistry::default()
    }

    /// The registry pre-loaded with the built-in templates.
    pub fn with_builtins() -> TemplateRegistry {
        let mut registry = TemplateRegistry::new();
        registry.add(entity_resolution_template());
        registry.add(data_imputation_template());
        registry.add(name_extraction_template());
        registry.add(data_cleaning_template());
        registry
    }

    pub fn add(&mut self, template: Template) {
        self.templates.insert(template.name.clone(), template);
    }

    pub fn get(&self, name: &str) -> Option<&Template> {
        self.templates.get(name)
    }

    pub fn names(&self) -> Vec<&str> {
        self.templates.keys().map(|s| s.as_str()).collect()
    }

    /// Keyword search over names, descriptions, and keyword lists — how a
    /// no-code user finds a starting point.
    pub fn search(&self, query: &str) -> Vec<&Template> {
        let terms: Vec<String> =
            query.to_lowercase().split_whitespace().map(|s| s.to_string()).collect();
        let mut scored: Vec<(usize, &Template)> = self
            .templates
            .values()
            .map(|t| {
                let haystack = format!(
                    "{} {} {}",
                    t.name.to_lowercase(),
                    t.description.to_lowercase(),
                    t.keywords.join(" ").to_lowercase()
                );
                let score = terms.iter().filter(|term| haystack.contains(term.as_str())).count();
                (score, t)
            })
            .filter(|(score, _)| *score > 0)
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.name.cmp(&b.1.name)));
        scored.into_iter().map(|(_, t)| t).collect()
    }
}

/// Figure 2b: the built-in entity-resolution pipeline — load, resolve with a
/// calibrated LLM module, save.
pub fn entity_resolution_template() -> Template {
    Template {
        name: "entity_resolution_basic".into(),
        description: "Match records that refer to the same real-world entity using a \
                      calibrated LLM module with yes/no output validation."
            .into(),
        keywords: vec!["entity".into(), "resolution".into(), "matching".into(), "dedup".into()],
        pipeline: Pipeline::new("entity_resolution_basic")
            .op(LogicalOp::new("load_csv").output("records").param("path", "input.csv"))
            .op(LogicalOp::new("entity_resolution")
                .output("matches")
                .input("records")
                .using(ModuleKind::Llm)
                .param(
                    "desc",
                    "Please determine if the following two records refer to the same entity.",
                )
                .param("output", "yesno")
                .param("builder", "pair"))
            .op(LogicalOp::new("save_csv").input("matches").param("path", "matches.csv")),
    }
}

/// Figure 4: imputation via an LLMGC rules module with an LLM fallback.
pub fn data_imputation_template() -> Template {
    Template {
        name: "data_imputation_buy".into(),
        description: "Fill a missing categorical attribute: cheap generated rules resolve the \
                      easy rows, the LLM is consulted only for the hard ones."
            .into(),
        keywords: vec![
            "imputation".into(),
            "missing".into(),
            "manufacturer".into(),
            "cleaning".into(),
        ],
        pipeline: Pipeline::new("data_imputation_buy")
            .op(LogicalOp::new("load_csv").output("products").param("path", "products.csv"))
            .op(LogicalOp::new("impute_manufacturer")
                .output("filled")
                .input("products")
                .using(ModuleKind::Llmgc)
                .param(
                    "desc",
                    "impute the missing manufacturer from the product name and description, \
                     using the vocabulary tool for rules and the LLM for hard cases",
                ))
            .op(LogicalOp::new("save_csv").input("filled").param("path", "imputed.csv")),
    }
}

/// Figure 3: tokenize → noun-phrase extraction (LLMGC) → tagging (LLM).
pub fn name_extraction_template() -> Template {
    Template {
        name: "name_extraction".into(),
        description: "Find person names in text passages: generated tokenizer and noun-phrase \
                      extractor feed an LLM tagger with an example-based validator."
            .into(),
        keywords: vec![
            "name".into(),
            "extraction".into(),
            "ner".into(),
            "person".into(),
            "text".into(),
        ],
        pipeline: Pipeline::new("name_extraction")
            .op(LogicalOp::new("tokenize")
                .output("tokens")
                .input("passage")
                .using(ModuleKind::Llmgc)
                .param("desc", "tokenize the text into words"))
            .op(LogicalOp::new("extract_noun_phrases")
                .output("phrases")
                .input("tokens")
                .using(ModuleKind::Llmgc)
                .param("desc", "extract noun phrases: group consecutive capitalized tokens"))
            .op(LogicalOp::new("tag_names")
                .output("names")
                .input("phrases")
                .using(ModuleKind::Llm)
                .param("desc", "Is the following phrase a person name?")
                .param("payload_label", "Text")
                .param("output", "yesno")),
    }
}

/// A generic cleaning pipeline: dedup + a generated value normalizer.
pub fn data_cleaning_template() -> Template {
    Template {
        name: "data_cleaning".into(),
        description: "Normalize messy values and drop exact duplicates.".into(),
        keywords: vec!["cleaning".into(), "normalize".into(), "duplicates".into()],
        pipeline: Pipeline::new("data_cleaning")
            .op(LogicalOp::new("load_csv").output("raw").param("path", "raw.csv"))
            .op(LogicalOp::new("clean_values")
                .output("cleaned")
                .input("raw")
                .using(ModuleKind::Llmgc)
                .param("desc", "clean and normalize the value: trim and collapse whitespace"))
            .op(LogicalOp::new("dedup_exact").output("deduped").input("cleaned"))
            .op(LogicalOp::new("save_csv").input("deduped").param("path", "clean.csv")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered_and_valid() {
        let registry = TemplateRegistry::with_builtins();
        assert_eq!(registry.names().len(), 4);
        for name in registry.names() {
            let template = registry.get(name).unwrap();
            assert!(!template.pipeline.ops.is_empty(), "{name} has no ops");
            // Dataflow is self-consistent given the documented external input.
            template
                .pipeline
                .check_dataflow(&["passage"])
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn search_finds_relevant_templates() {
        let registry = TemplateRegistry::with_builtins();
        let hits = registry.search("entity resolution");
        assert_eq!(hits[0].name, "entity_resolution_basic");
        let hits = registry.search("missing manufacturer imputation");
        assert_eq!(hits[0].name, "data_imputation_buy");
        let hits = registry.search("person names in text");
        assert_eq!(hits[0].name, "name_extraction");
        assert!(registry.search("quantum chromodynamics").is_empty());
    }

    #[test]
    fn template_pipelines_parse_back_from_pretty() {
        let registry = TemplateRegistry::with_builtins();
        for name in registry.names() {
            let template = registry.get(name).unwrap();
            let pretty = template.pipeline.pretty();
            let reparsed = Pipeline::parse(&pretty)
                .unwrap_or_else(|e| panic!("{name} failed to reparse: {e}\n{pretty}"));
            assert_eq!(&reparsed, &template.pipeline, "{name}");
        }
    }
}
