//! Output validation for LLM modules (§3.1: "LLM outputs typically need
//! proper validation, as textual responses ... could be diverse and
//! unstable").
//!
//! A validator turns the LLM's free-text answer into typed [`Data`], and can
//! reject an answer outright (triggering one strict retry in
//! [`crate::modules::LlmModule`]).

use crate::data::Data;
use lingua_llm_sim::behaviors::langdetect::parse_language_code;
use lingua_llm_sim::noise::{normalize_category, parse_bool_robust};

/// How an LLM module's raw text output is turned into typed data.
#[derive(Debug, Clone)]
pub enum OutputValidator {
    /// Pass the raw text through.
    Passthrough,
    /// Parse a yes/no style judgment into `Data::Bool`.
    YesNo,
    /// Normalize to a closed vocabulary entry (`Data::Str`).
    Category { vocabulary: Vec<String> },
    /// Parse a language code (`Data::Str`).
    LanguageCode,
    /// Parse a number and require it within `[min, max]`.
    NumericRange { min: f64, max: f64 },
}

impl OutputValidator {
    /// Validate/convert raw LLM text. `None` means the answer is unusable and
    /// the module should retry with a stricter instruction.
    pub fn validate(&self, raw: &str) -> Option<Data> {
        match self {
            OutputValidator::Passthrough => Some(Data::Str(raw.trim().to_string())),
            OutputValidator::YesNo => parse_bool_robust(raw).map(Data::Bool),
            OutputValidator::Category { vocabulary } => {
                let normalized = normalize_category(raw, vocabulary);
                if vocabulary.iter().any(|v| v == normalized) {
                    Some(Data::Str(normalized.to_string()))
                } else if normalized.is_empty() {
                    None
                } else {
                    // Out-of-vocabulary but non-empty: keep it (open-world
                    // answers exist), flagged by being absent from the vocab.
                    Some(Data::Str(normalized.to_string()))
                }
            }
            OutputValidator::LanguageCode => {
                parse_language_code(raw).map(|code| Data::Str(code.to_string()))
            }
            OutputValidator::NumericRange { min, max } => {
                let cleaned: String =
                    raw.chars().filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
                let value: f64 = cleaned.parse().ok()?;
                (*min <= value && value <= *max).then_some(Data::Float(value))
            }
        }
    }

    /// The instruction appended to a retry prompt after a failed validation.
    pub fn strict_instruction(&self) -> &'static str {
        match self {
            OutputValidator::Passthrough => "Respond concisely.",
            OutputValidator::YesNo => "Respond with exactly `yes` or `no`, nothing else.",
            OutputValidator::Category { .. } => "Answer with only the exact name, no extra words.",
            OutputValidator::LanguageCode => "Respond with exactly the two-letter language code.",
            OutputValidator::NumericRange { .. } => "Respond with only the number.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yes_no_parses_verbose_answers() {
        let v = OutputValidator::YesNo;
        assert_eq!(v.validate("Yes, these records match."), Some(Data::Bool(true)));
        assert_eq!(v.validate("They appear to be distinct records."), Some(Data::Bool(false)));
        assert_eq!(v.validate("hard to say"), None);
    }

    #[test]
    fn category_normalizes_to_vocabulary() {
        let v = OutputValidator::Category { vocabulary: vec!["Sony".into(), "Microsoft".into()] };
        assert_eq!(v.validate("The manufacturer is Sony."), Some(Data::Str("Sony".into())));
        assert_eq!(v.validate("  Microsoft "), Some(Data::Str("Microsoft".into())));
        // Out-of-vocabulary passes through.
        assert_eq!(v.validate("Frobozz"), Some(Data::Str("Frobozz".into())));
        assert_eq!(v.validate("   "), None);
    }

    #[test]
    fn language_code_validation() {
        let v = OutputValidator::LanguageCode;
        assert_eq!(v.validate("fr"), Some(Data::Str("fr".into())));
        assert_eq!(
            v.validate("The text appears to be written in German (de)."),
            Some(Data::Str("de".into()))
        );
        assert_eq!(v.validate("martian"), None);
    }

    #[test]
    fn numeric_range_validation() {
        let v = OutputValidator::NumericRange { min: 0.0, max: 100.0 };
        assert_eq!(v.validate("42"), Some(Data::Float(42.0)));
        assert_eq!(v.validate("about 55.5 percent"), Some(Data::Float(55.5)));
        assert_eq!(v.validate("150"), None); // out of range
        assert_eq!(v.validate("none"), None);
    }

    #[test]
    fn strict_instructions_differ_by_kind() {
        assert!(OutputValidator::YesNo.strict_instruction().contains("yes"));
        assert!(OutputValidator::LanguageCode.strict_instruction().contains("code"));
    }
}
