//! The compiler: binds each logical operator to a physical module —
//! "like a relational database, it auto-compiles each logical operator into a
//! physical, executable module" (§3) — with the extensibility hook that lets
//! programmers register their own physical modules.
//!
//! Binding policy, in order:
//!
//! 1. An explicit `using custom` goes to the factory registry (error if no
//!    factory is registered for the op type).
//! 2. A registered factory for the op type wins by default.
//! 3. `using llmgc` (or an op whose description matches a code-generation
//!    template) asks the LLM to generate a MangaScript module.
//! 4. `using llm` (or any op with a natural-language description) becomes an
//!    LLM module with a prompt builder and output validator derived from the
//!    op's parameters.
//! 5. Otherwise: compile error.

use crate::context::ExecContext;
use crate::data::{script_to_cell, Data};
use crate::error::CoreError;
use crate::modules::{CustomModule, LlmModule, LlmgcModule, Module, ModuleKind, PromptBuilder};
use crate::pipeline::{LogicalOp, Pipeline};
use crate::validation::OutputValidator;
use lingua_dataset::{csv, Record, Schema, Table};
use lingua_llm_sim::{CodeGenSpec, TemplateKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A factory producing a physical module for a logical op.
pub type ModuleFactory =
    Arc<dyn Fn(&LogicalOp, &mut ExecContext) -> Result<Box<dyn Module>, CoreError> + Send + Sync>;

/// A compiled pipeline: logical ops bound to live modules.
pub struct PhysicalPipeline {
    pub name: String,
    pub ops: Vec<(LogicalOp, Box<dyn Module>)>,
}

impl std::fmt::Debug for PhysicalPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|(op, module)| format!("{} -> {}", op.op_type, module.name()))
            .collect();
        f.debug_struct("PhysicalPipeline").field("name", &self.name).field("ops", &ops).finish()
    }
}

impl PhysicalPipeline {
    /// Human-readable binding summary.
    pub fn describe(&self) -> String {
        let mut out = format!("physical pipeline {}:\n", self.name);
        for (op, module) in &self.ops {
            out.push_str(&format!(
                "  {} -> {} [{}]\n",
                op.op_type,
                module.name(),
                module.kind().name()
            ));
        }
        out
    }

    /// Instantiate an independent copy of this compiled pipeline: every
    /// module is replicated via [`Module::fresh_instance`], sharing no
    /// mutable state with the original. This is how the serving layer
    /// compiles a DSL program once (paying any code-generation LLM calls
    /// once) and then hands each worker its own executable instance.
    ///
    /// Errors with [`CoreError::NotReplicable`] if any bound module is
    /// inherently stateful (e.g. a `CustomModule` built from an `FnMut`
    /// closure).
    pub fn fresh_instance(&self) -> Result<PhysicalPipeline, CoreError> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for (op, module) in &self.ops {
            let fresh = module
                .fresh_instance()
                .ok_or_else(|| CoreError::NotReplicable { module: module.name().to_string() })?;
            ops.push((op.clone(), fresh));
        }
        Ok(PhysicalPipeline { name: self.name.clone(), ops })
    }
}

/// The compiler: a registry of custom-module factories plus the §3 binding
/// policy.
#[derive(Clone, Default)]
pub struct Compiler {
    factories: BTreeMap<String, ModuleFactory>,
}

impl Compiler {
    /// An empty compiler (no builtins).
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// A compiler with the built-in physical modules registered
    /// (`load_csv`, `save_csv`, `select_columns`, `limit`, `dedup_exact`).
    /// All builtins are stateless, so compiled pipelines using them support
    /// [`PhysicalPipeline::fresh_instance`].
    pub fn with_builtins() -> Compiler {
        let mut compiler = Compiler::new();
        compiler.register("load_csv", |op, _ctx| {
            let path = require_param(op, "path")?;
            Ok(Box::new(CustomModule::stateless("load_csv", move |_input, _ctx| {
                let table = csv::read_path(&path)?;
                Ok(Data::Table(table))
            })) as Box<dyn Module>)
        });
        compiler.register("save_csv", |op, _ctx| {
            let path = require_param(op, "path")?;
            Ok(Box::new(CustomModule::stateless("save_csv", move |input, _ctx| {
                let table = input.as_table()?;
                csv::write_path(table, &path)?;
                Ok(Data::Table(table.clone()))
            })) as Box<dyn Module>)
        });
        compiler.register("select_columns", |op, _ctx| {
            let columns = require_param(op, "columns")?;
            Ok(Box::new(CustomModule::stateless("select_columns", move |input, _ctx| {
                let table = input.as_table()?;
                let cols: Vec<&str> = columns.split(',').map(|c| c.trim()).collect();
                Ok(Data::Table(table.select_columns(&cols)?))
            })) as Box<dyn Module>)
        });
        compiler.register("limit", |op, _ctx| {
            let n: usize = require_param(op, "n")?
                .parse()
                .map_err(|_| CoreError::Compile("limit: `n` must be an integer".into()))?;
            Ok(Box::new(CustomModule::stateless("limit", move |input, _ctx| {
                Ok(Data::Table(input.as_table()?.head(n)))
            })) as Box<dyn Module>)
        });
        compiler.register("dedup_exact", |_op, _ctx| {
            Ok(Box::new(CustomModule::stateless("dedup_exact", |input, _ctx| {
                let table = input.into_table()?;
                let schema = table.schema().clone();
                let name = table.name().to_string();
                let mut seen = std::collections::BTreeSet::new();
                let mut rows = Vec::new();
                for row in table.into_rows() {
                    let key = row
                        .iter()
                        .map(|v| format!("{}|{v}", v.type_name()))
                        .collect::<Vec<_>>()
                        .join("\u{1}");
                    if seen.insert(key) {
                        rows.push(row);
                    }
                }
                Ok(Data::Table(Table::with_rows(name, schema, rows)?))
            })) as Box<dyn Module>)
        });
        compiler
    }

    /// Register (or replace) a factory for an op type.
    pub fn register<F>(&mut self, op_type: impl Into<String>, factory: F)
    where
        F: Fn(&LogicalOp, &mut ExecContext) -> Result<Box<dyn Module>, CoreError>
            + Send
            + Sync
            + 'static,
    {
        self.factories.insert(op_type.into(), Arc::new(factory));
    }

    pub fn has_factory(&self, op_type: &str) -> bool {
        self.factories.contains_key(op_type)
    }

    /// Compile a whole pipeline.
    pub fn compile(
        &self,
        pipeline: &Pipeline,
        ctx: &mut ExecContext,
    ) -> Result<PhysicalPipeline, CoreError> {
        let mut span = ctx.tracer.span(lingua_trace::SpanKind::Compile, &pipeline.name);
        span.attr("ops", pipeline.ops.len().to_string());
        let mut ops = Vec::with_capacity(pipeline.ops.len());
        for op in &pipeline.ops {
            let module = self.bind(op, ctx)?;
            ops.push((op.clone(), module));
        }
        Ok(PhysicalPipeline { name: pipeline.name.clone(), ops })
    }

    /// Bind one logical op to a physical module.
    pub fn bind(
        &self,
        op: &LogicalOp,
        ctx: &mut ExecContext,
    ) -> Result<Box<dyn Module>, CoreError> {
        match op.kind {
            Some(ModuleKind::Custom) => {
                let factory = self.factories.get(&op.op_type).ok_or_else(|| {
                    CoreError::Compile(format!(
                        "op `{}` requested a custom module but no factory is registered",
                        op.op_type
                    ))
                })?;
                return factory(op, ctx);
            }
            Some(ModuleKind::Llmgc) => return Ok(Box::new(self.bind_llmgc(op, ctx)?)),
            Some(ModuleKind::Llm) => return self.bind_llm(op),
            Some(ModuleKind::Decorated) | None => {}
        }

        // Default policy.
        if let Some(factory) = self.factories.get(&op.op_type) {
            return factory(op, ctx);
        }
        let desc = op.description().unwrap_or(&op.op_type);
        let hints = op_hints(op);
        if TemplateKind::detect(desc, &hints) != TemplateKind::Identity {
            return Ok(Box::new(self.bind_llmgc(op, ctx)?));
        }
        if op.description().is_some() {
            return self.bind_llm(op);
        }
        Err(CoreError::Compile(format!(
            "cannot bind op `{}`: no factory registered, no code-generation template matches, \
             and no natural-language description was provided",
            op.op_type
        )))
    }

    /// Bind as an LLMGC module (code generation happens now).
    pub fn bind_llmgc(
        &self,
        op: &LogicalOp,
        ctx: &mut ExecContext,
    ) -> Result<LlmgcModule, CoreError> {
        let task =
            op.description().map(|s| s.to_string()).unwrap_or_else(|| op.op_type.replace('_', " "));
        let spec = CodeGenSpec { task, function_name: "process".into(), hints: op_hints(op) };
        LlmgcModule::generate(op.op_type.clone(), spec, ctx)
    }

    /// Bind as an LLM module.
    fn bind_llm(&self, op: &LogicalOp) -> Result<Box<dyn Module>, CoreError> {
        let desc = op
            .description()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("Perform the task: {}", op.op_type.replace('_', " ")));
        let validator = validator_from_params(op);
        let lowered = desc.to_lowercase();
        let is_pair = op.params.get("builder").map(|b| b == "pair").unwrap_or(false)
            || lowered.contains("same entity")
            || lowered.contains("equivalent")
            || op.op_type.contains("resolution");
        let builder = if is_pair {
            PromptBuilder::PairJudgment { description: desc, examples: parse_examples(op) }
        } else {
            let payload_label =
                op.params.get("payload_label").cloned().unwrap_or_else(|| "Text".into());
            let extra_lines = op
                .params
                .get("extra")
                .map(|e| e.lines().map(|l| l.to_string()).collect())
                .unwrap_or_default();
            PromptBuilder::TextTask { description: desc, payload_label, extra_lines }
        };
        let mut module = LlmModule::new(op.op_type.clone(), builder, validator);
        if op.params.get("naive").map(|v| v == "true").unwrap_or(false) {
            module = module.naive();
        }
        Ok(Box::new(module))
    }
}

fn require_param(op: &LogicalOp, key: &str) -> Result<String, CoreError> {
    op.params.get(key).cloned().ok_or_else(|| {
        CoreError::Compile(format!("op `{}` requires parameter `{key}`", op.op_type))
    })
}

fn op_hints(op: &LogicalOp) -> Vec<String> {
    op.params
        .get("hints")
        .map(|h| h.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default()
}

/// `output` param → validator: `yesno`, `lang`, `category:<comma list>`,
/// `range:<min>..<max>`, default passthrough.
fn validator_from_params(op: &LogicalOp) -> OutputValidator {
    match op.params.get("output").map(|s| s.as_str()) {
        Some("yesno") => OutputValidator::YesNo,
        Some("lang") => OutputValidator::LanguageCode,
        Some(spec) if spec.starts_with("category:") => OutputValidator::Category {
            vocabulary: spec["category:".len()..]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        },
        Some(spec) if spec.starts_with("range:") => {
            let parts: Vec<&str> = spec["range:".len()..].split("..").collect();
            let min = parts.first().and_then(|p| p.parse().ok()).unwrap_or(f64::MIN);
            let max = parts.get(1).and_then(|p| p.parse().ok()).unwrap_or(f64::MAX);
            OutputValidator::NumericRange { min, max }
        }
        _ => {
            // Heuristic default: pair/match ops validate yes-no.
            if op.op_type.contains("resolution") || op.op_type.contains("match") {
                OutputValidator::YesNo
            } else {
                OutputValidator::Passthrough
            }
        }
    }
}

/// Parse `examples` param: lines of `text => yes|no`.
fn parse_examples(op: &LogicalOp) -> Vec<(String, bool)> {
    op.params
        .get("examples")
        .map(|text| {
            text.lines()
                .filter_map(|line| {
                    let (body, label) = line.rsplit_once("=>")?;
                    let label = matches!(label.trim(), "yes" | "true");
                    Some((body.trim().to_string(), label))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Build a single-column table from a list of strings (helper shared by
/// built-in modules and the tasks crate).
pub fn strings_to_table(name: &str, column: &str, values: &[String]) -> Table {
    let schema = Schema::of_names([column]);
    let mut table = Table::new(name, schema);
    for value in values {
        table
            .push(Record::new(vec![script_to_cell(&lingua_script::Value::Str(value.clone()))]))
            .expect("single column");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(12);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 12)))
    }

    #[test]
    fn builtin_factories_bind() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let op = LogicalOp::new("load_csv").output("t").param("path", "x.csv");
        let module = compiler.bind(&op, &mut ctx).unwrap();
        assert_eq!(module.kind(), ModuleKind::Custom);
        // Missing parameter is a compile error.
        let op = LogicalOp::new("load_csv").output("t");
        assert!(compiler.bind(&op, &mut ctx).is_err());
    }

    #[test]
    fn llm_binding_for_described_ops() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let op = LogicalOp::new("entity_resolution")
            .output("m")
            .input("r")
            .using(ModuleKind::Llm)
            .param("desc", "Determine if the two records refer to the same entity");
        let module = compiler.bind(&op, &mut ctx).unwrap();
        assert_eq!(module.kind(), ModuleKind::Llm);
    }

    #[test]
    fn llmgc_binding_generates_code() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let op = LogicalOp::new("tokenize")
            .output("t")
            .input("text")
            .using(ModuleKind::Llmgc)
            .param("desc", "tokenize the text into words");
        let module = compiler.bind(&op, &mut ctx).unwrap();
        assert_eq!(module.kind(), ModuleKind::Llmgc);
        assert!(ctx.llm.usage().calls >= 1, "code generation should be metered");
    }

    #[test]
    fn default_policy_prefers_factories_then_codegen_then_llm() {
        let mut compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        // Factory wins even with a description.
        compiler.register("special", |_op, _ctx| {
            Ok(Box::new(CustomModule::new("special", |input, _| Ok(input))) as Box<dyn Module>)
        });
        let op = LogicalOp::new("special").param("desc", "tokenize the text");
        assert_eq!(compiler.bind(&op, &mut ctx).unwrap().kind(), ModuleKind::Custom);
        // Codegen-able description without factory -> llmgc.
        let op = LogicalOp::new("toks").param("desc", "tokenize the text into words");
        assert_eq!(compiler.bind(&op, &mut ctx).unwrap().kind(), ModuleKind::Llmgc);
        // Non-codegen description -> llm.
        let op = LogicalOp::new("summ").param("desc", "summarize the following document");
        assert_eq!(compiler.bind(&op, &mut ctx).unwrap().kind(), ModuleKind::Llm);
        // Nothing at all -> error.
        let op = LogicalOp::new("mystery_op");
        assert!(compiler.bind(&op, &mut ctx).is_err());
    }

    #[test]
    fn custom_kind_requires_a_factory() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let op = LogicalOp::new("nonexistent").using(ModuleKind::Custom);
        assert!(compiler.bind(&op, &mut ctx).is_err());
    }

    #[test]
    fn validators_from_params() {
        let op = LogicalOp::new("x").param("output", "yesno");
        assert!(matches!(validator_from_params(&op), OutputValidator::YesNo));
        let op = LogicalOp::new("x").param("output", "category:Sony, Microsoft");
        match validator_from_params(&op) {
            OutputValidator::Category { vocabulary } => {
                assert_eq!(vocabulary, vec!["Sony", "Microsoft"])
            }
            other => panic!("unexpected {other:?}"),
        }
        let op = LogicalOp::new("x").param("output", "range:0..10");
        assert!(matches!(
            validator_from_params(&op),
            OutputValidator::NumericRange { min, max } if min == 0.0 && max == 10.0
        ));
        let op = LogicalOp::new("entity_resolution");
        assert!(matches!(validator_from_params(&op), OutputValidator::YesNo));
        let op = LogicalOp::new("summarize");
        assert!(matches!(validator_from_params(&op), OutputValidator::Passthrough));
    }

    #[test]
    fn example_parsing() {
        let op = LogicalOp::new("x").param("examples", "a vs a => yes\nb vs c => no");
        let examples = parse_examples(&op);
        assert_eq!(examples.len(), 2);
        assert!(examples[0].1);
        assert!(!examples[1].1);
    }

    #[test]
    fn whole_pipeline_compiles() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let pipeline = Pipeline::parse(
            r#"pipeline p {
                t = load_csv() with { path: "x.csv" };
                s = summarize_table(t) using llm with { desc: "summarize the table contents" };
            }"#,
        )
        .unwrap();
        let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        assert_eq!(physical.ops.len(), 2);
        let description = physical.describe();
        assert!(description.contains("load_csv"));
        assert!(description.contains("[llm]"));
    }

    #[test]
    fn compiled_pipelines_replicate_without_recompiling() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let pipeline = Pipeline::parse(
            r#"pipeline p {
                t = load_csv() with { path: "x.csv" };
                s = summarize_table(t) using llm with { desc: "summarize the table contents" };
            }"#,
        )
        .unwrap();
        let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let usage_after_compile = ctx.llm.usage();
        let copy = physical.fresh_instance().unwrap();
        assert_eq!(copy.ops.len(), physical.ops.len());
        assert_eq!(copy.describe(), physical.describe());
        // Replication never talks to the LLM — compile once, instantiate N times.
        assert_eq!(ctx.llm.usage(), usage_after_compile);
    }

    #[test]
    fn llmgc_replication_skips_code_generation() {
        let compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        let op = LogicalOp::new("toks")
            .output("t")
            .input("text")
            .using(ModuleKind::Llmgc)
            .param("desc", "tokenize the text into words");
        let pipeline = Pipeline::new("gc").op(op);
        let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let generated = ctx.llm.usage();
        assert!(generated.calls >= 1, "compilation generates code");
        let copy = physical.fresh_instance().unwrap();
        assert_eq!(ctx.llm.usage(), generated, "replication re-used the generated program");
        assert_eq!(copy.ops[0].1.kind(), ModuleKind::Llmgc);
    }

    #[test]
    fn stateful_modules_block_replication() {
        let mut compiler = Compiler::with_builtins();
        let mut ctx = ctx();
        compiler.register("counter", |_op, _ctx| {
            let mut n = 0u64;
            Ok(Box::new(CustomModule::new("counter", move |_, _| {
                n += 1;
                Ok(Data::Int(n as i64))
            })) as Box<dyn Module>)
        });
        let pipeline = Pipeline::new("c").op(LogicalOp::new("counter").output("n"));
        let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let err = physical.fresh_instance().unwrap_err();
        assert!(matches!(err, CoreError::NotReplicable { module } if module == "counter"));
    }

    #[test]
    fn strings_to_table_helper() {
        let t = strings_to_table("names", "name", &["a".into(), "b".into()]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().len(), 1);
    }
}
