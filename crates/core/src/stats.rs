//! Execution statistics: per-module invocation counts and the LLM usage
//! deltas that back the paper's cost accounting.

use lingua_llm_sim::Usage;
use std::collections::BTreeMap;

/// Counters collected during pipeline execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Invocations per module name.
    pub invocations: BTreeMap<String, u64>,
    /// LLM usage snapshot at executor start (for delta reporting).
    pub usage_at_start: Usage,
}

impl ExecStats {
    pub fn record_invocation(&mut self, module: &str) {
        *self.invocations.entry(module.to_string()).or_default() += 1;
    }

    pub fn invocations_of(&self, module: &str) -> u64 {
        self.invocations.get(module).copied().unwrap_or(0)
    }

    pub fn total_invocations(&self) -> u64 {
        self.invocations.values().sum()
    }

    /// Render a compact text report.
    pub fn report(&self, usage_now: &Usage) -> String {
        let delta = usage_now.since(&self.usage_at_start);
        let mut out = String::from("module invocations:\n");
        for (name, count) in &self.invocations {
            out.push_str(&format!("  {name}: {count}\n"));
        }
        out.push_str(&format!(
            "llm: {} call(s), {} tokens in, {} tokens out, {} cache hit(s)\n",
            delta.calls, delta.tokens_in, delta.tokens_out, delta.cached_calls
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut stats = ExecStats::default();
        stats.record_invocation("a");
        stats.record_invocation("a");
        stats.record_invocation("b");
        assert_eq!(stats.invocations_of("a"), 2);
        assert_eq!(stats.invocations_of("missing"), 0);
        assert_eq!(stats.total_invocations(), 3);
    }

    #[test]
    fn report_includes_deltas() {
        let mut stats = ExecStats::default();
        stats.record_invocation("matcher");
        let mut usage = Usage::default();
        usage.record(100, 20);
        let report = stats.report(&usage);
        assert!(report.contains("matcher: 1"));
        assert!(report.contains("1 call(s)"));
        assert!(report.contains("100 tokens in"));
    }
}
