//! Execution statistics: per-module invocation counts and the LLM usage
//! deltas that back the paper's cost accounting, plus the dataset-shape
//! statistics (`DatasetStats`) the cost-based planner feeds on.

use lingua_dataset::Table;
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::Usage;
use std::collections::{BTreeMap, BTreeSet};

/// Counters collected during pipeline execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Invocations per module name.
    pub invocations: BTreeMap<String, u64>,
    /// LLM usage snapshot at executor start (for delta reporting).
    pub usage_at_start: Usage,
}

impl ExecStats {
    pub fn record_invocation(&mut self, module: &str) {
        *self.invocations.entry(module.to_string()).or_default() += 1;
    }

    pub fn invocations_of(&self, module: &str) -> u64 {
        self.invocations.get(module).copied().unwrap_or(0)
    }

    pub fn total_invocations(&self) -> u64 {
        self.invocations.values().sum()
    }

    /// Render a compact text report.
    pub fn report(&self, usage_now: &Usage) -> String {
        let delta = usage_now.since(&self.usage_at_start);
        let mut out = String::from("module invocations:\n");
        for (name, count) in &self.invocations {
            out.push_str(&format!("  {name}: {count}\n"));
        }
        out.push_str(&format!(
            "llm: {} call(s), {} tokens in, {} tokens out, {} cache hit(s)\n",
            delta.calls, delta.tokens_in, delta.tokens_out, delta.cached_calls
        ));
        out
    }
}

/// Per-column shape statistics for planning.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ColumnStats {
    pub name: String,
    /// Null cells in the column.
    pub nulls: u64,
    /// Distinct non-null rendered values.
    pub distinct: u64,
    /// Mean approximate token count of the rendered value (nulls count as 0).
    pub avg_tokens: f64,
}

/// Dataset-shape statistics the cost-based planner (`lingua-plan`) feeds on:
/// cardinality, null rate, and average token length per column, plus the
/// observed match selectivity of a labeled pair sample. All numbers come
/// from one pass over an actual [`Table`] — nothing is assumed.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct DatasetStats {
    /// Rows scanned (the planner's per-record multiplier).
    pub rows: u64,
    pub columns: Vec<ColumnStats>,
    /// Fraction of labeled candidate pairs that are true matches, when a
    /// labeled sample was folded in via [`DatasetStats::with_match_selectivity`].
    pub match_selectivity: Option<f64>,
}

impl DatasetStats {
    /// One-pass scan of a table: null counts, distinct counts, and average
    /// rendered token length per column.
    pub fn from_table(table: &Table) -> DatasetStats {
        let schema = table.schema();
        let ncols = schema.len();
        let mut nulls = vec![0u64; ncols];
        let mut tokens = vec![0u64; ncols];
        let mut distinct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ncols];
        for row in table.rows() {
            for (i, value) in row.iter().enumerate().take(ncols) {
                if value.is_null() {
                    nulls[i] += 1;
                } else {
                    let rendered = value.render();
                    tokens[i] += count_tokens(&rendered) as u64;
                    distinct[i].insert(rendered);
                }
            }
        }
        let rows = table.len() as u64;
        let columns = (0..ncols)
            .map(|i| ColumnStats {
                name: schema.name(i).to_string(),
                nulls: nulls[i],
                distinct: distinct[i].len() as u64,
                avg_tokens: if rows == 0 { 0.0 } else { tokens[i] as f64 / rows as f64 },
            })
            .collect();
        DatasetStats { rows, columns, match_selectivity: None }
    }

    /// Fold in the positive rate of a labeled candidate-pair sample.
    pub fn with_match_selectivity(mut self, positives: u64, total: u64) -> DatasetStats {
        if total > 0 {
            self.match_selectivity = Some(positives as f64 / total as f64);
        }
        self
    }

    /// Null rate of a column in `[0, 1]`; `None` for unknown columns.
    pub fn null_rate(&self, column: &str) -> Option<f64> {
        if self.rows == 0 {
            return None;
        }
        self.columns.iter().find(|c| c.name == column).map(|c| c.nulls as f64 / self.rows as f64)
    }

    /// Distinct-value count of a column.
    pub fn cardinality(&self, column: &str) -> Option<u64> {
        self.columns.iter().find(|c| c.name == column).map(|c| c.distinct)
    }

    /// Expected approximate token length of one whole rendered record: the
    /// sum of per-column averages (the prompt-size driver for LLM-bound ops).
    pub fn avg_record_tokens(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_tokens).sum()
    }

    /// Duplicate rate over the highest-cardinality column: `1 - distinct/rows`
    /// where `distinct` is the maximum across columns. A stream whose best
    /// key column still repeats is a stream where response caching pays.
    pub fn duplicate_rate(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let best = self.columns.iter().map(|c| c.distinct).max().unwrap_or(0);
        (1.0 - best as f64 / self.rows as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut stats = ExecStats::default();
        stats.record_invocation("a");
        stats.record_invocation("a");
        stats.record_invocation("b");
        assert_eq!(stats.invocations_of("a"), 2);
        assert_eq!(stats.invocations_of("missing"), 0);
        assert_eq!(stats.total_invocations(), 3);
    }

    #[test]
    fn report_includes_deltas() {
        let mut stats = ExecStats::default();
        stats.record_invocation("matcher");
        let mut usage = Usage::default();
        usage.record(100, 20);
        let report = stats.report(&usage);
        assert!(report.contains("matcher: 1"));
        assert!(report.contains("1 call(s)"));
        assert!(report.contains("100 tokens in"));
    }

    fn sample_table() -> Table {
        use lingua_dataset::{Record, Schema, Value};
        let schema = Schema::of_names(["name", "city"]);
        let rows = vec![
            Record::new(vec![Value::Str("pale ale".into()), Value::Str("austin".into())]),
            Record::new(vec![Value::Str("pale ale".into()), Value::Null]),
            Record::new(vec![Value::Str("stout porter".into()), Value::Str("austin".into())]),
            Record::new(vec![Value::Null, Value::Str("dallas".into())]),
        ];
        Table::with_rows("beers", schema, rows).unwrap()
    }

    #[test]
    fn dataset_stats_one_pass_scan() {
        let stats = DatasetStats::from_table(&sample_table());
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.cardinality("name"), Some(2));
        assert_eq!(stats.cardinality("city"), Some(2));
        assert_eq!(stats.null_rate("name"), Some(0.25));
        assert_eq!(stats.null_rate("city"), Some(0.25));
        assert_eq!(stats.null_rate("missing"), None);
        assert!(stats.avg_record_tokens() > 0.0);
        // Best column has 2 distinct values over 4 rows → half the scans repeat.
        assert!((stats.duplicate_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dataset_stats_selectivity_and_empty_table() {
        let stats = DatasetStats::from_table(&sample_table()).with_match_selectivity(3, 12);
        assert_eq!(stats.match_selectivity, Some(0.25));
        // Zero-denominator sample leaves selectivity unknown.
        let none = DatasetStats::default().with_match_selectivity(0, 0);
        assert_eq!(none.match_selectivity, None);
        assert_eq!(none.null_rate("name"), None);
        assert_eq!(none.duplicate_rate(), 0.0);
    }
}
