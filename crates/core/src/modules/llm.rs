//! LLM modules: the LLM itself as a module (§3.1), with a prompt builder and
//! an output validator. On an unusable answer the module retries once with
//! the validator's strict instruction appended — the simplest form of the
//! paper's "proper validation" of LLM output.

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{Module, ModuleKind};
use crate::validation::OutputValidator;
use lingua_llm_sim::CompletionRequest;

/// How the module turns its input [`Data`] into a prompt.
#[derive(Debug, Clone)]
pub enum PromptBuilder {
    /// Pair judgment over `{"a": record, "b": record}` inputs (entity
    /// resolution). Optional in-context examples calibrate the model.
    PairJudgment { description: String, examples: Vec<(String, bool)> },
    /// Single-payload task: the input renders into a labelled section
    /// (`Text:` / `Product:` / `Passage:`). Extra lines (e.g. `Candidates:`)
    /// are appended verbatim.
    TextTask { description: String, payload_label: String, extra_lines: Vec<String> },
    /// Raw template with `{input}` placeholder.
    Template { template: String },
}

impl PromptBuilder {
    /// Render the prompt for an input, appending the validator's format pin.
    pub fn build(&self, input: &Data, pin: &str) -> Result<String, CoreError> {
        let mut prompt = match self {
            PromptBuilder::PairJudgment { description, examples } => {
                let map = input.as_map().ok_or(CoreError::DataShape {
                    expected: "map with `a` and `b` records",
                    got: input.type_name().into(),
                })?;
                let a = map.get("a").ok_or(CoreError::DataShape {
                    expected: "map with `a` and `b` records",
                    got: "map missing `a`".into(),
                })?;
                let b = map.get("b").ok_or(CoreError::DataShape {
                    expected: "map with `a` and `b` records",
                    got: "map missing `b`".into(),
                })?;
                let mut out = format!("{description}\n");
                for (text, label) in examples {
                    out.push_str(&format!(
                        "Example: {text} => {}\n",
                        if *label { "yes" } else { "no" }
                    ));
                }
                out.push_str(&format!("Record A: {}\n", a.render()));
                out.push_str(&format!("Record B: {}\n", b.render()));
                out
            }
            PromptBuilder::TextTask { description, payload_label, extra_lines } => {
                let mut out = format!("{description}\n");
                for line in extra_lines {
                    out.push_str(line);
                    out.push('\n');
                }
                out.push_str(&format!("{payload_label}: {}\n", input.render()));
                out
            }
            PromptBuilder::Template { template } => {
                // `{input}` is the whole rendered input; for map inputs,
                // `{key}` substitutes individual fields.
                let mut out = template.replace("{input}", &input.render());
                if let Some(map) = input.as_map() {
                    for (key, value) in map {
                        out = out.replace(&format!("{{{key}}}"), &value.render());
                    }
                }
                out + "\n"
            }
        };
        if !pin.is_empty() {
            prompt.push_str(pin);
        }
        Ok(prompt)
    }
}

/// The LLM-as-a-module.
pub struct LlmModule {
    name: String,
    builder: PromptBuilder,
    validator: OutputValidator,
    /// Pin the output format in the first prompt (recommended; the naive
    /// FMs baseline turns this off).
    pin_format: bool,
    /// Retry once with a strict instruction when validation fails.
    retry_on_invalid: bool,
}

impl LlmModule {
    pub fn new(
        name: impl Into<String>,
        builder: PromptBuilder,
        validator: OutputValidator,
    ) -> LlmModule {
        LlmModule {
            name: name.into(),
            builder,
            validator,
            pin_format: true,
            retry_on_invalid: true,
        }
    }

    /// Disable format pinning and retries — naive prompting (the FMs
    /// baseline of Table 1).
    pub fn naive(mut self) -> LlmModule {
        self.pin_format = false;
        self.retry_on_invalid = false;
        self
    }

    pub fn validator(&self) -> &OutputValidator {
        &self.validator
    }
}

impl Module for LlmModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Llm
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let pin = if self.pin_format { self.validator.strict_instruction() } else { "" };
        let prompt = self.builder.build(&input, pin)?;
        let raw = ctx.llm.complete(&CompletionRequest::new(&prompt));
        if let Some(data) = self.validator.validate(&raw) {
            return Ok(data);
        }
        if self.retry_on_invalid {
            ctx.tracer.instant(lingua_trace::SpanKind::Module, "output_retry", Vec::new);
            let strict_prompt = format!("{prompt}\n{}", self.validator.strict_instruction());
            let raw = ctx.llm.complete(&CompletionRequest::new(&strict_prompt));
            if let Some(data) = self.validator.validate(&raw) {
                return Ok(data);
            }
        }
        // Unvalidatable output: surface the raw text rather than fail the
        // pipeline; downstream consumers decide.
        ctx.tracer.instant(lingua_trace::SpanKind::Module, "output_unvalidated", Vec::new);
        Ok(Data::Str(raw))
    }

    fn describe(&self) -> String {
        format!("llm module `{}` ({:?})", self.name, self.builder)
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        // Prompt builder and validator are immutable configuration; an LLM
        // module carries no per-run state, so replication is a field clone.
        Some(Box::new(LlmModule {
            name: self.name.clone(),
            builder: self.builder.clone(),
            validator: self.validator.clone(),
            pin_format: self.pin_format,
            retry_on_invalid: self.retry_on_invalid,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(3);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 3)))
    }

    fn pair_input(a: &str, b: &str) -> Data {
        // Beer-flavoured field maps rendered as records.
        Data::map([
            ("a".to_string(), Data::Str(a.to_string())),
            ("b".to_string(), Data::Str(b.to_string())),
        ])
    }

    #[test]
    fn pair_judgment_module_produces_bool() {
        let mut ctx = ctx();
        let mut module = LlmModule::new(
            "matcher",
            PromptBuilder::PairJudgment {
                description: "Determine if the two records refer to the same entity.".into(),
                examples: vec![("a vs a".into(), true)],
            },
            OutputValidator::YesNo,
        );
        let input = pair_input(
            "beer_name: Hoppy Badger; brewery: Stonegate Brewing",
            "beer_name: Hoppy Badger; brewery: Stonegate Brewing",
        );
        let out = module.invoke(input, &mut ctx).unwrap();
        assert_eq!(out, Data::Bool(true));
        assert!(ctx.llm.usage().calls >= 1);
    }

    #[test]
    fn text_task_with_candidates_imputes() {
        let mut ctx = ctx();
        let mut module = LlmModule::new(
            "imputer",
            PromptBuilder::TextTask {
                description: "Fill in the missing manufacturer for this product.".into(),
                payload_label: "Product".into(),
                extra_lines: vec!["Candidates: Sony, Microsoft, Nintendo".into()],
            },
            OutputValidator::Category {
                vocabulary: vec!["Sony".into(), "Microsoft".into(), "Nintendo".into()],
            },
        );
        let out = module
            .invoke(
                Data::Str("name: Sony Vista 300 Webcam; description: compact webcam".into()),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(out, Data::Str("Sony".into()));
    }

    #[test]
    fn template_builder_substitutes_input() {
        let builder = PromptBuilder::Template { template: "Summarize.\nText: {input}".into() };
        let prompt = builder.build(&Data::Str("abc".into()), "").unwrap();
        assert!(prompt.contains("Text: abc"));
    }

    #[test]
    fn pair_judgment_requires_the_right_shape() {
        let mut ctx = ctx();
        let mut module = LlmModule::new(
            "matcher",
            PromptBuilder::PairJudgment { description: "Same entity?".into(), examples: vec![] },
            OutputValidator::YesNo,
        );
        let err = module.invoke(Data::Str("not a map".into()), &mut ctx).unwrap_err();
        assert!(matches!(err, CoreError::DataShape { .. }));
        let err = module.invoke(Data::map([("a".to_string(), Data::Null)]), &mut ctx).unwrap_err();
        assert!(matches!(err, CoreError::DataShape { .. }));
    }

    #[test]
    fn naive_mode_skips_pin_and_retry() {
        let module = LlmModule::new(
            "naive",
            PromptBuilder::Template { template: "{input}".into() },
            OutputValidator::YesNo,
        )
        .naive();
        assert!(!module.pin_format);
        assert!(!module.retry_on_invalid);
    }

    #[test]
    fn language_detection_module() {
        let mut ctx = ctx();
        let mut module = LlmModule::new(
            "langdetect",
            PromptBuilder::TextTask {
                description: "What language is this text?".into(),
                payload_label: "Text".into(),
                extra_lines: vec![],
            },
            OutputValidator::LanguageCode,
        );
        let out = module
            .invoke(
                Data::Str(
                    "Hier, le conseil a discuté du budget avec les membres dans la réunion.".into(),
                ),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(out, Data::Str("fr".into()));
    }
}
