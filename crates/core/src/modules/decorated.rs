//! Decorated modules: "the most advanced module in LINGUA MANGA, a decorated
//! module can comprise multiple basic modules and be enhanced by the
//! optimizer" (§3.1).
//!
//! A [`DecoratedModule`] chains stages (each any [`Module`]) and can apply an
//! output validator to the final result. Optimizer enhancements compose the
//! same way: wrap a stage in [`crate::optimizer::Simulated`] and it plugs in
//! here unchanged.

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{Module, ModuleKind};
use crate::validation::OutputValidator;

/// A chain of modules with optional final output validation.
pub struct DecoratedModule {
    name: String,
    stages: Vec<Box<dyn Module>>,
    output_validator: Option<OutputValidator>,
    invocations: u64,
}

impl DecoratedModule {
    pub fn new(name: impl Into<String>) -> DecoratedModule {
        DecoratedModule {
            name: name.into(),
            stages: Vec::new(),
            output_validator: None,
            invocations: 0,
        }
    }

    /// Append a stage.
    pub fn stage(mut self, module: Box<dyn Module>) -> DecoratedModule {
        self.stages.push(module);
        self
    }

    /// Validate the final output.
    pub fn with_output_validator(mut self, validator: OutputValidator) -> DecoratedModule {
        self.output_validator = Some(validator);
        self
    }

    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl Module for DecoratedModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Decorated
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        self.invocations += 1;
        let mut current = input;
        for stage in &mut self.stages {
            ctx.stats.record_invocation(stage.name());
            current = stage.invoke(current, ctx)?;
        }
        if let Some(validator) = &self.output_validator {
            if let Data::Str(text) = &current {
                if let Some(validated) = validator.validate(text) {
                    return Ok(validated);
                }
            }
        }
        Ok(current)
    }

    fn describe(&self) -> String {
        let stages: Vec<String> = self.stages.iter().map(|s| s.describe()).collect();
        format!(
            "decorated module `{}` with {} stage(s):\n{}",
            self.name,
            stages.len(),
            stages.join("\n")
        )
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        // Replicable iff every stage is; the invocation counter starts at 0
        // in the copy (it is per-instance bookkeeping, not configuration).
        let mut stages = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            stages.push(stage.fresh_instance()?);
        }
        Some(Box::new(DecoratedModule {
            name: self.name.clone(),
            stages,
            output_validator: self.output_validator.clone(),
            invocations: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::CustomModule;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(6);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 6)))
    }

    #[test]
    fn stages_run_in_order() {
        let mut ctx = ctx();
        let mut module = DecoratedModule::new("pipeline")
            .stage(Box::new(CustomModule::new("add_a", |input, _| {
                Ok(Data::Str(format!("{}a", input.render())))
            })))
            .stage(Box::new(CustomModule::new("add_b", |input, _| {
                Ok(Data::Str(format!("{}b", input.render())))
            })));
        let out = module.invoke(Data::Str("x".into()), &mut ctx).unwrap();
        assert_eq!(out, Data::Str("xab".into()));
        assert_eq!(module.stage_count(), 2);
        assert_eq!(module.invocations(), 1);
        assert_eq!(ctx.stats.invocations_of("add_a"), 1);
    }

    #[test]
    fn output_validator_applies_to_text_results() {
        let mut ctx = ctx();
        let mut module = DecoratedModule::new("validated")
            .stage(Box::new(CustomModule::new("speak", |_, _| {
                Ok(Data::Str("Yes, definitely the same.".into()))
            })))
            .with_output_validator(OutputValidator::YesNo);
        let out = module.invoke(Data::Null, &mut ctx).unwrap();
        assert_eq!(out, Data::Bool(true));
    }

    #[test]
    fn stage_errors_propagate() {
        let mut ctx = ctx();
        let mut module = DecoratedModule::new("failing")
            .stage(Box::new(CustomModule::new("boom", |_, _| {
                Err(CoreError::Module { module: "boom".into(), message: "bad".into() })
            })));
        assert!(module.invoke(Data::Null, &mut ctx).is_err());
    }

    #[test]
    fn empty_decorated_module_is_identity() {
        let mut ctx = ctx();
        let mut module = DecoratedModule::new("empty");
        assert_eq!(module.invoke(Data::Int(3), &mut ctx).unwrap(), Data::Int(3));
    }
}
