//! Pipelined fan-out over a list: the module-level client of
//! [`crate::executor::try_parallel_map_pipelined`].
//!
//! An LLM-bound stage spends its time *waiting*, not computing — so a worker
//! that dispatches one record at a time can never fill a continuous batcher's
//! size-triggered batches; it trickles one request per micro-batch window.
//! [`PipelinedMapModule`] lifts a per-record module over `Data::List` input
//! at a configurable in-flight `depth`: up to `depth` records from the same
//! invocation sit inside the service layer concurrently, which is exactly
//! the oversubscription a batcher needs to fill batches from a single
//! worker.

use crate::context::{ExecContext, ModuleRegistry};
use crate::data::Data;
use crate::error::CoreError;
use crate::executor::try_parallel_map_pipelined;
use crate::modules::{Module, ModuleKind};
use crate::stats::ExecStats;
use std::sync::Arc;

/// Builds a fresh per-lane instance of the inner module. Shared (immutably)
/// by every instance of the map, so a compiled pipeline can be replicated
/// per serving worker without re-running code generation.
type InnerFactory = dyn Fn() -> Box<dyn Module> + Send + Sync;

/// Maps an inner module over the elements of a `Data::List` with up to
/// `depth` elements in flight at once. Non-list input degenerates to a
/// single inline invocation, so the module is a drop-in wrapper around its
/// inner stage.
///
/// Each lane runs a **fresh instance** of the inner module against a private
/// context (shared LLM service and tools, private registry and stats), with
/// the job's [`CancelToken`](lingua_llm_sim::CancelToken) installed as the
/// lane's thread-local cancel scope — service layers observe the job's
/// deadline from every lane exactly as they would on the worker thread.
pub struct PipelinedMapModule {
    name: String,
    depth: usize,
    inner: Arc<InnerFactory>,
}

impl PipelinedMapModule {
    /// Wrap `inner` (a factory producing fresh instances of the per-record
    /// stage) at the given in-flight depth. Depth is clamped to at least 1.
    pub fn new<F>(name: impl Into<String>, depth: usize, inner: F) -> PipelinedMapModule
    where
        F: Fn() -> Box<dyn Module> + Send + Sync + 'static,
    {
        PipelinedMapModule { name: name.into(), depth: depth.max(1), inner: Arc::new(inner) }
    }

    /// The configured in-flight depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Run one element through a fresh inner instance in a lane-private
    /// context.
    fn run_one(&self, item: Data, lane_ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let mut module = (self.inner)();
        module.invoke(item, lane_ctx)
    }
}

/// A lane's private context: shared services, private per-run state. The
/// tracer field is assigned directly (not via `with_tracer`, which would
/// wrap the already-traced shared LLM a second time).
fn lane_context(ctx: &ExecContext) -> ExecContext {
    ExecContext {
        llm: Arc::clone(&ctx.llm),
        tools: ctx.tools.clone(),
        registry: ModuleRegistry::new(),
        stats: ExecStats::default(),
        tracer: ctx.tracer.clone(),
        cancel: ctx.cancel.clone(),
    }
}

impl Module for PipelinedMapModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Custom
    }

    fn describe(&self) -> String {
        format!("pipelined map `{}` (depth {})", self.name, self.depth)
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let Data::List(items) = input else {
            let mut lane_ctx = lane_context(ctx);
            let out = self.run_one(input, &mut lane_ctx);
            ctx.stats.record_invocation(&self.name);
            return out;
        };
        let count = items.len();
        // Snapshot the shared pieces so the lanes need no reference to the
        // caller's (mutably borrowed) context.
        let template = lane_context(ctx);
        let cancel = ctx.cancel.clone();
        // One lane thread group from this worker: `threads == 1`, with
        // `depth` overlapping in-flight calls.
        let results = try_parallel_map_pipelined(&items, 1, self.depth, &cancel, |item| {
            let mut lane_ctx = lane_context(&template);
            self.run_one(item.clone(), &mut lane_ctx)
        })?;
        for _ in 0..count {
            ctx.stats.record_invocation(&self.name);
        }
        Ok(Data::List(results.into_iter().collect::<Result<Vec<Data>, CoreError>>()?))
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(PipelinedMapModule {
            name: self.name.clone(),
            depth: self.depth,
            inner: Arc::clone(&self.inner),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::CustomModule;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::{CancelToken, SimLlm};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(21);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 21)))
    }

    fn upper_factory() -> Box<dyn Module> {
        Box::new(CustomModule::stateless("upper", |input, _| {
            Ok(Data::Str(input.render().to_uppercase()))
        }))
    }

    #[test]
    fn maps_a_list_and_preserves_order() {
        let mut module = PipelinedMapModule::new("map_upper", 4, upper_factory);
        let mut ctx = ctx();
        let input = Data::List((0..10).map(|i| Data::Str(format!("item {i}"))).collect());
        let out = module.invoke(input, &mut ctx).unwrap();
        let items = out.as_list().unwrap();
        assert_eq!(items.len(), 10);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item, &Data::Str(format!("ITEM {i}")));
        }
        assert_eq!(ctx.stats.invocations_of("map_upper"), 10);
    }

    #[test]
    fn non_list_input_runs_inline() {
        let mut module = PipelinedMapModule::new("map_upper", 4, upper_factory);
        let mut ctx = ctx();
        let out = module.invoke(Data::Str("lone".into()), &mut ctx).unwrap();
        assert_eq!(out, Data::Str("LONE".into()));
        assert_eq!(ctx.stats.invocations_of("map_upper"), 1);
    }

    #[test]
    fn depth_elements_are_genuinely_in_flight_together() {
        const DEPTH: usize = 4;
        // Every invocation blocks on a shared barrier sized to the depth:
        // the map only completes if DEPTH calls truly overlap.
        let barrier = Arc::new(Barrier::new(DEPTH));
        let mut module = PipelinedMapModule::new("rendezvous", DEPTH, move || {
            let barrier = Arc::clone(&barrier);
            Box::new(CustomModule::stateless("rendezvous", move |input, _| {
                barrier.wait();
                Ok(input)
            }))
        });
        let mut ctx = ctx();
        let input = Data::List((0..DEPTH).map(|i| Data::Int(i as i64)).collect());
        let out = module.invoke(input, &mut ctx).unwrap();
        assert_eq!(out.as_list().unwrap().len(), DEPTH);
    }

    #[test]
    fn inner_error_fails_the_whole_map() {
        let mut module = PipelinedMapModule::new("fail_odd", 2, || {
            Box::new(CustomModule::stateless("fail_odd", |input, _| match input {
                Data::Int(i) if i % 2 == 1 => {
                    Err(CoreError::DataShape { expected: "even", got: format!("{i}") })
                }
                other => Ok(other),
            }))
        });
        let mut ctx = ctx();
        let input = Data::List((0..4).map(Data::Int).collect());
        assert!(module.invoke(input, &mut ctx).is_err());
    }

    #[test]
    fn cancelled_job_stops_the_map() {
        let mut module = PipelinedMapModule::new("map_upper", 2, upper_factory);
        let mut ctx = ctx();
        let token = CancelToken::unbounded();
        token.cancel();
        ctx.cancel = token;
        let input = Data::List((0..4).map(|i| Data::Str(format!("item {i}"))).collect());
        assert!(matches!(module.invoke(input, &mut ctx), Err(CoreError::Cancelled { .. })));
    }

    #[test]
    fn fresh_instances_share_the_factory_but_not_state() {
        let counter = Arc::new(AtomicUsize::new(0));
        let module = PipelinedMapModule::new("counted", 2, {
            let counter = Arc::clone(&counter);
            move || {
                counter.fetch_add(1, Ordering::Relaxed);
                Box::new(CustomModule::stateless("counted", |input, _| Ok(input)))
            }
        });
        let mut replica = module.fresh_instance().expect("replicable");
        let mut ctx = ctx();
        let out = replica.invoke(Data::List(vec![Data::Int(1), Data::Int(2)]), &mut ctx).unwrap();
        assert_eq!(out.as_list().unwrap().len(), 2);
        assert_eq!(counter.load(Ordering::Relaxed), 2, "one fresh inner per element");
        assert_eq!(replica.describe(), "pipelined map `counted` (depth 2)");
    }
}
