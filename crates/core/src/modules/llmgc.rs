//! LLMGC modules: LLM-generated MangaScript programs behind the module
//! interface (§3.1). The program really executes — compiled once to
//! bytecode and run on the `lingua-script` VM; the host bridge gives it
//! `call_llm`, `call_module`, and `call_tool`.

use crate::context::{ExecContext, HostBridge};
use crate::data::Data;
use crate::error::{CoreError, TrapKind};
use crate::modules::{Module, ModuleKind};
use lingua_llm_sim::{CodeGenSpec, GeneratedCode};
use lingua_script::{parse, CompileCache, CompiledScript, Program, ScriptError, Vm};
use std::sync::{Arc, OnceLock};

/// Default interpreter fuel for one module invocation.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// The process-wide compiled-program cache, keyed by source fingerprint.
/// Validator cycles execute one candidate thousands of times; every
/// execution shares the `Arc<CompiledScript>` compiled here exactly once,
/// and a repaired program (new source, new fingerprint) recompiles exactly
/// once. [`CompileCache::stats`] exposes per-key compile/hit counts so
/// tests can pin that invariant.
pub fn compile_cache() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(CompileCache::new)
}

/// Deadline→fuel conversion: how many interpreter ticks one millisecond of
/// remaining job deadline buys. Ticks are tens of nanoseconds of pure
/// interpretation, so 20k ticks/ms is conservative — a program cut by this
/// cap was going to blow its deadline anyway; the cap just stops it from
/// burning a worker for the rest of its (dead) allowance.
pub const FUEL_PER_MS: u64 = 20_000;

/// A module whose body is LLM-generated code.
pub struct LlmgcModule {
    name: String,
    spec: CodeGenSpec,
    source: String,
    program: Program,
    /// Bytecode compiled once per generation (shared through the global
    /// [`compile_cache`]); every invocation runs this, not the AST.
    compiled: Arc<CompiledScript>,
    entry: String,
    fuel: u64,
    /// Generation metadata for experiment introspection.
    pub generation: Option<GeneratedCode>,
}

impl LlmgcModule {
    /// Ask the context's LLM to generate the module's code now.
    pub fn generate(
        name: impl Into<String>,
        spec: CodeGenSpec,
        ctx: &ExecContext,
    ) -> Result<LlmgcModule, CoreError> {
        let generated = ctx.llm.generate_code(&spec);
        LlmgcModule::from_generated(name, spec, generated)
    }

    /// Wrap an already-generated program.
    pub fn from_generated(
        name: impl Into<String>,
        spec: CodeGenSpec,
        generated: GeneratedCode,
    ) -> Result<LlmgcModule, CoreError> {
        let program = parse(&generated.source)?;
        let compiled = compile_cache().get_or_compile(&generated.source, &program);
        let entry = if spec.function_name.is_empty() {
            "process".to_string()
        } else {
            spec.function_name.clone()
        };
        Ok(LlmgcModule {
            name: name.into(),
            source: generated.source.clone(),
            program,
            compiled,
            entry,
            fuel: DEFAULT_FUEL,
            spec,
            generation: Some(generated),
        })
    }

    /// Build from hand-supplied source (a user pasting code is also §3.1's
    /// "code snippets to optimize the code generation process").
    pub fn from_source(
        name: impl Into<String>,
        spec: CodeGenSpec,
        source: impl Into<String>,
    ) -> Result<LlmgcModule, CoreError> {
        let source = source.into();
        let program = parse(&source)?;
        let compiled = compile_cache().get_or_compile(&source, &program);
        let entry = if spec.function_name.is_empty() {
            "process".to_string()
        } else {
            spec.function_name.clone()
        };
        Ok(LlmgcModule {
            name: name.into(),
            source,
            program,
            compiled,
            entry,
            fuel: DEFAULT_FUEL,
            spec,
            generation: None,
        })
    }

    pub fn with_fuel(mut self, fuel: u64) -> LlmgcModule {
        self.fuel = fuel;
        self
    }

    pub fn source(&self) -> &str {
        &self.source
    }

    pub fn spec(&self) -> &CodeGenSpec {
        &self.spec
    }

    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// Replace the program (used by the Validator's repair cycle). The new
    /// source carries a new fingerprint, so this is the one place a repair
    /// triggers a recompile.
    pub fn replace_program(&mut self, generated: GeneratedCode) -> Result<(), CoreError> {
        let program = parse(&generated.source)?;
        self.compiled = compile_cache().get_or_compile(&generated.source, &program);
        self.program = program;
        self.source = generated.source.clone();
        self.generation = Some(generated);
        Ok(())
    }
}

impl Module for LlmgcModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Llmgc
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let script_input = input.to_script();
        // Map the job's remaining deadline onto the fuel budget: a runaway
        // generated program cannot outlive its job. When the cap bites and
        // the program runs dry, that is a DeadlineFuel trap (the job was too
        // slow) — distinct from OutOfFuel (the program too hungry).
        let mut fuel = self.fuel;
        let mut deadline_capped = false;
        if let Some(remaining) = ctx.cancel.remaining() {
            let cap = (remaining.as_millis() as u64).saturating_mul(FUEL_PER_MS).max(1);
            if cap < fuel {
                fuel = cap;
                deadline_capped = true;
            }
        }
        let mut vm = Vm::new(Arc::clone(&self.compiled)).with_fuel(fuel);
        let mut bridge = HostBridge { ctx };
        let result =
            vm.call(&mut bridge, &self.entry, vec![script_input]).map_err(|e| match e {
                ScriptError::OutOfFuel if deadline_capped => {
                    CoreError::Trap { module: self.name.clone(), trap: TrapKind::DeadlineFuel }
                }
                ScriptError::OutOfFuel => {
                    CoreError::Trap { module: self.name.clone(), trap: TrapKind::OutOfFuel }
                }
                ScriptError::RecursionLimit { .. } => {
                    CoreError::Trap { module: self.name.clone(), trap: TrapKind::Recursion }
                }
                other => {
                    CoreError::Module { module: self.name.clone(), message: other.to_string() }
                }
            })?;
        Ok(Data::from_script(&result))
    }

    fn describe(&self) -> String {
        format!("llmgc module `{}`:\n{}", self.name, self.source)
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        // The generated program is immutable between repair cycles and each
        // invocation builds its own VM over the shared bytecode, so
        // replication bumps an `Arc` without re-running (or re-billing) code
        // generation — and without recompiling.
        Some(Box::new(LlmgcModule {
            name: self.name.clone(),
            spec: self.spec.clone(),
            source: self.source.clone(),
            program: self.program.clone(),
            compiled: Arc::clone(&self.compiled),
            entry: self.entry.clone(),
            fuel: self.fuel,
            generation: self.generation.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(4);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 4)))
    }

    fn spec(task: &str) -> CodeGenSpec {
        CodeGenSpec { task: task.into(), function_name: "process".into(), hints: vec![] }
    }

    #[test]
    fn hand_written_source_runs() {
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source(
            "doubler",
            spec("double every number"),
            "fn process(xs) { let out = []; for x in xs { push(out, x * 2); } return out; }",
        )
        .unwrap();
        let out = module.invoke(Data::List(vec![Data::Int(1), Data::Int(2)]), &mut ctx).unwrap();
        assert_eq!(out, Data::List(vec![Data::Int(2), Data::Int(4)]));
        assert_eq!(module.kind(), ModuleKind::Llmgc);
        assert!(module.describe().contains("fn process"));
    }

    #[test]
    fn generated_tokenizer_runs_end_to_end() {
        let mut ctx = ctx();
        let mut module =
            LlmgcModule::generate("tokenizer", spec("tokenize the text into words"), &ctx).unwrap();
        // The generation may carry a bug; either way the program must parse
        // and run (or fail with a module error, never panic).
        let result = module.invoke(Data::Str("Hello there world".into()), &mut ctx);
        match result {
            Ok(Data::List(tokens)) => assert!(!tokens.is_empty()),
            Ok(other) => panic!("unexpected output {other:?}"),
            Err(CoreError::Module { .. }) => {} // a buggy generation crashing is legitimate
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn scripts_reach_tools_through_the_bridge() {
        let mut ctx = ctx();
        ctx.tools.register_list("colors", vec!["red".into(), "blue".into()]);
        let mut module = LlmgcModule::from_source(
            "tool_user",
            spec("list colors"),
            r#"fn process(x) { return len(call_tool("colors")); }"#,
        )
        .unwrap();
        assert_eq!(module.invoke(Data::Null, &mut ctx).unwrap(), Data::Int(2));
    }

    #[test]
    fn scripts_reach_the_llm_through_the_bridge() {
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source(
            "asker",
            spec("summarize"),
            r#"fn process(text) { return call_llm("Summarize the following.\nText: " + text); }"#,
        )
        .unwrap();
        let out = module
            .invoke(Data::Str("The audit finished early. Everyone was pleased.".into()), &mut ctx)
            .unwrap();
        assert!(out.as_str().unwrap().contains("audit"));
    }

    #[test]
    fn runaway_scripts_hit_the_fuel_limit() {
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source(
            "loopy",
            spec("loop forever"),
            "fn process(x) { while true { } return x; }",
        )
        .unwrap()
        .with_fuel(5_000);
        let err = module.invoke(Data::Null, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("fuel"), "{err}");
    }

    #[test]
    fn runaway_scripts_trap_as_out_of_fuel() {
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source(
            "loopy2",
            spec("loop forever"),
            "fn process(x) { while true { } return x; }",
        )
        .unwrap()
        .with_fuel(5_000);
        let err = module.invoke(Data::Null, &mut ctx).unwrap_err();
        assert_eq!(err, CoreError::Trap { module: "loopy2".into(), trap: TrapKind::OutOfFuel });
    }

    #[test]
    fn runaway_recursion_traps_without_overflowing() {
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source(
            "deep",
            spec("recurse forever"),
            "fn process(x) { return process(x); }",
        )
        .unwrap();
        let err = module.invoke(Data::Null, &mut ctx).unwrap_err();
        assert_eq!(err, CoreError::Trap { module: "deep".into(), trap: TrapKind::Recursion });
    }

    #[test]
    fn deadline_caps_fuel_and_traps_as_deadline_fuel() {
        use lingua_llm_sim::CancelToken;
        use std::time::Duration;
        let mut ctx = ctx();
        // ~1ms of deadline left buys ~FUEL_PER_MS ticks — far below the
        // default 2M budget, so the cap engages; the infinite loop then runs
        // the capped budget dry.
        ctx.cancel = CancelToken::after(Duration::from_millis(1));
        let mut module = LlmgcModule::from_source(
            "slow",
            spec("loop forever"),
            "fn process(x) { while true { } return x; }",
        )
        .unwrap();
        let err = module.invoke(Data::Null, &mut ctx).unwrap_err();
        assert_eq!(err, CoreError::Trap { module: "slow".into(), trap: TrapKind::DeadlineFuel });
    }

    #[test]
    fn generous_deadline_leaves_the_fuel_budget_alone() {
        use lingua_llm_sim::CancelToken;
        use std::time::Duration;
        let mut ctx = ctx();
        ctx.cancel = CancelToken::after(Duration::from_secs(3600));
        let mut module =
            LlmgcModule::from_source("fine", spec("identity"), "fn process(x) { return x; }")
                .unwrap();
        assert_eq!(module.invoke(Data::Int(9), &mut ctx).unwrap(), Data::Int(9));
    }

    #[test]
    fn replace_program_swaps_behaviour() {
        let mut ctx = ctx();
        let mut module =
            LlmgcModule::from_source("swappable", spec("id"), "fn process(x) { return 1; }")
                .unwrap();
        assert_eq!(module.invoke(Data::Null, &mut ctx).unwrap(), Data::Int(1));
        module
            .replace_program(GeneratedCode {
                source: "fn process(x) { return 2; }".into(),
                template: lingua_llm_sim::TemplateKind::Identity,
                bug: None,
            })
            .unwrap();
        assert_eq!(module.invoke(Data::Null, &mut ctx).unwrap(), Data::Int(2));
        // Broken replacement is rejected and the old program kept.
        let err = module.replace_program(GeneratedCode {
            source: "fn process(x) {".into(),
            template: lingua_llm_sim::TemplateKind::Identity,
            bug: None,
        });
        assert!(err.is_err());
        assert_eq!(module.invoke(Data::Null, &mut ctx).unwrap(), Data::Int(2));
    }

    #[test]
    fn bad_source_fails_to_construct() {
        assert!(LlmgcModule::from_source("bad", spec("x"), "fn process( {").is_err());
    }

    #[test]
    fn n_executions_compile_exactly_once_and_repair_recompiles_once() {
        // Sources unique to this test so the global cache's per-key stats
        // are deterministic even with other tests running concurrently.
        let v1 = "fn process(x) { let cache_probe_v1 = 0; return x + 1; }";
        let v2 = "fn process(x) { let cache_probe_v2 = 0; return x + 2; }";
        let mut ctx = ctx();
        let mut module = LlmgcModule::from_source("cached", spec("inc"), v1).unwrap();
        for i in 0..50 {
            assert_eq!(module.invoke(Data::Int(i), &mut ctx).unwrap(), Data::Int(i + 1));
        }
        // 50 executions, one compile; invocations never touch the compiler.
        assert_eq!(compile_cache().stats(v1), (1, 0));

        // Replicas share the compiled program without consulting the cache.
        let mut replica = module.fresh_instance().unwrap();
        assert_eq!(replica.invoke(Data::Int(1), &mut ctx).unwrap(), Data::Int(2));
        assert_eq!(compile_cache().stats(v1), (1, 0));

        // A second module over identical source is a cache hit, not a compile.
        let _twin = LlmgcModule::from_source("twin", spec("inc"), v1).unwrap();
        assert_eq!(compile_cache().stats(v1), (1, 1));

        // Repair swaps the source: exactly one compile for the new key.
        module
            .replace_program(GeneratedCode {
                source: v2.into(),
                template: lingua_llm_sim::TemplateKind::Identity,
                bug: None,
            })
            .unwrap();
        for i in 0..50 {
            assert_eq!(module.invoke(Data::Int(i), &mut ctx).unwrap(), Data::Int(i + 2));
        }
        assert_eq!(compile_cache().stats(v2), (1, 0));
        assert_eq!(compile_cache().stats(v1), (1, 1));
    }
}
