//! Custom modules: hand-written code behind the standard module interface —
//! "implemented with manually written code ... created by users with
//! programming skills or provided by LINGUA MANGA as a default built-in
//! module" (§3.1).

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{Module, ModuleKind};

type CustomFn = dyn FnMut(Data, &mut ExecContext) -> Result<Data, CoreError> + Send;

/// A module wrapping an arbitrary Rust closure.
pub struct CustomModule {
    name: String,
    description: String,
    f: Box<CustomFn>,
}

impl CustomModule {
    pub fn new<F>(name: impl Into<String>, f: F) -> CustomModule
    where
        F: FnMut(Data, &mut ExecContext) -> Result<Data, CoreError> + Send + 'static,
    {
        let name = name.into();
        CustomModule { description: format!("custom module `{name}`"), name, f: Box::new(f) }
    }

    pub fn with_description(mut self, description: impl Into<String>) -> CustomModule {
        self.description = description.into();
        self
    }
}

impl Module for CustomModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Custom
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        (self.f)(input, ctx)
    }

    fn describe(&self) -> String {
        self.description.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn custom_module_runs_closures_with_state() {
        let world = WorldSpec::generate(1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 1)));
        let mut counter = 0u32;
        let mut module = CustomModule::new("counter", move |input, _| {
            counter += 1;
            Ok(Data::Str(format!("{}#{counter}", input.render())))
        })
        .with_description("counts invocations");
        assert_eq!(module.kind(), ModuleKind::Custom);
        assert_eq!(module.describe(), "counts invocations");
        assert_eq!(module.invoke(Data::Str("a".into()), &mut ctx).unwrap(), Data::Str("a#1".into()));
        assert_eq!(module.invoke(Data::Str("b".into()), &mut ctx).unwrap(), Data::Str("b#2".into()));
    }
}
