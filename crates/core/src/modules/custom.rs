//! Custom modules: hand-written code behind the standard module interface —
//! "implemented with manually written code ... created by users with
//! programming skills or provided by LINGUA MANGA as a default built-in
//! module" (§3.1).

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{Module, ModuleKind};
use std::sync::Arc;

type CustomFn = dyn FnMut(Data, &mut ExecContext) -> Result<Data, CoreError> + Send;
type SharedFn = dyn Fn(Data, &mut ExecContext) -> Result<Data, CoreError> + Send + Sync;

/// The module body: either an arbitrary stateful closure (not replicable) or
/// a shared stateless function (replicable via [`Module::fresh_instance`]).
enum Body {
    Stateful(Box<CustomFn>),
    Stateless(Arc<SharedFn>),
}

/// A module wrapping an arbitrary Rust closure.
pub struct CustomModule {
    name: String,
    description: String,
    body: Body,
}

impl CustomModule {
    /// Wrap a (possibly stateful) `FnMut` closure. The resulting module
    /// cannot be replicated for concurrent serving; prefer
    /// [`CustomModule::stateless`] when the closure carries no mutable state.
    pub fn new<F>(name: impl Into<String>, f: F) -> CustomModule
    where
        F: FnMut(Data, &mut ExecContext) -> Result<Data, CoreError> + Send + 'static,
    {
        let name = name.into();
        CustomModule {
            description: format!("custom module `{name}`"),
            name,
            body: Body::Stateful(Box::new(f)),
        }
    }

    /// Wrap a stateless `Fn` closure. Such modules support
    /// [`Module::fresh_instance`]: every instance shares the (immutable)
    /// closure behind an `Arc`, so a compiled pipeline can be instantiated
    /// once per serving worker.
    pub fn stateless<F>(name: impl Into<String>, f: F) -> CustomModule
    where
        F: Fn(Data, &mut ExecContext) -> Result<Data, CoreError> + Send + Sync + 'static,
    {
        let name = name.into();
        CustomModule {
            description: format!("custom module `{name}`"),
            name,
            body: Body::Stateless(Arc::new(f)),
        }
    }

    pub fn with_description(mut self, description: impl Into<String>) -> CustomModule {
        self.description = description.into();
        self
    }

    /// Whether this module can be replicated with [`Module::fresh_instance`].
    pub fn is_stateless(&self) -> bool {
        matches!(self.body, Body::Stateless(_))
    }
}

impl Module for CustomModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Custom
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        match &mut self.body {
            Body::Stateful(f) => f(input, ctx),
            Body::Stateless(f) => f(input, ctx),
        }
    }

    fn describe(&self) -> String {
        self.description.clone()
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        match &self.body {
            Body::Stateful(_) => None,
            Body::Stateless(f) => Some(Box::new(CustomModule {
                name: self.name.clone(),
                description: self.description.clone(),
                body: Body::Stateless(Arc::clone(f)),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(1);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 1)))
    }

    #[test]
    fn custom_module_runs_closures_with_state() {
        let mut ctx = ctx();
        let mut counter = 0u32;
        let mut module = CustomModule::new("counter", move |input, _| {
            counter += 1;
            Ok(Data::Str(format!("{}#{counter}", input.render())))
        })
        .with_description("counts invocations");
        assert_eq!(module.kind(), ModuleKind::Custom);
        assert_eq!(module.describe(), "counts invocations");
        assert_eq!(
            module.invoke(Data::Str("a".into()), &mut ctx).unwrap(),
            Data::Str("a#1".into())
        );
        assert_eq!(
            module.invoke(Data::Str("b".into()), &mut ctx).unwrap(),
            Data::Str("b#2".into())
        );
    }

    #[test]
    fn stateful_modules_cannot_be_replicated() {
        let module = CustomModule::new("stateful", |input, _| Ok(input));
        assert!(!module.is_stateless());
        assert!(module.fresh_instance().is_none());
    }

    #[test]
    fn stateless_modules_replicate() {
        let mut ctx = ctx();
        let module = CustomModule::stateless("upper", |input, _| {
            Ok(Data::Str(input.render().to_uppercase()))
        })
        .with_description("uppercases");
        assert!(module.is_stateless());
        let mut copy = module.fresh_instance().expect("stateless replicates");
        assert_eq!(copy.name(), "upper");
        assert_eq!(copy.describe(), "uppercases");
        assert_eq!(copy.invoke(Data::Str("ab".into()), &mut ctx).unwrap(), Data::Str("AB".into()));
        // The copy replicates again, too.
        assert!(copy.fresh_instance().is_some());
    }
}
