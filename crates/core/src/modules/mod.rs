//! The module taxonomy of §3.1: Custom, LLM, LLMGC, and Decorated modules.

mod custom;
mod decorated;
mod llm;
mod llmgc;
mod map;

pub use custom::CustomModule;
pub use decorated::DecoratedModule;
pub use llm::{LlmModule, PromptBuilder};
pub use llmgc::LlmgcModule;
pub use map::PipelinedMapModule;

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;

/// Which of the four module classes a physical module belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    Custom,
    Llm,
    Llmgc,
    Decorated,
}

impl ModuleKind {
    pub fn name(self) -> &'static str {
        match self {
            ModuleKind::Custom => "custom",
            ModuleKind::Llm => "llm",
            ModuleKind::Llmgc => "llmgc",
            ModuleKind::Decorated => "decorated",
        }
    }

    /// Parse a DSL `using <kind>` clause.
    pub fn parse(text: &str) -> Option<ModuleKind> {
        match text.to_lowercase().as_str() {
            "custom" => Some(ModuleKind::Custom),
            "llm" => Some(ModuleKind::Llm),
            "llmgc" => Some(ModuleKind::Llmgc),
            "decorated" => Some(ModuleKind::Decorated),
            _ => None,
        }
    }
}

/// A physical module: `f: Data -> Data` with access to the execution context.
pub trait Module: Send {
    /// The module's (unique within a pipeline) name.
    fn name(&self) -> &str;
    /// Which §3.1 class it belongs to.
    fn kind(&self) -> ModuleKind;
    /// Run the module.
    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError>;
    /// Human-readable description (source code for LLMGC, prompt for LLM...).
    fn describe(&self) -> String {
        format!("{} module `{}`", self.kind().name(), self.name())
    }
    /// Create a fresh, independent instance of this module, sharing none of
    /// its mutable state. The serving layer uses this to instantiate a
    /// compiled pipeline once per worker without re-running code generation.
    ///
    /// Returns `None` when the module is inherently stateful and cannot be
    /// replicated (e.g. a [`CustomModule`] built from an arbitrary `FnMut`
    /// closure); such modules can only run single-threaded.
    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_and_name() {
        assert_eq!(ModuleKind::parse("LLM"), Some(ModuleKind::Llm));
        assert_eq!(ModuleKind::parse("llmgc"), Some(ModuleKind::Llmgc));
        assert_eq!(ModuleKind::parse("weird"), None);
        assert_eq!(ModuleKind::Decorated.name(), "decorated");
    }
}
