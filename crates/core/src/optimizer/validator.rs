//! The Validator (§3.2): "checks whether the target module behaves correctly
//! on a few example test cases. It then uses the failed test cases to trigger
//! the LLM to improve the target module and fix the errors. ... This
//! validation cycle repeats until either all test cases are executed
//! successfully, or a timeout ensues, leading to a re-generation of the LLMGC
//! module until an additional timeout."
//!
//! Every step is real: the module's generated program actually executes on
//! the test inputs, failures carry the actual error/output, the suggestion is
//! derived from the actual code, and the repaired program actually replaces
//! the old one.

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{LlmgcModule, Module};

/// One example test case: input plus expected output (compared loosely).
#[derive(Debug, Clone)]
pub struct TestCase {
    pub input: Data,
    pub expected: Data,
}

impl TestCase {
    pub fn new(input: Data, expected: Data) -> TestCase {
        TestCase { input, expected }
    }
}

/// What one sample run of a candidate module measured — the calibration
/// signal the cost-based planner (`lingua-plan`) turns into accuracy priors
/// and per-record cost estimates. Produced by [`Validator::measure`].
#[derive(Debug, Clone, Default)]
pub struct SampleMeasurement {
    /// Cases executed.
    pub total: usize,
    /// Cases whose output loosely matched the expectation.
    pub passed: usize,
    /// Cases that raised an error (counted as failures).
    pub errors: usize,
    /// Exact LLM usage delta booked across the sample.
    pub usage: lingua_llm_sim::Usage,
    /// Simulated LLM latency accumulated across the sample (ms).
    pub sim_latency_ms: u64,
    /// Wall-clock time spent in module invocations (ms) — the local-compute
    /// component for physical forms that never touch the LLM.
    pub wall_ms: u64,
}

impl SampleMeasurement {
    /// Fraction of cases passed, in `[0, 1]`; zero-case samples score 0.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passed as f64 / self.total as f64
        }
    }
}

/// What the validation loop concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationOutcome {
    /// All test cases pass.
    Passed,
    /// Budgets exhausted with failures remaining.
    Exhausted,
}

/// Full record of a validation run.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    pub outcome: ValidationOutcome,
    /// Suggest-and-repair cycles used (across regenerations).
    pub cycles: usize,
    /// Full regenerations used.
    pub regenerations: usize,
    /// Failure descriptions from the *final* evaluation (empty if passed).
    pub final_failures: Vec<String>,
    /// Failure counts observed after each evaluation, in order.
    pub failure_history: Vec<usize>,
}

/// The validator: test cases plus cycle/regeneration budgets.
#[derive(Debug, Clone)]
pub struct Validator {
    cases: Vec<TestCase>,
    /// Max suggest-and-repair cycles per generation ("timeout").
    pub max_cycles: usize,
    /// Max from-scratch regenerations ("additional timeout").
    pub max_regenerations: usize,
    /// Optional cap on LLM calls the module may spend across all test cases.
    /// Catches a subtle failure functional checks cannot: a buggy local rule
    /// that silently routes everything to the expensive LLM fallback still
    /// *answers* correctly — but blows the §4.3 cost budget.
    pub llm_call_budget: Option<u64>,
}

impl Validator {
    pub fn new(cases: Vec<TestCase>) -> Validator {
        Validator { cases, max_cycles: 4, max_regenerations: 2, llm_call_budget: None }
    }

    pub fn with_budgets(mut self, max_cycles: usize, max_regenerations: usize) -> Validator {
        self.max_cycles = max_cycles;
        self.max_regenerations = max_regenerations;
        self
    }

    /// Require the test cases to complete within `max_calls` LLM calls.
    pub fn with_llm_budget(mut self, max_calls: u64) -> Validator {
        self.llm_call_budget = Some(max_calls);
        self
    }

    pub fn cases(&self) -> &[TestCase] {
        &self.cases
    }

    /// Run the module on every case; collect failure descriptions.
    pub fn evaluate(&self, module: &mut LlmgcModule, ctx: &mut ExecContext) -> Vec<String> {
        let mut failures = Vec::new();
        for (i, case) in self.cases.iter().enumerate() {
            match module.invoke(case.input.clone(), ctx) {
                Ok(actual) => {
                    if !actual.loose_eq(&case.expected) {
                        failures.push(format!(
                            "case {i}: input `{}` expected `{}` but got `{}`",
                            case.input.render(),
                            case.expected.render(),
                            actual.render()
                        ));
                    }
                }
                Err(err) => failures.push(format!(
                    "case {i}: input `{}` raised an error: {err}",
                    case.input.render()
                )),
            }
        }
        failures
    }

    /// Calibration hook for the planner: run *any* module over the sample
    /// cases and measure accuracy, exact LLM usage, simulated latency, and
    /// local wall time. Unlike [`Validator::evaluate`] this never repairs —
    /// it only observes, so the same sample can rank physical alternatives
    /// (direct LLM vs generated code vs custom code vs a trained model)
    /// on identical inputs.
    pub fn measure(&self, module: &mut dyn Module, ctx: &mut ExecContext) -> SampleMeasurement {
        let usage_before = ctx.llm.usage();
        let latency_before = ctx.llm.simulated_latency_ms();
        let started = std::time::Instant::now();
        let mut out = SampleMeasurement { total: self.cases.len(), ..Default::default() };
        for case in &self.cases {
            match module.invoke(case.input.clone(), ctx) {
                Ok(actual) if actual.loose_eq(&case.expected) => out.passed += 1,
                Ok(_) => {}
                Err(_) => out.errors += 1,
            }
        }
        out.wall_ms = started.elapsed().as_millis() as u64;
        out.usage = ctx.llm.usage().since(&usage_before);
        out.sim_latency_ms = ctx.llm.simulated_latency_ms().saturating_sub(latency_before);
        out
    }

    /// The §3.2 validation cycle: evaluate → suggest → repair → repeat, with
    /// regeneration on cycle exhaustion.
    pub fn validate_and_fix(
        &self,
        module: &mut LlmgcModule,
        ctx: &mut ExecContext,
    ) -> Result<ValidationReport, CoreError> {
        let mut span = ctx.tracer.span(lingua_trace::SpanKind::Validator, module.name());
        span.attr("cases", self.cases.len().to_string());
        let mut cycles = 0usize;
        let mut regenerations = 0usize;
        let mut failure_history = Vec::new();

        loop {
            // Inner loop: suggest-and-repair cycles on the current program.
            for _ in 0..=self.max_cycles {
                let calls_before = ctx.llm.usage().calls;
                let mut failures = self.evaluate(module, ctx);
                if let Some(budget) = self.llm_call_budget {
                    let spent = ctx.llm.usage().calls - calls_before;
                    if spent > budget {
                        failures.push(format!(
                            "the module consumed {spent} LLM call(s) across the test cases \
                             (budget: {budget}); the straightforward cases must be handled \
                             locally without calling the LLM"
                        ));
                    }
                }
                failure_history.push(failures.len());
                ctx.tracer.instant(lingua_trace::SpanKind::Validator, "evaluate", || {
                    vec![("failures".into(), failures.len().to_string())]
                });
                if failures.is_empty() {
                    span.attr("outcome", "passed");
                    span.attr("cycles", cycles.to_string());
                    span.attr("regenerations", regenerations.to_string());
                    return Ok(ValidationReport {
                        outcome: ValidationOutcome::Passed,
                        cycles,
                        regenerations,
                        final_failures: vec![],
                        failure_history,
                    });
                }
                if cycles >= self.max_cycles * (regenerations + 1) {
                    break;
                }
                cycles += 1;
                let suggestion = ctx.llm.suggest_fix(module.source(), &failures);
                let previous =
                    module.generation.clone().unwrap_or_else(|| lingua_llm_sim::GeneratedCode {
                        source: module.source().to_string(),
                        template: lingua_llm_sim::TemplateKind::Identity,
                        bug: None,
                    });
                let repaired = ctx.llm.repair_code(module.spec(), &previous, &suggestion);
                // A syntactically-broken repair is itself a failure; keep the
                // old program and let the next cycle try again.
                let _ = module.replace_program(repaired);
                ctx.tracer.instant(lingua_trace::SpanKind::Validator, "repair", Vec::new);
            }

            if regenerations >= self.max_regenerations {
                let final_failures = self.evaluate(module, ctx);
                span.attr("outcome", "exhausted");
                span.attr("cycles", cycles.to_string());
                span.attr("regenerations", regenerations.to_string());
                return Ok(ValidationReport {
                    outcome: ValidationOutcome::Exhausted,
                    cycles,
                    regenerations,
                    final_failures,
                    failure_history,
                });
            }
            // Regenerate from scratch.
            regenerations += 1;
            ctx.tracer.instant(lingua_trace::SpanKind::Validator, "regenerate", Vec::new);
            let fresh = ctx.llm.generate_code(module.spec());
            let _ = module.replace_program(fresh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::{CodeGenSpec, SimLlm};
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(8);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 8)))
    }

    fn tokenizer_cases() -> Vec<TestCase> {
        vec![
            TestCase::new(
                Data::Str("Hello, world!".into()),
                Data::List(vec![Data::Str("Hello".into()), Data::Str("world".into())]),
            ),
            // Single-character token: catches the WrongComparison bug.
            TestCase::new(
                Data::Str("I saw a cat".into()),
                Data::List(vec![
                    Data::Str("I".into()),
                    Data::Str("saw".into()),
                    Data::Str("a".into()),
                    Data::Str("cat".into()),
                ]),
            ),
            // Null input: catches the MissingNullCheck bug.
            TestCase::new(Data::Null, Data::List(vec![])),
        ]
    }

    fn spec() -> CodeGenSpec {
        CodeGenSpec {
            task: "tokenize the text into words".into(),
            function_name: "process".into(),
            hints: vec![],
        }
    }

    #[test]
    fn clean_module_passes_immediately() {
        let mut ctx = ctx();
        let clean = lingua_llm_sim::codegen::generate(
            &spec(),
            &lingua_llm_sim::Calibration { codegen_bug_rate: 0.0, ..Default::default() },
            &mut rand::SeedableRng::seed_from_u64(1),
        );
        let mut module = LlmgcModule::from_generated("tok", spec(), clean).unwrap();
        let validator = Validator::new(tokenizer_cases());
        let report = validator.validate_and_fix(&mut module, &mut ctx).unwrap();
        assert_eq!(report.outcome, ValidationOutcome::Passed);
        assert_eq!(report.cycles, 0);
        assert_eq!(report.regenerations, 0);
    }

    #[test]
    fn buggy_module_gets_repaired() {
        let mut ctx = ctx();
        // Force a buggy first generation.
        let buggy = lingua_llm_sim::codegen::generate(
            &spec(),
            &lingua_llm_sim::Calibration { codegen_bug_rate: 1.0, ..Default::default() },
            &mut rand::SeedableRng::seed_from_u64(3),
        );
        assert!(buggy.bug.is_some());
        let mut module = LlmgcModule::from_generated("tok", spec(), buggy).unwrap();
        let validator = Validator::new(tokenizer_cases()).with_budgets(6, 3);
        let report = validator.validate_and_fix(&mut module, &mut ctx).unwrap();
        assert_eq!(report.outcome, ValidationOutcome::Passed, "{report:?}");
        assert!(report.cycles >= 1, "{report:?}");
        // The final program really passes the cases.
        assert!(validator.evaluate(&mut module, &mut ctx).is_empty());
        // The failure history shrank to zero.
        assert_eq!(*report.failure_history.last().unwrap(), 0);
    }

    #[test]
    fn evaluation_reports_real_failures() {
        let mut ctx = ctx();
        let mut module =
            LlmgcModule::from_source("bad", spec(), "fn process(text) { return [\"wrong\"]; }")
                .unwrap();
        let validator = Validator::new(tokenizer_cases());
        let failures = validator.evaluate(&mut module, &mut ctx);
        assert_eq!(failures.len(), 3);
        assert!(failures[0].contains("expected"));
    }

    #[test]
    fn budgets_bound_the_loop() {
        let mut ctx = ctx();
        // A spec whose template is Identity: can never satisfy these cases.
        let hopeless_spec = CodeGenSpec {
            task: "do something unrecognizable".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let generated = ctx.llm.generate_code(&hopeless_spec);
        let mut module = LlmgcModule::from_generated("hopeless", hopeless_spec, generated).unwrap();
        let validator =
            Validator::new(vec![TestCase::new(Data::Int(1), Data::Int(2))]).with_budgets(2, 1);
        let report = validator.validate_and_fix(&mut module, &mut ctx).unwrap();
        assert_eq!(report.outcome, ValidationOutcome::Exhausted);
        assert!(!report.final_failures.is_empty());
        assert!(report.cycles <= 2 * 2);
        assert_eq!(report.regenerations, 1);
    }
}
