//! The Lingua Manga optimizer (§3.2): modular, user-composable enhancements.
//!
//! * [`Validator`] — the test-case-driven repair loop for LLMGC modules.
//! * [`Simulated`] — the teacher-student simulator that replaces expensive
//!   LLM calls with a supervised student.
//! * [`TabularConnector`] / [`TextConnector`] — privacy- and cost-aware data
//!   access mediation between local data and the LLM.

mod connector;
mod simulator;
mod validator;

pub use connector::{ExposureMeter, TabularConnector, TextConnector};
pub use simulator::{Simulated, SimulatorConfig, SimulatorStats, StudentKind};
pub use validator::{SampleMeasurement, TestCase, ValidationOutcome, ValidationReport, Validator};
