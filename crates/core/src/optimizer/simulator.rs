//! The Simulator (§3.2): teacher-student replacement of expensive modules.
//!
//! "Because each module is treated as a black-box function, an ML-based
//! simulator can replicate the target module through supervised learning.
//! The target module will function as intended during initialization, and a
//! control logic will decide when the simulated version should take over."
//!
//! The wrapped (teacher) module keeps serving while the student observes
//! live traffic; once enough samples accumulate and the student clears an
//! accuracy bar on a holdout, it takes over the *confident* inputs. Low-
//! confidence inputs still go to the teacher — and keep feeding training
//! data, so the student continuously adapts to the stream ("it can
//! constantly learn to adapt to the data distribution").

use crate::context::ExecContext;
use crate::data::Data;
use crate::error::CoreError;
use crate::modules::{Module, ModuleKind};
use lingua_ml::features::HashingVectorizer;
use lingua_ml::logreg::{LogReg, LogRegConfig};
use lingua_ml::naive_bayes::NaiveBayes;
use lingua_ml::Example;

/// What kind of function the student learns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudentKind {
    /// Teacher returns `Data::Bool` (e.g. "is this phrase a person name?").
    Binary,
    /// Teacher returns `Data::Str` from a closed-ish set (e.g. a language
    /// code or a manufacturer).
    Categorical,
}

/// Control-logic knobs.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Samples required before the first training attempt.
    pub min_samples: usize,
    /// Fraction of the buffer held out for the takeover check.
    pub holdout_fraction: f64,
    /// Holdout accuracy required for takeover.
    pub takeover_accuracy: f64,
    /// Student confidence below which the teacher still serves the input.
    pub confidence_threshold: f64,
    /// Teacher samples between retraining attempts (continuous learning).
    pub retrain_interval: usize,
    /// Hashing-vectorizer dimensions for the binary student.
    pub feature_dims: usize,
    pub seed: u64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            min_samples: 40,
            holdout_fraction: 0.25,
            takeover_accuracy: 0.88,
            confidence_threshold: 0.60,
            retrain_interval: 50,
            feature_dims: 512,
            seed: 0,
        }
    }
}

/// Call accounting for the cost comparison the paper motivates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulatorStats {
    pub teacher_calls: u64,
    pub student_calls: u64,
    pub trainings: u64,
    /// Teacher-call count at which the student took over (if it has).
    pub takeover_at: Option<u64>,
}

enum Student {
    Binary { model: LogReg, vectorizer: HashingVectorizer },
    Categorical { model: NaiveBayes },
}

#[derive(Debug, Clone, PartialEq)]
enum Label {
    Bool(bool),
    Class(String),
}

/// A module wrapped with the simulator.
pub struct Simulated {
    name: String,
    teacher: Box<dyn Module>,
    kind: StudentKind,
    config: SimulatorConfig,
    stats: SimulatorStats,
    buffer: Vec<(String, Label)>,
    student: Option<Student>,
    samples_at_last_training: usize,
}

impl Simulated {
    pub fn new(teacher: Box<dyn Module>, kind: StudentKind, config: SimulatorConfig) -> Simulated {
        Simulated {
            name: format!("simulated({})", teacher.name()),
            teacher,
            kind,
            config,
            stats: SimulatorStats::default(),
            buffer: Vec::new(),
            student: None,
            samples_at_last_training: 0,
        }
    }

    pub fn stats(&self) -> SimulatorStats {
        self.stats
    }

    pub fn has_taken_over(&self) -> bool {
        self.student.is_some()
    }

    fn student_predict(&self, text: &str) -> Option<(Data, f64)> {
        match self.student.as_ref()? {
            Student::Binary { model, vectorizer } => {
                let p = model.predict_proba(&binary_features(vectorizer, text));
                let confidence = (2.0 * p - 1.0).abs();
                Some((Data::Bool(p >= 0.5), confidence))
            }
            Student::Categorical { model } => {
                let (class, posterior) = model.predict(text);
                Some((Data::Str(class.to_string()), posterior))
            }
        }
    }

    /// Train a candidate student and check it on a holdout; install on pass.
    fn try_train(&mut self, tracer: &lingua_trace::Tracer) {
        self.stats.trainings += 1;
        self.samples_at_last_training = self.buffer.len();
        // Deterministic interleaved split: every 4th sample is holdout (for
        // holdout_fraction 0.25); stable under stream growth.
        let holdout_every = (1.0 / self.config.holdout_fraction.max(0.01)).round() as usize;
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, sample) in self.buffer.iter().enumerate() {
            if holdout_every > 1 && i % holdout_every == holdout_every - 1 {
                holdout.push(sample);
            } else {
                train.push(sample);
            }
        }
        if train.is_empty() || holdout.is_empty() {
            return;
        }

        let candidate = match self.kind {
            StudentKind::Binary => {
                let vectorizer = HashingVectorizer::new(self.config.feature_dims);
                let examples: Vec<Example> = train
                    .iter()
                    .filter_map(|(text, label)| match label {
                        Label::Bool(b) => {
                            Some(Example::new(binary_features(&vectorizer, text), usize::from(*b)))
                        }
                        Label::Class(_) => None,
                    })
                    .collect();
                if examples.is_empty() {
                    return;
                }
                let model = LogReg::train(
                    &examples,
                    &LogRegConfig {
                        seed: self.config.seed,
                        epochs: 80,
                        learning_rate: 0.8,
                        ..Default::default()
                    },
                );
                Student::Binary { model, vectorizer }
            }
            StudentKind::Categorical => {
                let pairs: Vec<(&str, &str)> = train
                    .iter()
                    .filter_map(|(text, label)| match label {
                        Label::Class(c) => Some((text.as_str(), c.as_str())),
                        Label::Bool(_) => None,
                    })
                    .collect();
                if pairs.is_empty() {
                    return;
                }
                Student::Categorical { model: NaiveBayes::train(pairs) }
            }
        };

        // Holdout evaluation.
        let mut correct = 0usize;
        for sample in &holdout {
            let (text, label) = (&sample.0, &sample.1);
            let predicted = match &candidate {
                Student::Binary { model, vectorizer } => {
                    Label::Bool(model.predict(&binary_features(vectorizer, text)))
                }
                Student::Categorical { model } => Label::Class(model.predict(text).0.to_string()),
            };
            if predicted == *label {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / holdout.len() as f64;
        let installed = accuracy >= self.config.takeover_accuracy;
        tracer.instant(lingua_trace::SpanKind::Simulator, "training", || {
            vec![
                ("samples".into(), self.buffer.len().to_string()),
                ("holdout_accuracy".into(), format!("{accuracy:.4}")),
                ("installed".into(), installed.to_string()),
            ]
        });
        if installed {
            if self.student.is_none() {
                self.stats.takeover_at = Some(self.stats.teacher_calls);
                tracer.instant(lingua_trace::SpanKind::Simulator, "takeover", || {
                    vec![("teacher_calls".into(), self.stats.teacher_calls.to_string())]
                });
            }
            self.student = Some(candidate);
        }
    }
}

/// Features for the binary student: hashed token counts plus cheap text-shape
/// signals (token count, capitalization pattern, digits, length) that token
/// hashing alone cannot generalize from — e.g. "two capitalized tokens" is
/// exactly the shape of an unseen person name.
fn binary_features(vectorizer: &HashingVectorizer, text: &str) -> Vec<f64> {
    let mut features = vectorizer.transform(text);
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let n = tokens.len().max(1) as f64;
    let capitalized = tokens
        .iter()
        .filter(|t| t.chars().next().map(|c| c.is_uppercase()).unwrap_or(false))
        .count() as f64;
    let has_digit = text.chars().any(|c| c.is_ascii_digit());
    let avg_len = tokens.iter().map(|t| t.chars().count()).sum::<usize>() as f64 / n;
    features.push((tokens.len() as f64 / 5.0).min(2.0));
    features.push(capitalized / n);
    features.push(f64::from(has_digit));
    features.push((avg_len / 10.0).min(2.0));
    features
}

impl Module for Simulated {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Decorated
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let text = input.render();

        // Confident student answers bypass the teacher entirely.
        if let Some((prediction, confidence)) = self.student_predict(&text) {
            if confidence >= self.config.confidence_threshold {
                self.stats.student_calls += 1;
                ctx.tracer.instant(lingua_trace::SpanKind::Simulator, "student_serve", || {
                    vec![("confidence".into(), format!("{confidence:.4}"))]
                });
                return Ok(prediction);
            }
        }

        // Teacher serves; its answer becomes training signal.
        let output = self.teacher.invoke(input, ctx)?;
        self.stats.teacher_calls += 1;
        ctx.tracer.instant(lingua_trace::SpanKind::Simulator, "teacher_serve", Vec::new);
        let label = match (&output, self.kind) {
            (Data::Bool(b), StudentKind::Binary) => Some(Label::Bool(*b)),
            (Data::Str(s), StudentKind::Categorical) => Some(Label::Class(s.clone())),
            _ => None, // unlearnable output shape: serve but don't learn
        };
        if let Some(label) = label {
            self.buffer.push((text, label));
            let due_first = self.student.is_none() && self.buffer.len() >= self.config.min_samples;
            let due_refresh = self.buffer.len()
                >= self.samples_at_last_training + self.config.retrain_interval
                && self.samples_at_last_training > 0;
            if due_first || due_refresh {
                let tracer = ctx.tracer.clone();
                self.try_train(&tracer);
            }
        }
        Ok(output)
    }

    fn describe(&self) -> String {
        format!(
            "simulator over `{}` ({} teacher / {} student calls)",
            self.teacher.name(),
            self.stats.teacher_calls,
            self.stats.student_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::CustomModule;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(9);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 9)))
    }

    /// A deterministic "teacher": says yes iff the text contains "badger".
    fn keyword_teacher() -> Box<dyn Module> {
        Box::new(CustomModule::new("keyword", |input, _| {
            Ok(Data::Bool(input.render().contains("badger")))
        }))
    }

    fn stream(n: usize) -> Vec<Data> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Data::Str(format!("the hoppy badger beer number {i}"))
                } else {
                    Data::Str(format!("an unrelated gadget item number {i}"))
                }
            })
            .collect()
    }

    #[test]
    fn student_takes_over_after_enough_samples() {
        let mut ctx = ctx();
        let mut sim = Simulated::new(
            keyword_teacher(),
            StudentKind::Binary,
            SimulatorConfig { min_samples: 30, ..Default::default() },
        );
        for input in stream(200) {
            sim.invoke(input, &mut ctx).unwrap();
        }
        let stats = sim.stats();
        assert!(sim.has_taken_over());
        assert!(stats.student_calls > 100, "{stats:?}");
        assert!(stats.teacher_calls < 100, "{stats:?}");
        assert!(stats.takeover_at.is_some());
    }

    #[test]
    fn student_answers_match_the_teacher() {
        let mut ctx = ctx();
        let mut sim = Simulated::new(
            keyword_teacher(),
            StudentKind::Binary,
            SimulatorConfig { min_samples: 30, ..Default::default() },
        );
        for input in stream(100) {
            sim.invoke(input, &mut ctx).unwrap();
        }
        assert!(sim.has_taken_over());
        // Evaluate agreement on fresh data.
        let mut agree = 0;
        let fresh = stream(60);
        for input in &fresh {
            let out = sim.invoke(input.clone(), &mut ctx).unwrap();
            let truth = Data::Bool(input.render().contains("badger"));
            if out == truth {
                agree += 1;
            }
        }
        assert!(agree as f64 / fresh.len() as f64 > 0.9, "{agree}/{}", fresh.len());
    }

    #[test]
    fn categorical_student_learns_classes() {
        let mut ctx = ctx();
        let teacher = Box::new(CustomModule::new("lang", |input, _| {
            let text = input.render();
            Ok(Data::Str(if text.contains("le") || text.contains("la") {
                "fr".into()
            } else {
                "en".into()
            }))
        }));
        let mut sim = Simulated::new(
            teacher,
            StudentKind::Categorical,
            SimulatorConfig { min_samples: 24, ..Default::default() },
        );
        for i in 0..120 {
            let input = if i % 2 == 0 {
                Data::Str(format!("le conseil la ville numero {i}"))
            } else {
                Data::Str(format!("the board of the town number {i}"))
            };
            sim.invoke(input, &mut ctx).unwrap();
        }
        assert!(sim.has_taken_over());
        assert!(sim.stats().student_calls > 0);
    }

    #[test]
    fn unlearnable_outputs_pass_through_without_takeover() {
        let mut ctx = ctx();
        let teacher = Box::new(CustomModule::new("lister", |_, _| Ok(Data::List(vec![]))));
        let mut sim = Simulated::new(teacher, StudentKind::Binary, SimulatorConfig::default());
        for i in 0..100 {
            let out = sim.invoke(Data::Str(format!("item {i}")), &mut ctx).unwrap();
            assert_eq!(out, Data::List(vec![]));
        }
        assert!(!sim.has_taken_over());
        assert_eq!(sim.stats().teacher_calls, 100);
    }

    #[test]
    fn noisy_teacher_blocks_takeover() {
        let mut ctx = ctx();
        // A teacher whose answers are pure hash noise — unlearnable.
        let teacher = Box::new(CustomModule::new("noise", |input, _| {
            let text = input.render();
            Ok(Data::Bool(lingua_ml::features::fxhash(text.as_bytes()) % 2 == 0))
        }));
        let mut sim = Simulated::new(
            teacher,
            StudentKind::Binary,
            SimulatorConfig { min_samples: 30, takeover_accuracy: 0.9, ..Default::default() },
        );
        for i in 0..150 {
            sim.invoke(Data::Str(format!("random input {i}")), &mut ctx).unwrap();
        }
        assert!(!sim.has_taken_over(), "{:?}", sim.stats());
        assert!(sim.stats().trainings >= 1);
    }
}
