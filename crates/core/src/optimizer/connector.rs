//! Connectors (§3.2): "a locally-running connector can be employed to manage
//! the selective data upload to LLMs" — the LLM never touches the raw data
//! lake; it gets only allowlisted query results (tabular) or top-k relevant
//! chunks (text), and every byte that crosses the boundary is metered.

use crate::error::CoreError;
use lingua_dataset::query::Catalog;
use lingua_dataset::Table;
use lingua_ml::features::HashingVectorizer;
use lingua_trace::{SpanKind, Tracer};

/// Running account of the data exposed to the LLM through a connector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExposureMeter {
    pub queries: u64,
    pub rows_exposed: u64,
    pub bytes_exposed: u64,
    pub queries_denied: u64,
}

/// The tabular connector: executes only allowlisted `SELECT` statements
/// against the local catalog.
pub struct TabularConnector {
    catalog: Catalog,
    /// Case-insensitive prefixes a query must match to be allowed. Empty
    /// allowlist = deny everything.
    allowed_prefixes: Vec<String>,
    /// Hard cap on rows returned per query (data minimization).
    pub max_rows: usize,
    meter: ExposureMeter,
    /// Connectors sit below the execution context, so they carry their own
    /// tracer handle (disabled unless installed via `with_tracer`).
    tracer: Tracer,
}

impl TabularConnector {
    pub fn new(catalog: Catalog) -> TabularConnector {
        TabularConnector {
            catalog,
            allowed_prefixes: Vec::new(),
            max_rows: 50,
            meter: ExposureMeter::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Emit a `connector` instant for every query decision.
    pub fn with_tracer(mut self, tracer: Tracer) -> TabularConnector {
        self.tracer = tracer;
        self
    }

    /// Allow queries starting with `prefix` (whitespace-normalized,
    /// case-insensitive) — "the execution is limited to the queries
    /// specified by the user".
    pub fn allow_prefix(mut self, prefix: impl Into<String>) -> TabularConnector {
        self.allowed_prefixes.push(normalize_sql(&prefix.into()));
        self
    }

    pub fn meter(&self) -> ExposureMeter {
        self.meter
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute an allowlisted query; meters the exposed result.
    pub fn fetch(&mut self, sql: &str) -> Result<Table, CoreError> {
        let normalized = normalize_sql(sql);
        let allowed =
            self.allowed_prefixes.iter().any(|prefix| normalized.starts_with(prefix.as_str()));
        if !allowed {
            self.meter.queries_denied += 1;
            self.tracer.instant(SpanKind::Connector, "query_denied", || {
                vec![("sql".into(), normalized.clone())]
            });
            return Err(CoreError::ConnectorDenied(sql.to_string()));
        }
        let result = self.catalog.execute(sql)?;
        let result = result.head(self.max_rows);
        self.meter.queries += 1;
        self.meter.rows_exposed += result.len() as u64;
        let bytes = lingua_dataset::csv::write_str(&result).len() as u64;
        self.meter.bytes_exposed += bytes;
        self.tracer.instant(SpanKind::Connector, "query", || {
            vec![
                ("sql".into(), normalized.clone()),
                ("rows".into(), result.len().to_string()),
                ("bytes".into(), bytes.to_string()),
            ]
        });
        Ok(result)
    }
}

/// The text connector: chunks a long document and uploads only the top-k
/// chunks relevant to the query ("connectors designed for handling extensive
/// textual data").
pub struct TextConnector {
    /// Target chunk size in characters (split at sentence boundaries).
    pub chunk_chars: usize,
    /// How many chunks may be exposed per request.
    pub top_k: usize,
    vectorizer: HashingVectorizer,
    meter: ExposureMeter,
    tracer: Tracer,
}

impl TextConnector {
    pub fn new(chunk_chars: usize, top_k: usize) -> TextConnector {
        TextConnector {
            chunk_chars,
            top_k,
            vectorizer: HashingVectorizer::new(512),
            meter: ExposureMeter::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Emit a `connector` instant for every chunk selection.
    pub fn with_tracer(mut self, tracer: Tracer) -> TextConnector {
        self.tracer = tracer;
        self
    }

    pub fn meter(&self) -> ExposureMeter {
        self.meter
    }

    /// Split a document into chunks at sentence boundaries.
    pub fn chunk(&self, document: &str) -> Vec<String> {
        let mut chunks = Vec::new();
        let mut current = String::new();
        for sentence in document.split_inclusive(['.', '!', '?', '\n']) {
            if !current.is_empty() && current.len() + sentence.len() > self.chunk_chars {
                chunks.push(std::mem::take(&mut current));
            }
            current.push_str(sentence);
        }
        if !current.trim().is_empty() {
            chunks.push(current);
        }
        chunks
    }

    /// The top-k chunks of `document` most relevant to `query`, metered.
    pub fn relevant_chunks(&mut self, document: &str, query: &str) -> Vec<String> {
        let chunks = self.chunk(document);
        let query_vec = self.vectorizer.transform(query);
        let mut scored: Vec<(f64, String)> = chunks
            .into_iter()
            .map(|chunk| {
                let v = self.vectorizer.transform(&chunk);
                let dot: f64 = v.iter().zip(&query_vec).map(|(a, b)| a * b).sum();
                (dot, chunk)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let selected: Vec<String> =
            scored.into_iter().take(self.top_k).map(|(_, chunk)| chunk).collect();
        self.meter.queries += 1;
        let bytes = selected.iter().map(|c| c.len() as u64).sum::<u64>();
        self.meter.bytes_exposed += bytes;
        self.tracer.instant(SpanKind::Connector, "chunks", || {
            vec![
                ("selected".into(), selected.len().to_string()),
                ("bytes".into(), bytes.to_string()),
            ]
        });
        selected
    }
}

fn normalize_sql(sql: &str) -> String {
    sql.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::csv;

    fn catalog() -> Catalog {
        let table = csv::read_str(
            "products",
            "id,name,price\n1,widget,9.5\n2,gadget,19.5\n3,doohickey,4.0\n",
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(table);
        catalog
    }

    #[test]
    fn allowlisted_queries_run_and_are_metered() {
        let mut connector =
            TabularConnector::new(catalog()).allow_prefix("SELECT name FROM products");
        let result = connector.fetch("select   name from PRODUCTS where price < 10").unwrap();
        assert_eq!(result.len(), 2);
        let meter = connector.meter();
        assert_eq!(meter.queries, 1);
        assert_eq!(meter.rows_exposed, 2);
        assert!(meter.bytes_exposed > 0);
    }

    #[test]
    fn non_allowlisted_queries_are_denied() {
        let mut connector =
            TabularConnector::new(catalog()).allow_prefix("SELECT name FROM products");
        let err = connector.fetch("SELECT * FROM products").unwrap_err();
        assert!(matches!(err, CoreError::ConnectorDenied(_)));
        assert_eq!(connector.meter().queries_denied, 1);
        assert_eq!(connector.meter().rows_exposed, 0);
    }

    #[test]
    fn empty_allowlist_denies_everything() {
        let mut connector = TabularConnector::new(catalog());
        assert!(connector.fetch("SELECT name FROM products").is_err());
    }

    #[test]
    fn row_cap_limits_exposure() {
        let mut connector = TabularConnector::new(catalog()).allow_prefix("SELECT");
        connector.max_rows = 1;
        let result = connector.fetch("SELECT * FROM products").unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(connector.meter().rows_exposed, 1);
    }

    #[test]
    fn text_connector_chunks_at_sentences() {
        let connector = TextConnector::new(50, 2);
        let doc =
            "First sentence here. Second sentence follows. Third one now. Fourth sentence ends.";
        let chunks = connector.chunk(doc);
        assert!(chunks.len() >= 2, "{chunks:?}");
        let rejoined: String = chunks.concat();
        assert_eq!(rejoined, doc);
    }

    #[test]
    fn relevant_chunks_rank_by_query() {
        let mut connector = TextConnector::new(60, 1);
        let doc = "The quarterly budget exceeded projections by a wide margin. \
                   The office picnic was rescheduled due to heavy rain outside. \
                   Budget allocations for the next quarter were also approved.";
        let top = connector.relevant_chunks(doc, "budget quarter allocations");
        assert_eq!(top.len(), 1);
        assert!(top[0].to_lowercase().contains("budget"), "{top:?}");
        assert!(connector.meter().bytes_exposed > 0);
        // Far less than the whole document crossed the boundary.
        assert!(connector.meter().bytes_exposed < doc.len() as u64);
    }
}
