//! # lingua-core — the Lingua Manga system
//!
//! A from-scratch Rust implementation of the system described in *"Lingua
//! Manga: A Generic Large Language Model Centric System for Data Curation"*
//! (VLDB 2023): a workflow system where users compose pipelines of **logical
//! operators**, a **compiler** binds each operator to a physical **module**,
//! and an **optimizer** improves the modules with LLM-driven validation,
//! teacher-student simulation, and privacy-preserving connectors.
//!
//! ## The module taxonomy (§3.1 of the paper)
//!
//! * [`modules::CustomModule`] — hand-written code (plain Rust closures).
//! * [`modules::LlmModule`] — the LLM itself as a module: a prompt builder
//!   plus an output validator that absorbs the LLM's format instability.
//! * [`modules::LlmgcModule`] — *LLM-generated code*: the LLM emits a real
//!   MangaScript program which runs in an interpreter with a host bridge
//!   (`call_llm` / `call_module` / `call_tool`).
//! * [`modules::DecoratedModule`] — a module wrapped with optimizer
//!   enhancements (simulator, output validation, call accounting).
//!
//! ## The optimizer (§3.2)
//!
//! * [`optimizer::Validator`] — runs a module on example test cases, feeds
//!   real failures back to the LLM for suggestions and regenerated code,
//!   bounded by cycle/regeneration budgets.
//! * [`optimizer::Simulated`] — the teacher-student simulator: records live
//!   (input, output) traffic, trains an `lingua-ml` student, and takes over
//!   from the expensive LLM teacher once accurate and confident.
//! * [`optimizer::TabularConnector`] / [`optimizer::TextConnector`] — confine
//!   the LLM to user-approved local queries / top-k relevant chunks and meter
//!   the exposed data.
//!
//! ## Quick start
//!
//! ```no_run
//! use lingua_core::prelude::*;
//! use lingua_llm_sim::SimLlm;
//! use lingua_dataset::world::WorldSpec;
//! use std::sync::Arc;
//!
//! let world = WorldSpec::generate(1);
//! let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 1));
//! let pipeline = Pipeline::parse(r#"
//!     pipeline quickstart {
//!         records = load_csv() with { path: "beers.csv" };
//!         out = entity_resolution(records) using llm with {
//!             desc: "Determine if the two records refer to the same entity";
//!         };
//!         save_csv(out) with { path: "matches.csv" };
//!     }
//! "#).unwrap();
//! let compiler = Compiler::with_builtins();
//! let mut ctx = ExecContext::new(llm);
//! let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
//! ```

pub mod compiler;
pub mod context;
pub mod data;
pub mod dsl;
pub mod error;
pub mod executor;
pub mod modules;
pub mod optimizer;
pub mod pipeline;
pub mod stats;
pub mod templates;
pub mod tools;
pub mod validation;

pub use compiler::{Compiler, PhysicalPipeline};
pub use context::{ContextFactory, ExecContext};
pub use data::Data;
pub use error::{CoreError, TrapKind};
pub use executor::Executor;
pub use modules::{Module, ModuleKind};
pub use pipeline::{CurationStage, LogicalOp, Pipeline};
pub use stats::{ColumnStats, DatasetStats};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::compiler::{Compiler, PhysicalPipeline};
    pub use crate::context::{ContextFactory, ExecContext};
    pub use crate::data::Data;
    pub use crate::error::CoreError;
    pub use crate::executor::Executor;
    pub use crate::modules::{Module, ModuleKind};
    pub use crate::pipeline::{CurationStage, LogicalOp, Pipeline};
    pub use crate::stats::DatasetStats;
    pub use crate::validation::OutputValidator;
}
