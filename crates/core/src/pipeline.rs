//! Logical pipelines: what users author (through the DSL, the builder API,
//! or a template) before the compiler binds physical modules.

use crate::modules::ModuleKind;
use std::collections::BTreeMap;

/// The curation stage a logical operator belongs to — the planner's unit of
/// logical algebra. Classification is by operator name and description
/// keywords, mirroring how the paper names its scenarios (§4): entity
/// resolution (Match), data imputation (Impute), extraction/tagging
/// (Extract), filtering/selection (Filter), and dataset joins (Join).
/// Source/sink plumbing (`load_csv`, `save_csv`, `limit`, ...) is
/// `Transform`: it has exactly one sensible physical form and the planner
/// passes it through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum CurationStage {
    Extract,
    Match,
    Impute,
    Filter,
    Join,
    Transform,
}

impl CurationStage {
    pub const ALL: [CurationStage; 6] = [
        CurationStage::Extract,
        CurationStage::Match,
        CurationStage::Impute,
        CurationStage::Filter,
        CurationStage::Join,
        CurationStage::Transform,
    ];

    /// Stable lowercase label (trace attrs, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            CurationStage::Extract => "extract",
            CurationStage::Match => "match",
            CurationStage::Impute => "impute",
            CurationStage::Filter => "filter",
            CurationStage::Join => "join",
            CurationStage::Transform => "transform",
        }
    }

    /// Classify a logical op by its type name and description keywords.
    pub fn classify(op: &LogicalOp) -> CurationStage {
        let mut text = op.op_type.to_ascii_lowercase();
        if let Some(desc) = op.description() {
            text.push(' ');
            text.push_str(&desc.to_ascii_lowercase());
        }
        let has = |needles: &[&str]| needles.iter().any(|n| text.contains(n));
        if has(&["join", "merge datasets", "link tables"]) {
            CurationStage::Join
        } else if has(&["resolution", "same entity", "match", "dedup", "duplicate"]) {
            CurationStage::Match
        } else if has(&["imput", "fill in", "missing value"]) {
            CurationStage::Impute
        } else if has(&["extract", "tag", "tokenize", "detect", "classify", "parse names"]) {
            CurationStage::Extract
        } else if has(&["filter", "select rows", "anomal", "clean", "discard"]) {
            CurationStage::Filter
        } else {
            CurationStage::Transform
        }
    }
}

/// One logical operator in a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalOp {
    /// Variable the result is bound to (empty for sink ops like `save_csv`).
    pub output: String,
    /// Operator type name (resolved against the compiler's factory registry,
    /// the code-generation templates, or the LLM).
    pub op_type: String,
    /// Input variable names.
    pub inputs: Vec<String>,
    /// `using <kind>` override from the DSL.
    pub kind: Option<ModuleKind>,
    /// Free-form parameters (`with { ... }`), e.g. `desc`, `path`, `examples`.
    pub params: BTreeMap<String, String>,
}

impl LogicalOp {
    pub fn new(op_type: impl Into<String>) -> LogicalOp {
        LogicalOp {
            output: String::new(),
            op_type: op_type.into(),
            inputs: Vec::new(),
            kind: None,
            params: BTreeMap::new(),
        }
    }

    pub fn output(mut self, var: impl Into<String>) -> LogicalOp {
        self.output = var.into();
        self
    }

    pub fn input(mut self, var: impl Into<String>) -> LogicalOp {
        self.inputs.push(var.into());
        self
    }

    pub fn using(mut self, kind: ModuleKind) -> LogicalOp {
        self.kind = Some(kind);
        self
    }

    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> LogicalOp {
        self.params.insert(key.into(), value.into());
        self
    }

    /// The natural-language description, if provided.
    pub fn description(&self) -> Option<&str> {
        self.params.get("desc").map(|s| s.as_str())
    }

    /// The curation stage this op belongs to (see [`CurationStage::classify`]).
    pub fn stage(&self) -> CurationStage {
        CurationStage::classify(self)
    }
}

/// A named, ordered list of logical operators.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    pub name: String,
    pub ops: Vec<LogicalOp>,
}

impl Pipeline {
    pub fn new(name: impl Into<String>) -> Pipeline {
        Pipeline { name: name.into(), ops: Vec::new() }
    }

    pub fn op(mut self, op: LogicalOp) -> Pipeline {
        self.ops.push(op);
        self
    }

    /// Convenience: a `load_csv` source op.
    pub fn load_csv(self, var: impl Into<String>, path: impl Into<String>) -> Pipeline {
        self.op(LogicalOp::new("load_csv").output(var).param("path", path))
    }

    /// Convenience: a `save_csv` sink op.
    pub fn save_csv(self, var: impl Into<String>, path: impl Into<String>) -> Pipeline {
        self.op(LogicalOp::new("save_csv").input(var).param("path", path))
    }

    /// Parse the textual DSL (see [`crate::dsl`]).
    pub fn parse(source: &str) -> Result<Pipeline, crate::error::CoreError> {
        crate::dsl::parse(source)
    }

    /// Variables produced anywhere in the pipeline.
    pub fn outputs(&self) -> Vec<&str> {
        self.ops.iter().filter(|op| !op.output.is_empty()).map(|op| op.output.as_str()).collect()
    }

    /// Sanity-check dataflow: every input must be produced by an earlier op
    /// or listed in `external_inputs`.
    pub fn check_dataflow(&self, external_inputs: &[&str]) -> Result<(), crate::error::CoreError> {
        let mut defined: std::collections::BTreeSet<&str> =
            external_inputs.iter().copied().collect();
        for op in &self.ops {
            for input in &op.inputs {
                if !defined.contains(input.as_str()) {
                    return Err(crate::error::CoreError::UnknownVariable(input.clone()));
                }
            }
            if !op.output.is_empty() {
                defined.insert(&op.output);
            }
        }
        Ok(())
    }

    /// Render a readable summary (the textual stand-in for the paper's
    /// Figure 5 pipeline-inspection UI).
    pub fn pretty(&self) -> String {
        let mut out = format!("pipeline {} {{\n", self.name);
        for op in &self.ops {
            out.push_str("    ");
            if !op.output.is_empty() {
                out.push_str(&format!("{} = ", op.output));
            }
            out.push_str(&format!("{}({})", op.op_type, op.inputs.join(", ")));
            if let Some(kind) = op.kind {
                out.push_str(&format!(" using {}", kind.name()));
            }
            if !op.params.is_empty() {
                let params: Vec<String> =
                    op.params.iter().map(|(k, v)| format!("{k}: {v:?}")).collect();
                out.push_str(&format!(" with {{ {} }}", params.join(", ")));
            }
            out.push_str(";\n");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_api_composes() {
        let p = Pipeline::new("demo")
            .load_csv("records", "in.csv")
            .op(LogicalOp::new("entity_resolution")
                .output("matches")
                .input("records")
                .using(ModuleKind::Llm)
                .param("desc", "match the records"))
            .save_csv("matches", "out.csv");
        assert_eq!(p.ops.len(), 3);
        assert_eq!(p.outputs(), vec!["records", "matches"]);
        assert_eq!(p.ops[1].description(), Some("match the records"));
        p.check_dataflow(&[]).unwrap();
    }

    #[test]
    fn dataflow_check_catches_undefined_vars() {
        let p = Pipeline::new("bad").op(LogicalOp::new("x").input("nowhere"));
        assert!(p.check_dataflow(&[]).is_err());
        assert!(p.check_dataflow(&["nowhere"]).is_ok());
    }

    #[test]
    fn stage_classification_by_name_and_desc() {
        let er = LogicalOp::new("entity_resolution").param("desc", "same entity?");
        assert_eq!(er.stage(), CurationStage::Match);
        let imp = LogicalOp::new("fix_table").param("desc", "impute the missing city");
        assert_eq!(imp.stage(), CurationStage::Impute);
        let ext = LogicalOp::new("pull_names").param("desc", "extract person names");
        assert_eq!(ext.stage(), CurationStage::Extract);
        let filt = LogicalOp::new("drop_bad").param("desc", "filter malformed rows");
        assert_eq!(filt.stage(), CurationStage::Filter);
        let join = LogicalOp::new("join_tables");
        assert_eq!(join.stage(), CurationStage::Join);
        assert_eq!(LogicalOp::new("load_csv").stage(), CurationStage::Transform);
        assert_eq!(LogicalOp::new("save_csv").stage(), CurationStage::Transform);
    }

    #[test]
    fn pretty_renders_all_parts() {
        let p = Pipeline::new("demo").op(LogicalOp::new("resolve")
            .output("m")
            .input("r")
            .using(ModuleKind::Llmgc)
            .param("desc", "d"));
        let text = p.pretty();
        assert!(text.contains("m = resolve(r) using llmgc"));
        assert!(text.contains("desc: \"d\""));
    }
}
