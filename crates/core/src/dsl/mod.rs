//! The textual pipeline DSL ("LINGUA MANGA features a DSL to simplify the
//! workflow-building process", §3).
//!
//! ```text
//! pipeline er_demo {
//!     records = load_csv() with { path: "beers.csv" };
//!     matches = entity_resolution(records) using llm with {
//!         desc: "Determine if the two records refer to the same entity";
//!     };
//!     save_csv(matches) with { path: "out.csv" };
//! }
//! ```
//!
//! Statement shape: `[output =] op(inputs...) [using kind] [with { k: v; ... }];`
//! Values in `with` blocks are string literals, bare words, or numbers.

use crate::error::CoreError;
use crate::modules::ModuleKind;
use crate::pipeline::{LogicalOp, Pipeline};

/// Parse DSL text into a [`Pipeline`].
pub fn parse(source: &str) -> Result<Pipeline, CoreError> {
    Parser::new(source).parse_pipeline()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Colon,
    Eof,
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Parser {
        Parser { tokens: lex(source), pos: 0 }
    }

    fn current(&self) -> &(Tok, usize) {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> (Tok, usize) {
        let tok = self.current().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Dsl { line: self.current().1, message: message.into() }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), CoreError> {
        let (current, _) = self.bump();
        if current == tok {
            Ok(())
        } else {
            Err(CoreError::Dsl {
                line: self.tokens[self.pos.saturating_sub(1)].1,
                message: format!("expected {tok:?}, found {current:?}"),
            })
        }
    }

    fn ident(&mut self) -> Result<String, CoreError> {
        match self.bump() {
            (Tok::Ident(name), _) => Ok(name),
            (other, line) => Err(CoreError::Dsl {
                line,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.current().0, Tok::Ident(id) if id == kw)
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline, CoreError> {
        if !self.at_keyword("pipeline") {
            return Err(self.error("expected `pipeline <name> { ... }`"));
        }
        self.bump();
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut pipeline = Pipeline::new(name);
        while self.current().0 != Tok::RBrace {
            if self.current().0 == Tok::Eof {
                return Err(self.error("unexpected end of input inside pipeline"));
            }
            pipeline.ops.push(self.parse_statement()?);
        }
        self.expect(Tok::RBrace)?;
        if self.current().0 != Tok::Eof {
            return Err(self.error("trailing input after pipeline block"));
        }
        Ok(pipeline)
    }

    fn parse_statement(&mut self) -> Result<LogicalOp, CoreError> {
        let first = self.ident()?;
        let (output, op_type) = if self.current().0 == Tok::Assign {
            self.bump();
            (first, self.ident()?)
        } else {
            (String::new(), first)
        };
        self.expect(Tok::LParen)?;
        let mut inputs = Vec::new();
        while self.current().0 != Tok::RParen {
            inputs.push(self.ident()?);
            if self.current().0 == Tok::Comma {
                self.bump();
            }
        }
        self.expect(Tok::RParen)?;

        let mut op = LogicalOp::new(op_type).output(output);
        op.inputs = inputs;

        if self.at_keyword("using") {
            self.bump();
            let kind_name = self.ident()?;
            let kind = ModuleKind::parse(&kind_name)
                .ok_or_else(|| self.error(format!("unknown module kind `{kind_name}`")))?;
            op.kind = Some(kind);
        }

        if self.at_keyword("with") {
            self.bump();
            self.expect(Tok::LBrace)?;
            while self.current().0 != Tok::RBrace {
                let key = self.ident()?;
                self.expect(Tok::Colon)?;
                let value = match self.bump() {
                    (Tok::Str(s), _) => s,
                    (Tok::Ident(id), _) => id,
                    (other, line) => {
                        return Err(CoreError::Dsl {
                            line,
                            message: format!("expected a parameter value, found {other:?}"),
                        })
                    }
                };
                op.params.insert(key, value);
                if matches!(self.current().0, Tok::Semicolon | Tok::Comma) {
                    self.bump();
                }
            }
            self.expect(Tok::RBrace)?;
        }
        self.expect(Tok::Semicolon)?;
        Ok(op)
    }
}

fn lex(source: &str) -> Vec<(Tok, usize)> {
    let mut tokens = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line = 1usize;
    while let Some(&(_, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '=' => {
                chars.next();
                tokens.push((Tok::Assign, line));
            }
            '(' => {
                chars.next();
                tokens.push((Tok::LParen, line));
            }
            ')' => {
                chars.next();
                tokens.push((Tok::RParen, line));
            }
            '{' => {
                chars.next();
                tokens.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                tokens.push((Tok::RBrace, line));
            }
            ',' => {
                chars.next();
                tokens.push((Tok::Comma, line));
            }
            ';' => {
                chars.next();
                tokens.push((Tok::Semicolon, line));
            }
            ':' => {
                chars.next();
                tokens.push((Tok::Colon, line));
            }
            '"' => {
                chars.next();
                let mut out = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            if let Some((_, escaped)) = chars.next() {
                                out.push(match escaped {
                                    'n' => '\n',
                                    't' => '\t',
                                    other => other,
                                });
                            }
                        }
                        '\n' => {
                            line += 1;
                            out.push(c);
                        }
                        _ => out.push(c),
                    }
                }
                // Unclosed strings surface as a parse error downstream (the
                // token still carries the content read so far).
                let _ = closed;
                tokens.push((Tok::Str(out), line));
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '/' => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '/' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Tok::Ident(word), line));
            }
            _ => {
                // Skip unknown characters; the parser will complain about the
                // resulting token mismatch with a line number.
                chars.next();
            }
        }
    }
    tokens.push((Tok::Eof, line));
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
        # The Figure-2a custom entity-resolution workflow.
        pipeline er_demo {
            records = load_csv() with { path: "beers.csv" };
            matches = entity_resolution(records) using llm with {
                desc: "Determine if the two records refer to the same entity";
                examples: "2";
            };
            save_csv(matches) with { path: "out.csv" };
        }
    "#;

    #[test]
    fn parses_the_demo_pipeline() {
        let p = parse(DEMO).unwrap();
        assert_eq!(p.name, "er_demo");
        assert_eq!(p.ops.len(), 3);
        assert_eq!(p.ops[0].output, "records");
        assert_eq!(p.ops[0].params.get("path").unwrap(), "beers.csv");
        assert_eq!(p.ops[1].kind, Some(ModuleKind::Llm));
        assert_eq!(p.ops[1].inputs, vec!["records"]);
        assert!(p.ops[1].description().unwrap().contains("same entity"));
        assert_eq!(p.ops[2].output, "");
        p.check_dataflow(&[]).unwrap();
    }

    #[test]
    fn multiple_inputs_and_bare_values() {
        let p =
            parse("pipeline multi { joined = join(a, b) with { on: id; how: inner }; }").unwrap();
        assert_eq!(p.ops[0].inputs, vec!["a", "b"]);
        assert_eq!(p.ops[0].params.get("on").unwrap(), "id");
        assert_eq!(p.ops[0].params.get("how").unwrap(), "inner");
    }

    #[test]
    fn comments_and_commas_in_with_blocks() {
        let p = parse("pipeline c { # comment\n x = op() with { a: \"1\", b: \"2\" }; }").unwrap();
        assert_eq!(p.ops[0].params.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("pipeline p {\n x = (;\n}").unwrap_err();
        match err {
            CoreError::Dsl { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("not_a_pipeline {}").is_err());
        assert!(parse("pipeline p { x = op() }").is_err()); // missing semicolon
        assert!(parse("pipeline p { x = op() using alien; }").is_err());
        assert!(parse("pipeline p {").is_err());
    }

    #[test]
    fn roundtrip_through_pretty() {
        let p = parse(DEMO).unwrap();
        let pretty = p.pretty();
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn escaped_strings() {
        let p = parse(r#"pipeline e { x = op() with { d: "line\nbreak \"q\"" }; }"#).unwrap();
        assert_eq!(p.ops[0].params.get("d").unwrap(), "line\nbreak \"q\"");
    }
}
