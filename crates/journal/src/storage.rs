//! Pluggable journal storage: a real file and a deterministic in-memory sim.
//!
//! The journal only ever needs three operations — append bytes, read the
//! whole log back, and atomically replace the log with a compacted prefix —
//! so that is the whole trait. Keeping the surface this small is what makes
//! the crash-injection harness honest: the in-memory [`SimStorage`] behaves
//! byte-for-byte like a file that survives the process, and tests can tear
//! or flip its tail directly.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Durable byte log under the journal.
pub trait Storage: Send + Sync {
    /// Append bytes to the end of the log.
    fn append(&self, bytes: &[u8]) -> io::Result<()>;
    /// Read the entire log from the beginning.
    fn read(&self) -> io::Result<Vec<u8>>;
    /// Atomically replace the whole log (checkpoint compaction). After a
    /// crash the log must be either the old or the new contents, never a
    /// mix.
    fn replace(&self, bytes: &[u8]) -> io::Result<()>;
    /// Make appended bytes durable.
    fn flush(&self) -> io::Result<()>;
}

/// File-backed storage. `replace` writes a sibling temp file and renames it
/// over the log, which is the standard atomic-on-POSIX compaction move.
pub struct FileStorage {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileStorage {
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.file.lock().write_all(bytes)
    }

    fn read(&self) -> io::Result<Vec<u8>> {
        // Flush buffered appends first so the read sees them.
        self.file.lock().flush()?;
        let mut buf = Vec::new();
        File::open(&self.path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        let mut file = self.file.lock();
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut t = File::create(&tmp)?;
            t.write_all(bytes)?;
            t.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen so subsequent appends land on the new inode, not the
        // renamed-away one.
        *file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        let mut file = self.file.lock();
        file.flush()?;
        file.sync_all()
    }
}

/// Deterministic in-memory storage for tests and the crash harness. The
/// buffer plays the role of the disk: bytes present here "survived the
/// crash".
#[derive(Default)]
pub struct SimStorage {
    bytes: Mutex<Vec<u8>>,
}

impl SimStorage {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copy of the current log, for harness assertions.
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }

    /// Truncate the log to `len` bytes — a torn tail write.
    pub fn truncate(&self, len: usize) {
        let mut bytes = self.bytes.lock();
        let len = len.min(bytes.len());
        bytes.truncate(len);
    }

    /// Flip one bit at `pos` — media corruption in the tail.
    pub fn flip_bit(&self, pos: usize, bit: u8) {
        let mut bytes = self.bytes.lock();
        if let Some(b) = bytes.get_mut(pos) {
            *b ^= 1 << (bit % 8);
        }
    }

    pub fn len(&self) -> usize {
        self.bytes.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.lock().is_empty()
    }
}

impl Storage for SimStorage {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read(&self) -> io::Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        *self.bytes.lock() = bytes.to_vec();
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_storage_append_read_replace() {
        let s = SimStorage::new();
        s.append(b"abc").unwrap();
        s.append(b"def").unwrap();
        assert_eq!(s.read().unwrap(), b"abcdef");
        s.replace(b"zz").unwrap();
        assert_eq!(s.read().unwrap(), b"zz");
        s.truncate(1);
        assert_eq!(s.read().unwrap(), b"z");
    }

    #[test]
    fn file_storage_roundtrip_and_replace() {
        let dir = std::env::temp_dir().join(format!(
            "lingua-durable-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.journal");
        {
            let s = FileStorage::open(&path).unwrap();
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
            s.flush().unwrap();
            assert_eq!(s.read().unwrap(), b"onetwo");
            s.replace(b"compacted").unwrap();
            s.append(b"+tail").unwrap();
            assert_eq!(s.read().unwrap(), b"compacted+tail");
        }
        // Reopening sees the same bytes: the log survived the "process".
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.read().unwrap(), b"compacted+tail");
        std::fs::remove_dir_all(&dir).ok();
    }
}
