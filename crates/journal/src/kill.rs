//! Named kill points and the seeded crash injector.
//!
//! The harness simulates crash-stop failure without real processes: every
//! durability-relevant instant in the write path is a named [`KillPoint`],
//! and a [`CrashInjector`] armed at `(point, occurrence)` flips a shared
//! `dead` flag the n-th time execution passes that point. Once dead, the
//! journal drops every subsequent storage write on the floor — exactly what
//! a killed process would have failed to persist — and the test driver
//! stops the run and recovers from whatever bytes made it to storage.
//!
//! This is deterministic by construction: occurrence counting is the only
//! clock, so the same workload with the same arming crashes at the same
//! byte of the same record every time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Durability-relevant instants where a crash is injectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KillPoint {
    /// Before a record's frame is appended: the event happened in memory
    /// but nothing reached storage.
    BeforeJournal,
    /// Mid-append: only the first half of the record's frame reached
    /// storage — a torn write the reader must detect by CRC.
    MidWrite,
    /// After a record's frame was fully appended and before the caller
    /// observes the effect.
    AfterJournal,
    /// Mid-checkpoint: the checkpoint frame itself is torn in half before
    /// compaction replaced the log, so recovery must fall back to the
    /// records preceding it.
    MidCheckpoint,
    /// After checkpoint compaction fully replaced the log.
    AfterCheckpoint,
    /// Between a stream window's close being journaled and its report
    /// submission being journaled — the window job may or may not have
    /// run, and recovery must resubmit it idempotently.
    MidReport,
}

impl KillPoint {
    pub const ALL: [KillPoint; 6] = [
        KillPoint::BeforeJournal,
        KillPoint::MidWrite,
        KillPoint::AfterJournal,
        KillPoint::MidCheckpoint,
        KillPoint::AfterCheckpoint,
        KillPoint::MidReport,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            KillPoint::BeforeJournal => "before_journal",
            KillPoint::MidWrite => "mid_write",
            KillPoint::AfterJournal => "after_journal",
            KillPoint::MidCheckpoint => "mid_checkpoint",
            KillPoint::AfterCheckpoint => "after_checkpoint",
            KillPoint::MidReport => "mid_report",
        }
    }
}

/// Deterministic crash trigger shared between the journal and the harness.
pub struct CrashInjector {
    /// `Some((point, occurrence))`: die the `occurrence`-th (1-based) time
    /// `point` fires. `None`: never die.
    armed: Mutex<Option<(KillPoint, u64)>>,
    /// How many times each point has fired so far.
    counts: Mutex<BTreeMap<KillPoint, u64>>,
    dead: AtomicBool,
}

impl CrashInjector {
    /// An injector that never fires — production configuration.
    pub fn inert() -> Arc<Self> {
        Arc::new(Self {
            armed: Mutex::new(None),
            counts: Mutex::new(BTreeMap::new()),
            dead: AtomicBool::new(false),
        })
    }

    /// Die the `occurrence`-th (1-based) time `point` is reached.
    pub fn armed_at(point: KillPoint, occurrence: u64) -> Arc<Self> {
        Arc::new(Self {
            armed: Mutex::new(Some((point, occurrence.max(1)))),
            counts: Mutex::new(BTreeMap::new()),
            dead: AtomicBool::new(false),
        })
    }

    /// Seeded arming: pick a kill point and an occurrence in `1..=max_occurrence`
    /// from `seed` via a splitmix64 step, so property tests can sweep seeds
    /// instead of enumerating the matrix by hand.
    pub fn seeded(seed: u64, max_occurrence: u64) -> Arc<Self> {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let point = KillPoint::ALL[(z % KillPoint::ALL.len() as u64) as usize];
        let occurrence = 1 + (z >> 8) % max_occurrence.max(1);
        Self::armed_at(point, occurrence)
    }

    /// Record that execution reached `point`; returns `true` when this
    /// firing is the armed crash (the caller must then drop the write it
    /// was about to perform, or has half-performed). Once dead, every
    /// subsequent call reports dead without counting — the process is gone.
    pub fn fire(&self, point: KillPoint) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return true;
        }
        let count = {
            let mut counts = self.counts.lock();
            let c = counts.entry(point).or_insert(0);
            *c += 1;
            *c
        };
        if let Some((armed_point, occurrence)) = *self.armed.lock() {
            if armed_point == point && count == occurrence {
                self.dead.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Whether the simulated process has died.
    pub fn dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Times each kill point has fired (diagnostics; also how a matrix
    /// driver discovers how many occurrences exist to sweep).
    pub fn counts(&self) -> BTreeMap<KillPoint, u64> {
        self.counts.lock().clone()
    }

    /// What the injector is armed at, if anything.
    pub fn armed(&self) -> Option<(KillPoint, u64)> {
        *self.armed.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_the_armed_occurrence() {
        let inj = CrashInjector::armed_at(KillPoint::AfterJournal, 3);
        assert!(!inj.fire(KillPoint::AfterJournal));
        assert!(!inj.fire(KillPoint::BeforeJournal));
        assert!(!inj.fire(KillPoint::AfterJournal));
        assert!(!inj.dead());
        assert!(inj.fire(KillPoint::AfterJournal));
        assert!(inj.dead());
        // Dead is absorbing: every later fire reports dead.
        assert!(inj.fire(KillPoint::BeforeJournal));
    }

    #[test]
    fn inert_never_dies() {
        let inj = CrashInjector::inert();
        for _ in 0..100 {
            for p in KillPoint::ALL {
                assert!(!inj.fire(p));
            }
        }
        assert!(!inj.dead());
        assert_eq!(inj.counts()[&KillPoint::MidWrite], 100);
    }

    #[test]
    fn seeded_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = CrashInjector::seeded(seed, 10);
            let b = CrashInjector::seeded(seed, 10);
            assert_eq!(a.armed(), b.armed());
            let (_, occ) = a.armed().unwrap();
            assert!((1..=10).contains(&occ));
        }
    }
}
