//! lingua-durable — write-ahead journaling and checkpointed crash recovery.
//!
//! Every layer of the serving stack keeps its state in memory: the serve
//! queue, stream window state, the cost ledger. This crate makes
//! crash-stop failure a first-class, tested event instead of data loss:
//!
//! - [`frame`]: CRC-32-framed record encoding — a frame is accepted only
//!   when complete and checksum-valid, so a torn tail is detected, never
//!   misread.
//! - [`storage`]: the pluggable byte log — a real file ([`FileStorage`])
//!   and a deterministic in-memory sim ([`SimStorage`]) for the harness.
//! - [`record`]: the durable vocabulary — serve-job lifecycle and stream
//!   engine state, plus compacted [`Checkpoint`]s.
//! - [`journal`]: the write-ahead [`Journal`] with an always-current fold,
//!   checkpoint compaction, and longest-valid-prefix recovery.
//! - [`kill`]: the crash-injection harness — named [`KillPoint`]s and a
//!   seeded [`CrashInjector`] that kills the simulated process at an exact
//!   occurrence of an exact instant.
//!
//! The recovery invariants (proven by the crash matrix in
//! `lingua-serve`/`lingua-stream` tests and the corruption proptests here):
//!
//! 1. **Prefix durability** — whatever prefix of records reached storage is
//!    recovered, wherever the process died.
//! 2. **Exactly-once effects** — recovered finished jobs answer retries
//!    from the restored result cache; unfinished jobs re-execute; no job's
//!    effect is applied twice.
//! 3. **Ledger reconciliation** — journaled billed usage plus re-executed
//!    billed usage equals the uninterrupted run's bill, to the cent.
//! 4. **Damage tolerance** — a torn or bit-flipped tail costs at most the
//!    damaged suffix, counted in `corrupt_records_skipped`, never a panic.

pub mod codec;
pub mod frame;
pub mod journal;
pub mod json;
pub mod kill;
pub mod reader;
pub mod record;
pub mod storage;
mod writer;

pub use journal::{Journal, JournalTuning, Recovered};
pub use kill::{CrashInjector, KillPoint};
pub use reader::{JournalReader, ScanResult};
pub use record::{
    Checkpoint, FinishedJob, JournalRecord, PendingJob, RecoverySnapshot, StreamCheckpoint,
    WindowCloseRecord, WindowReportRecord,
};
pub use storage::{FileStorage, SimStorage, Storage};
pub use writer::JournalWriter;
