//! Journal wire codec: `JournalRecord` ⇄ JSON bytes.
//!
//! The encoding is explicit, field-by-field construction of a
//! `serde_json::Value` tree (and the reverse), not generic serde — the
//! concrete `Value` surface is the one codec available in every
//! environment the workspace builds in, and an explicit codec doubles as
//! the wire-format specification: what this module writes is exactly the
//! table documented in DESIGN.md §15.
//!
//! Decoding is total and strict: any structural surprise returns
//! [`CodecError`], which recovery treats as record damage, never a panic.

use crate::json;
use crate::record::{
    Checkpoint, FinishedJob, JournalRecord, PendingJob, StreamCheckpoint, WindowCloseRecord,
    WindowReportRecord,
};
use lingua_core::Data;
use lingua_dataset::generators::stream::StreamItem;
use lingua_dataset::{ColumnType, Record, Schema, Table, Value as CellValue};
use lingua_llm_sim::Usage;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A payload that is checksum-valid but not a well-formed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn bad(context: &str) -> CodecError {
    CodecError(context.to_string())
}

/// Encode a record as JSON bytes (the frame payload).
pub fn encode(record: &JournalRecord) -> Vec<u8> {
    let value = record_to_value(record);
    serde_json::to_string(&value).expect("value trees always serialize").into_bytes()
}

/// Decode a frame payload back into a record.
pub fn decode(payload: &[u8]) -> Result<JournalRecord, CodecError> {
    let value = json::parse(payload).map_err(|e| bad(&e.to_string()))?;
    record_from_value(&value)
}

// ---- helpers ---------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (key, value) in fields {
        map.insert(key.to_string(), value);
    }
    Value::Object(map)
}

fn get<'a>(value: &'a Value, key: &str) -> Result<&'a Value, CodecError> {
    value.get(key).ok_or_else(|| bad(&format!("missing field `{key}`")))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, CodecError> {
    get(value, key)?.as_u64().ok_or_else(|| bad(&format!("field `{key}` is not a u64")))
}

fn get_usize(value: &Value, key: &str) -> Result<usize, CodecError> {
    usize::try_from(get_u64(value, key)?).map_err(|_| bad(&format!("field `{key}` overflows")))
}

fn get_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, CodecError> {
    get(value, key)?.as_str().ok_or_else(|| bad(&format!("field `{key}` is not a string")))
}

fn get_arr<'a>(value: &'a Value, key: &str) -> Result<&'a Vec<Value>, CodecError> {
    get(value, key)?.as_array().ok_or_else(|| bad(&format!("field `{key}` is not an array")))
}

// ---- Usage -----------------------------------------------------------

fn usage_to_value(u: &Usage) -> Value {
    obj(vec![
        ("calls", Value::from(u.calls)),
        ("tokens_in", Value::from(u.tokens_in)),
        ("tokens_out", Value::from(u.tokens_out)),
        ("cached_calls", Value::from(u.cached_calls)),
        ("tokens_in_saved", Value::from(u.tokens_in_saved)),
        ("tokens_out_saved", Value::from(u.tokens_out_saved)),
        ("failed_calls", Value::from(u.failed_calls)),
    ])
}

fn usage_from_value(value: &Value) -> Result<Usage, CodecError> {
    Ok(Usage {
        calls: get_u64(value, "calls")?,
        tokens_in: get_u64(value, "tokens_in")?,
        tokens_out: get_u64(value, "tokens_out")?,
        cached_calls: get_u64(value, "cached_calls")?,
        tokens_in_saved: get_u64(value, "tokens_in_saved")?,
        tokens_out_saved: get_u64(value, "tokens_out_saved")?,
        failed_calls: get_u64(value, "failed_calls")?,
    })
}

// ---- dataset values --------------------------------------------------

fn cell_to_value(cell: &CellValue) -> Value {
    match cell {
        CellValue::Null => Value::Null,
        CellValue::Bool(b) => obj(vec![("b", Value::Bool(*b))]),
        CellValue::Int(i) => obj(vec![("i", Value::from(*i))]),
        CellValue::Float(f) => obj(vec![("f", Value::from(*f))]),
        CellValue::Str(s) => obj(vec![("s", Value::String(s.clone()))]),
    }
}

fn cell_from_value(value: &Value) -> Result<CellValue, CodecError> {
    if value.is_null() {
        return Ok(CellValue::Null);
    }
    let map = value.as_object().ok_or_else(|| bad("cell is not null or an object"))?;
    if let Some(b) = map.get("b") {
        return b.as_bool().map(CellValue::Bool).ok_or_else(|| bad("cell `b` is not a bool"));
    }
    if let Some(i) = map.get("i") {
        return i.as_i64().map(CellValue::Int).ok_or_else(|| bad("cell `i` is not an i64"));
    }
    if let Some(f) = map.get("f") {
        return f.as_f64().map(CellValue::Float).ok_or_else(|| bad("cell `f` is not an f64"));
    }
    if let Some(s) = map.get("s") {
        return s
            .as_str()
            .map(|s| CellValue::Str(s.to_string()))
            .ok_or_else(|| bad("cell `s` is not a string"));
    }
    Err(bad("cell object has no known tag"))
}

fn record_to_json(record: &Record) -> Value {
    Value::Array(record.values().iter().map(cell_to_value).collect())
}

fn record_from_json(value: &Value) -> Result<Record, CodecError> {
    let cells = value.as_array().ok_or_else(|| bad("record is not an array"))?;
    Ok(Record::new(cells.iter().map(cell_from_value).collect::<Result<_, _>>()?))
}

fn column_type_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Any => "any",
        ColumnType::Bool => "bool",
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Str => "str",
    }
}

fn column_type_from_name(name: &str) -> Result<ColumnType, CodecError> {
    Ok(match name {
        "any" => ColumnType::Any,
        "bool" => ColumnType::Bool,
        "int" => ColumnType::Int,
        "float" => ColumnType::Float,
        "str" => ColumnType::Str,
        other => return Err(bad(&format!("unknown column type `{other}`"))),
    })
}

fn schema_to_value(schema: &Schema) -> Value {
    Value::Array(
        schema
            .iter()
            .map(|(name, ty)| {
                Value::Array(vec![
                    Value::String(name.to_string()),
                    Value::String(column_type_name(ty).to_string()),
                ])
            })
            .collect(),
    )
}

fn schema_from_value(value: &Value) -> Result<Schema, CodecError> {
    let columns = value.as_array().ok_or_else(|| bad("schema is not an array"))?;
    let mut out = Vec::with_capacity(columns.len());
    for column in columns {
        let pair = column.as_array().ok_or_else(|| bad("schema column is not a pair"))?;
        if pair.len() != 2 {
            return Err(bad("schema column is not a pair"));
        }
        let name = pair[0].as_str().ok_or_else(|| bad("column name is not a string"))?;
        let ty = pair[1].as_str().ok_or_else(|| bad("column type is not a string"))?;
        out.push((name.to_string(), column_type_from_name(ty)?));
    }
    Ok(Schema::new(out))
}

fn table_to_value(table: &Table) -> Value {
    obj(vec![
        ("name", Value::String(table.name().to_string())),
        ("schema", schema_to_value(table.schema())),
        ("rows", Value::Array(table.rows().iter().map(record_to_json).collect())),
    ])
}

fn table_from_value(value: &Value) -> Result<Table, CodecError> {
    let name = get_str(value, "name")?;
    let schema = schema_from_value(get(value, "schema")?)?;
    let rows =
        get_arr(value, "rows")?.iter().map(record_from_json).collect::<Result<Vec<_>, _>>()?;
    Table::with_rows(name, schema, rows).map_err(|e| bad(&format!("table rejects rows: {e}")))
}

// ---- Data ------------------------------------------------------------

fn data_to_value(data: &Data) -> Value {
    match data {
        Data::Null => Value::Null,
        Data::Bool(b) => obj(vec![("bool", Value::Bool(*b))]),
        Data::Int(i) => obj(vec![("int", Value::from(*i))]),
        Data::Float(f) => obj(vec![("float", Value::from(*f))]),
        Data::Str(s) => obj(vec![("str", Value::String(s.clone()))]),
        Data::List(items) => {
            obj(vec![("list", Value::Array(items.iter().map(data_to_value).collect()))])
        }
        Data::Map(entries) => {
            let mut map = Map::new();
            for (key, value) in entries {
                map.insert(key.clone(), data_to_value(value));
            }
            obj(vec![("map", Value::Object(map))])
        }
        Data::Table(table) => obj(vec![("table", table_to_value(table))]),
        Data::Record { schema, record } => obj(vec![(
            "record",
            obj(vec![("schema", schema_to_value(schema)), ("row", record_to_json(record))]),
        )]),
    }
}

fn data_from_value(value: &Value) -> Result<Data, CodecError> {
    if value.is_null() {
        return Ok(Data::Null);
    }
    let map = value.as_object().ok_or_else(|| bad("data is not null or an object"))?;
    if let Some(b) = map.get("bool") {
        return b.as_bool().map(Data::Bool).ok_or_else(|| bad("data `bool` tag"));
    }
    if let Some(i) = map.get("int") {
        return i.as_i64().map(Data::Int).ok_or_else(|| bad("data `int` tag"));
    }
    if let Some(f) = map.get("float") {
        return f.as_f64().map(Data::Float).ok_or_else(|| bad("data `float` tag"));
    }
    if let Some(s) = map.get("str") {
        return s.as_str().map(|s| Data::Str(s.to_string())).ok_or_else(|| bad("data `str` tag"));
    }
    if let Some(items) = map.get("list") {
        let items = items.as_array().ok_or_else(|| bad("data `list` tag"))?;
        return Ok(Data::List(items.iter().map(data_from_value).collect::<Result<_, _>>()?));
    }
    if let Some(entries) = map.get("map") {
        let entries = entries.as_object().ok_or_else(|| bad("data `map` tag"))?;
        let mut out = BTreeMap::new();
        for (key, value) in entries.iter() {
            out.insert(key.clone(), data_from_value(value)?);
        }
        return Ok(Data::Map(out));
    }
    if let Some(table) = map.get("table") {
        return Ok(Data::Table(table_from_value(table)?));
    }
    if let Some(record) = map.get("record") {
        let schema = schema_from_value(get(record, "schema")?)?;
        let row = record_from_json(get(record, "row")?)?;
        return Ok(Data::Record { schema, record: row });
    }
    Err(bad("data object has no known tag"))
}

fn env_to_value(env: &BTreeMap<String, Data>) -> Value {
    let mut map = Map::new();
    for (key, value) in env {
        map.insert(key.clone(), data_to_value(value));
    }
    Value::Object(map)
}

fn env_from_value(value: &Value) -> Result<BTreeMap<String, Data>, CodecError> {
    let map = value.as_object().ok_or_else(|| bad("env is not an object"))?;
    let mut out = BTreeMap::new();
    for (key, value) in map.iter() {
        out.insert(key.clone(), data_from_value(value)?);
    }
    Ok(out)
}

// ---- stream types ----------------------------------------------------

fn item_to_value(item: &StreamItem) -> Value {
    obj(vec![
        ("event_time", Value::from(item.event_time)),
        ("entity", Value::from(item.entity)),
        ("record", record_to_json(&item.record)),
    ])
}

fn item_from_value(value: &Value) -> Result<StreamItem, CodecError> {
    Ok(StreamItem {
        event_time: get_u64(value, "event_time")?,
        entity: get_u64(value, "entity")?,
        record: record_from_json(get(value, "record")?)?,
    })
}

fn close_to_value(close: &WindowCloseRecord) -> Value {
    obj(vec![
        ("window", Value::from(close.window)),
        ("start", Value::from(close.start)),
        ("end", Value::from(close.end)),
        ("records", Value::from(close.records)),
        ("candidate_pairs", Value::from(close.candidate_pairs)),
        ("comparisons", Value::from(close.comparisons)),
        ("true_duplicates", Value::from(close.true_duplicates)),
        ("inline_judged", Value::from(close.inline_judged)),
        ("inline_matched", Value::from(close.inline_matched)),
        ("inputs", env_to_value(&close.inputs)),
    ])
}

fn close_from_value(value: &Value) -> Result<WindowCloseRecord, CodecError> {
    Ok(WindowCloseRecord {
        window: get_u64(value, "window")?,
        start: get_u64(value, "start")?,
        end: get_u64(value, "end")?,
        records: get_usize(value, "records")?,
        candidate_pairs: get_usize(value, "candidate_pairs")?,
        comparisons: get_u64(value, "comparisons")?,
        true_duplicates: get_usize(value, "true_duplicates")?,
        inline_judged: get_u64(value, "inline_judged")?,
        inline_matched: get_u64(value, "inline_matched")?,
        inputs: env_from_value(get(value, "inputs")?)?,
    })
}

fn report_to_value(report: &WindowReportRecord) -> Value {
    obj(vec![
        ("window", Value::from(report.window)),
        ("start", Value::from(report.start)),
        ("end", Value::from(report.end)),
        ("records", Value::from(report.records)),
        ("candidate_pairs", Value::from(report.candidate_pairs)),
        ("comparisons", Value::from(report.comparisons)),
        ("judged", Value::from(report.judged)),
        ("matched", Value::from(report.matched)),
        ("true_duplicates", Value::from(report.true_duplicates)),
        ("llm", usage_to_value(&report.llm)),
    ])
}

fn report_from_value(value: &Value) -> Result<WindowReportRecord, CodecError> {
    Ok(WindowReportRecord {
        window: get_u64(value, "window")?,
        start: get_u64(value, "start")?,
        end: get_u64(value, "end")?,
        records: get_usize(value, "records")?,
        candidate_pairs: get_usize(value, "candidate_pairs")?,
        comparisons: get_u64(value, "comparisons")?,
        judged: get_u64(value, "judged")?,
        matched: get_u64(value, "matched")?,
        true_duplicates: get_usize(value, "true_duplicates")?,
        llm: usage_from_value(get(value, "llm")?)?,
    })
}

// ---- jobs ------------------------------------------------------------

fn pending_to_value(job: &PendingJob) -> Value {
    obj(vec![
        ("pipeline", Value::String(job.pipeline.clone())),
        ("fingerprint", Value::from(job.fingerprint)),
        ("inputs", env_to_value(&job.inputs)),
    ])
}

fn pending_from_value(value: &Value) -> Result<PendingJob, CodecError> {
    Ok(PendingJob {
        pipeline: get_str(value, "pipeline")?.to_string(),
        fingerprint: get_u64(value, "fingerprint")?,
        inputs: env_from_value(get(value, "inputs")?)?,
    })
}

fn finished_to_value(job: &FinishedJob) -> Value {
    obj(vec![
        ("pipeline", Value::String(job.pipeline.clone())),
        ("fingerprint", Value::from(job.fingerprint)),
        ("env", env_to_value(&job.env)),
        ("llm", usage_to_value(&job.llm)),
        ("wall_us", Value::from(job.wall_us)),
    ])
}

fn finished_from_value(value: &Value) -> Result<FinishedJob, CodecError> {
    Ok(FinishedJob {
        pipeline: get_str(value, "pipeline")?.to_string(),
        fingerprint: get_u64(value, "fingerprint")?,
        env: env_from_value(get(value, "env")?)?,
        llm: usage_from_value(get(value, "llm")?)?,
        wall_us: get_u64(value, "wall_us")?,
    })
}

// ---- checkpoint ------------------------------------------------------

fn windows_map_to_value<T>(map: &BTreeMap<u64, T>, f: impl Fn(&T) -> Value) -> Value {
    let mut out = Map::new();
    for (window, value) in map {
        out.insert(window.to_string(), f(value));
    }
    Value::Object(out)
}

fn windows_map_from_value<T>(
    value: &Value,
    f: impl Fn(&Value) -> Result<T, CodecError>,
) -> Result<BTreeMap<u64, T>, CodecError> {
    let map = value.as_object().ok_or_else(|| bad("window map is not an object"))?;
    let mut out = BTreeMap::new();
    for (key, value) in map.iter() {
        let window: u64 = key.parse().map_err(|_| bad("window key is not a u64"))?;
        out.insert(window, f(value)?);
    }
    Ok(out)
}

fn stream_to_value(stream: &StreamCheckpoint) -> Value {
    obj(vec![
        ("watermark", Value::from(stream.watermark)),
        ("max_event_time", Value::from(stream.max_event_time)),
        (
            "open_windows",
            windows_map_to_value(&stream.open_windows, |items| {
                Value::Array(items.iter().map(item_to_value).collect())
            }),
        ),
        ("closed_unreported", windows_map_to_value(&stream.closed_unreported, close_to_value)),
        ("reported", windows_map_to_value(&stream.reported, report_to_value)),
    ])
}

fn stream_from_value(value: &Value) -> Result<StreamCheckpoint, CodecError> {
    Ok(StreamCheckpoint {
        watermark: get_u64(value, "watermark")?,
        max_event_time: get_u64(value, "max_event_time")?,
        open_windows: windows_map_from_value(get(value, "open_windows")?, |items| {
            items
                .as_array()
                .ok_or_else(|| bad("open window items is not an array"))?
                .iter()
                .map(item_from_value)
                .collect()
        })?,
        closed_unreported: windows_map_from_value(
            get(value, "closed_unreported")?,
            close_from_value,
        )?,
        reported: windows_map_from_value(get(value, "reported")?, report_from_value)?,
    })
}

fn checkpoint_to_value(checkpoint: &Checkpoint) -> Value {
    obj(vec![
        ("finished", Value::Array(checkpoint.finished.iter().map(finished_to_value).collect())),
        ("pending", Value::Array(checkpoint.pending.iter().map(pending_to_value).collect())),
        ("cumulative", usage_to_value(&checkpoint.cumulative)),
        ("stream", stream_to_value(&checkpoint.stream)),
    ])
}

fn checkpoint_from_value(value: &Value) -> Result<Checkpoint, CodecError> {
    Ok(Checkpoint {
        finished: get_arr(value, "finished")?
            .iter()
            .map(finished_from_value)
            .collect::<Result<_, _>>()?,
        pending: get_arr(value, "pending")?
            .iter()
            .map(pending_from_value)
            .collect::<Result<_, _>>()?,
        cumulative: usage_from_value(get(value, "cumulative")?)?,
        stream: stream_from_value(get(value, "stream")?)?,
    })
}

// ---- the record envelope ---------------------------------------------

fn record_to_value(record: &JournalRecord) -> Value {
    let kind = Value::String(record.kind().to_string());
    match record {
        JournalRecord::JobAccepted(job) => {
            obj(vec![("kind", kind), ("job", pending_to_value(job))])
        }
        JournalRecord::JobStarted { pipeline, fingerprint } => obj(vec![
            ("kind", kind),
            ("pipeline", Value::String(pipeline.clone())),
            ("fingerprint", Value::from(*fingerprint)),
        ]),
        JournalRecord::JobFinished(job) => {
            obj(vec![("kind", kind), ("job", finished_to_value(job))])
        }
        JournalRecord::JobFailed { pipeline, fingerprint, llm, reason } => obj(vec![
            ("kind", kind),
            ("pipeline", Value::String(pipeline.clone())),
            ("fingerprint", Value::from(*fingerprint)),
            ("llm", usage_to_value(llm)),
            ("reason", Value::String(reason.clone())),
        ]),
        JournalRecord::StreamIngest { item, windows } => obj(vec![
            ("kind", kind),
            ("item", item_to_value(item)),
            ("windows", Value::Array(windows.iter().map(|w| Value::from(*w)).collect())),
        ]),
        JournalRecord::WatermarkAdvance { watermark, max_event_time } => obj(vec![
            ("kind", kind),
            ("watermark", Value::from(*watermark)),
            ("max_event_time", Value::from(*max_event_time)),
        ]),
        JournalRecord::WindowClose(close) => {
            obj(vec![("kind", kind), ("close", close_to_value(close))])
        }
        JournalRecord::ReportSubmitted(report) => {
            obj(vec![("kind", kind), ("report", report_to_value(report))])
        }
        JournalRecord::Checkpoint(checkpoint) => {
            obj(vec![("kind", kind), ("checkpoint", checkpoint_to_value(checkpoint))])
        }
    }
}

fn record_from_value(value: &Value) -> Result<JournalRecord, CodecError> {
    match get_str(value, "kind")? {
        "job_accepted" => Ok(JournalRecord::JobAccepted(pending_from_value(get(value, "job")?)?)),
        "job_started" => Ok(JournalRecord::JobStarted {
            pipeline: get_str(value, "pipeline")?.to_string(),
            fingerprint: get_u64(value, "fingerprint")?,
        }),
        "job_finished" => Ok(JournalRecord::JobFinished(finished_from_value(get(value, "job")?)?)),
        "job_failed" => Ok(JournalRecord::JobFailed {
            pipeline: get_str(value, "pipeline")?.to_string(),
            fingerprint: get_u64(value, "fingerprint")?,
            llm: usage_from_value(get(value, "llm")?)?,
            reason: get_str(value, "reason")?.to_string(),
        }),
        "stream_ingest" => Ok(JournalRecord::StreamIngest {
            item: item_from_value(get(value, "item")?)?,
            windows: get_arr(value, "windows")?
                .iter()
                .map(|w| w.as_u64().ok_or_else(|| bad("window id is not a u64")))
                .collect::<Result<_, _>>()?,
        }),
        "watermark_advance" => Ok(JournalRecord::WatermarkAdvance {
            watermark: get_u64(value, "watermark")?,
            max_event_time: get_u64(value, "max_event_time")?,
        }),
        "window_close" => Ok(JournalRecord::WindowClose(close_from_value(get(value, "close")?)?)),
        "report_submitted" => {
            Ok(JournalRecord::ReportSubmitted(report_from_value(get(value, "report")?)?))
        }
        "checkpoint" => {
            Ok(JournalRecord::Checkpoint(checkpoint_from_value(get(value, "checkpoint")?)?))
        }
        other => Err(bad(&format!("unknown record kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> BTreeMap<String, Data> {
        let schema = Schema::of_names(["name", "abv"]);
        let record = Record::new(vec![CellValue::Str("Pliny".into()), CellValue::Float(8.0)]);
        let table = Table::with_rows("beers", schema.clone(), vec![record.clone()]).unwrap();
        BTreeMap::from([
            ("null".to_string(), Data::Null),
            ("flag".to_string(), Data::Bool(true)),
            ("n".to_string(), Data::Int(-5)),
            ("x".to_string(), Data::Float(2.5)),
            ("s".to_string(), Data::Str("line\n\"quoted\" 🦀".into())),
            ("xs".to_string(), Data::List(vec![Data::Int(1), Data::Null])),
            (
                "m".to_string(),
                Data::Map(BTreeMap::from([("k".to_string(), Data::Str("v".into()))])),
            ),
            ("t".to_string(), Data::Table(table)),
            ("r".to_string(), Data::Record { schema, record }),
        ])
    }

    fn samples() -> Vec<JournalRecord> {
        let mut llm = Usage::default();
        llm.record(100, 25);
        llm.record_cached(40, 10);
        llm.record_failed(7);
        let item = StreamItem {
            event_time: 17,
            entity: 3,
            record: Record::new(vec![CellValue::Str("a".into()), CellValue::Int(1)]),
        };
        let close = WindowCloseRecord {
            window: 4,
            start: 256,
            end: 320,
            records: 12,
            candidate_pairs: 3,
            comparisons: 30,
            true_duplicates: 2,
            inline_judged: 1,
            inline_matched: 1,
            inputs: sample_env(),
        };
        let report = WindowReportRecord {
            window: 4,
            start: 256,
            end: 320,
            records: 12,
            candidate_pairs: 3,
            comparisons: 30,
            judged: 3,
            matched: 2,
            true_duplicates: 2,
            llm,
        };
        vec![
            JournalRecord::JobAccepted(PendingJob {
                pipeline: "clean".into(),
                fingerprint: u64::MAX,
                inputs: sample_env(),
            }),
            JournalRecord::JobStarted { pipeline: "clean".into(), fingerprint: 9 },
            JournalRecord::JobFinished(FinishedJob {
                pipeline: "clean".into(),
                fingerprint: 9,
                env: sample_env(),
                llm,
                wall_us: 12345,
            }),
            JournalRecord::JobFailed {
                pipeline: "clean".into(),
                fingerprint: 10,
                llm,
                reason: "panicked: boom".into(),
            },
            JournalRecord::StreamIngest { item: item.clone(), windows: vec![3, 4] },
            JournalRecord::WatermarkAdvance { watermark: 64, max_event_time: 80 },
            JournalRecord::WindowClose(close.clone()),
            JournalRecord::ReportSubmitted(report.clone()),
            JournalRecord::Checkpoint(Checkpoint {
                finished: vec![FinishedJob {
                    pipeline: "p".into(),
                    fingerprint: 1,
                    env: BTreeMap::new(),
                    llm,
                    wall_us: 1,
                }],
                pending: vec![PendingJob {
                    pipeline: "p".into(),
                    fingerprint: 2,
                    inputs: BTreeMap::new(),
                }],
                cumulative: llm,
                stream: StreamCheckpoint {
                    watermark: 64,
                    max_event_time: 80,
                    open_windows: BTreeMap::from([(5, vec![item])]),
                    closed_unreported: BTreeMap::from([(4, close)]),
                    reported: BTreeMap::from([(3, report)]),
                },
            }),
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for record in samples() {
            let bytes = encode(&record);
            let back = decode(&bytes).expect("decodes");
            assert_eq!(back, record, "roundtrip failed for {}", record.kind());
        }
    }

    #[test]
    fn decode_rejects_wrong_shapes_without_panicking() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"kind\":\"no_such_kind\"}",
            b"{\"kind\":\"job_accepted\"}",
            b"{\"kind\":\"job_finished\",\"job\":{\"pipeline\":3}}",
            b"[1,2,3]",
            b"{\"kind\":\"watermark_advance\",\"watermark\":-1,\"max_event_time\":0}",
        ] {
            assert!(decode(bad).is_err());
        }
    }
}
