//! CRC-framed record encoding.
//!
//! Every journal record is written as one frame:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! `crc32` is CRC-32/IEEE over the payload alone. The frame layout is the
//! entire corruption-detection story: a frame is accepted only when the
//! header is complete, the declared length fits inside the remaining bytes,
//! and the checksum matches. Anything else — a torn header, a torn payload,
//! a bit flip anywhere in the frame — makes the frame *and everything after
//! it* unreadable, because frame boundaries are only discoverable by walking
//! lengths from the front. Recovery therefore keeps the longest valid prefix
//! and counts a single damaged suffix, which is exactly the crash-stop
//! failure model: a torn tail write, never interior corruption.

/// Byte length of the `[len][crc32]` frame header.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame may declare. Guards the scanner against reading
/// a torn header whose garbage length would otherwise look like a
/// multi-gigabyte record.
pub const MAX_FRAME_PAYLOAD: usize = 64 * 1024 * 1024;

/// CRC-32/IEEE (the Ethernet/zip polynomial, reflected form 0xEDB88320),
/// implemented here so durability adds no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encode one payload as a framed record.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Outcome of attempting to read the frame starting at an offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame; `next` is the offset just past it.
    Valid { payload: &'a [u8], next: usize },
    /// The buffer ends exactly at the offset: a clean end of journal.
    End,
    /// Bytes remain but no valid frame starts here (torn write or bit
    /// flip). The scanner must stop: everything from this offset on is the
    /// damaged suffix.
    Damaged,
}

/// Decode the frame starting at `offset` in `buf`.
pub fn decode_frame(buf: &[u8], offset: usize) -> FrameOutcome<'_> {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    if offset + FRAME_HEADER > buf.len() {
        return FrameOutcome::Damaged;
    }
    let len = u32::from_le_bytes([buf[offset], buf[offset + 1], buf[offset + 2], buf[offset + 3]])
        as usize;
    let crc =
        u32::from_le_bytes([buf[offset + 4], buf[offset + 5], buf[offset + 6], buf[offset + 7]]);
    if len > MAX_FRAME_PAYLOAD {
        return FrameOutcome::Damaged;
    }
    let start = offset + FRAME_HEADER;
    let Some(end) = start.checked_add(len) else {
        return FrameOutcome::Damaged;
    };
    if end > buf.len() {
        return FrameOutcome::Damaged;
    }
    let payload = &buf[start..end];
    if crc32(payload) != crc {
        return FrameOutcome::Damaged;
    }
    FrameOutcome::Valid { payload, next: end }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Canonical CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(b"hello");
        match decode_frame(&frame, 0) {
            FrameOutcome::Valid { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, frame.len());
            }
            other => panic!("expected valid frame, got {other:?}"),
        }
        assert_eq!(decode_frame(&frame, frame.len()), FrameOutcome::End);
    }

    #[test]
    fn truncation_anywhere_is_damage_not_panic() {
        let mut buf = encode_frame(b"first");
        buf.extend_from_slice(&encode_frame(b"second record, a bit longer"));
        for cut in 0..buf.len() {
            let torn = &buf[..cut];
            let mut offset = 0;
            let mut seen = 0;
            loop {
                match decode_frame(torn, offset) {
                    FrameOutcome::Valid { next, .. } => {
                        offset = next;
                        seen += 1;
                    }
                    FrameOutcome::End | FrameOutcome::Damaged => break,
                }
            }
            assert!(seen <= 2);
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let frame = encode_frame(b"payload under test");
        for pos in 0..frame.len() {
            let mut flipped = frame.clone();
            flipped[pos] ^= 0x10;
            match decode_frame(&flipped, 0) {
                FrameOutcome::Valid { payload, .. } => {
                    // A flip in the length bytes may still frame a
                    // checksum-valid record only if it framed the same
                    // payload — impossible for a single-bit length change.
                    panic!("flip at {pos} went undetected: {payload:?}");
                }
                FrameOutcome::Damaged => {}
                FrameOutcome::End => panic!("flip at {pos} produced End"),
            }
        }
    }
}
