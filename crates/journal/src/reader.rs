//! Journal scanning: longest-valid-prefix recovery.

use crate::frame::{decode_frame, FrameOutcome};
use crate::record::JournalRecord;

/// Result of scanning a journal byte log.
#[derive(Debug)]
pub struct ScanResult {
    /// Every record in the longest valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of that valid prefix. Bytes past this point are the
    /// damaged suffix (torn write or bit flip) and must be truncated
    /// before new appends, or they would poison the next recovery.
    pub valid_len: usize,
    /// 1 when a damaged suffix was found, else 0. Frame boundaries are
    /// only discoverable front-to-back, so damage always costs exactly one
    /// contiguous suffix — never interior records.
    pub corrupt_records_skipped: u64,
}

/// Reads a journal back as typed records, tolerating a damaged tail.
pub struct JournalReader;

impl JournalReader {
    /// Walk frames from the front; stop at the first torn, corrupt, or
    /// undecodable frame. Never panics on arbitrary bytes.
    pub fn scan(bytes: &[u8]) -> ScanResult {
        let mut records = Vec::new();
        let mut offset = 0;
        let mut corrupt = 0;
        loop {
            match decode_frame(bytes, offset) {
                FrameOutcome::Valid { payload, next } => match crate::codec::decode(payload) {
                    Ok(record) => {
                        records.push(record);
                        offset = next;
                    }
                    // Checksum-valid but undecodable: treat as damage
                    // (e.g. a frame written by a future record schema).
                    Err(_) => {
                        corrupt = 1;
                        break;
                    }
                },
                FrameOutcome::End => break,
                FrameOutcome::Damaged => {
                    corrupt = 1;
                    break;
                }
            }
        }
        ScanResult { records, valid_len: offset, corrupt_records_skipped: corrupt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crate::record::{JournalRecord, PendingJob};
    use std::collections::BTreeMap;

    fn accepted(fp: u64) -> JournalRecord {
        JournalRecord::JobAccepted(PendingJob {
            pipeline: "p".into(),
            fingerprint: fp,
            inputs: BTreeMap::new(),
        })
    }

    fn log_of(n: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        for fp in 0..n {
            bytes.extend_from_slice(&encode_frame(&crate::codec::encode(&accepted(fp))));
        }
        bytes
    }

    #[test]
    fn clean_log_scans_fully() {
        let bytes = log_of(5);
        let scan = JournalReader::scan(&bytes);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.corrupt_records_skipped, 0);
    }

    #[test]
    fn torn_tail_keeps_prefix_and_counts_one() {
        let bytes = log_of(4);
        let torn = &bytes[..bytes.len() - 3];
        let scan = JournalReader::scan(torn);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.corrupt_records_skipped, 1);
        assert!(scan.valid_len < torn.len());
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = JournalReader::scan(&[]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.corrupt_records_skipped, 0);
    }
}
