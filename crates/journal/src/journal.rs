//! The [`Journal`]: a write-ahead log with an always-current fold.
//!
//! Every append both frames the record to storage *and* folds it into an
//! in-memory [`Checkpoint`]-shaped state. That one fold serves three
//! masters: it is the checkpoint payload when compaction fires, it is the
//! recovery state when a journal is reopened, and it keeps compaction O(1)
//! in journal length (no re-scan to build a checkpoint).
//!
//! Write-ahead ordering is the caller's contract: record the event *before*
//! making its effect observable (finishing a job, handing out a report).
//! The journal's own contract is that whatever prefix of records reached
//! storage is recoverable, regardless of where the process died.

use crate::kill::CrashInjector;
use crate::reader::JournalReader;
use crate::record::{
    Checkpoint, FinishedJob, JournalRecord, PendingJob, StreamCheckpoint, WindowCloseRecord,
    WindowReportRecord,
};
use crate::storage::{FileStorage, SimStorage, Storage};
use crate::writer::JournalWriter;
use lingua_llm_sim::Usage;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// How a journal is attached to a server or stream engine.
#[derive(Clone)]
pub struct JournalTuning {
    pub storage: Arc<dyn Storage>,
    /// Appends between compacted checkpoints. Larger = longer recovery
    /// replay, smaller = more compaction work on the write path.
    pub checkpoint_interval: usize,
    /// Crash injector; [`CrashInjector::inert`] in production.
    pub injector: Arc<CrashInjector>,
}

impl JournalTuning {
    pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 256;

    /// Journal to a file at `path`.
    pub fn file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::over(Arc::new(FileStorage::open(path)?)))
    }

    /// Journal to in-memory sim storage (tests, benches, crash harness).
    pub fn sim(storage: Arc<SimStorage>) -> Self {
        Self::over(storage)
    }

    pub fn over(storage: Arc<dyn Storage>) -> Self {
        Self {
            storage,
            checkpoint_interval: Self::DEFAULT_CHECKPOINT_INTERVAL,
            injector: CrashInjector::inert(),
        }
    }

    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    pub fn with_injector(mut self, injector: Arc<CrashInjector>) -> Self {
        self.injector = injector;
        self
    }
}

impl fmt::Debug for JournalTuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalTuning")
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("armed", &self.injector.armed())
            .finish_non_exhaustive()
    }
}

/// What [`Journal::open`] recovered from storage, before the server decides
/// what to resubmit.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Records replayed from the log (checkpoint included).
    pub replayed: u64,
    /// Damaged tail records skipped (see `ScanResult`).
    pub corrupt_records_skipped: u64,
    /// Jobs that finished before the crash, in journal order.
    pub finished: Vec<FinishedJob>,
    /// Jobs accepted but never finished, in journal order.
    pub pending: Vec<PendingJob>,
    /// Total usage billed by the crashed process, as journaled.
    pub cumulative: Usage,
    /// Stream engine state at the crash.
    pub stream: StreamCheckpoint,
}

/// Fold state: the live mirror of what a checkpoint would say right now.
#[derive(Default)]
struct Fold {
    finished: BTreeMap<(String, u64), FinishedJob>,
    pending: BTreeMap<(String, u64), PendingJob>,
    cumulative: Usage,
    stream: StreamCheckpoint,
}

impl Fold {
    fn apply(&mut self, record: &JournalRecord) {
        match record {
            JournalRecord::JobAccepted(job) => {
                let key = (job.pipeline.clone(), job.fingerprint);
                // A finished job re-accepted (client retry) stays finished.
                if !self.finished.contains_key(&key) {
                    self.pending.insert(key, job.clone());
                }
            }
            // Started is diagnostic only: a started-but-unfinished job is
            // recovered exactly like a queued one.
            JournalRecord::JobStarted { .. } => {}
            JournalRecord::JobFinished(job) => {
                let key = (job.pipeline.clone(), job.fingerprint);
                self.pending.remove(&key);
                self.cumulative.merge(&job.llm);
                self.finished.insert(key, job.clone());
            }
            JournalRecord::JobFailed { pipeline, fingerprint, llm, .. } => {
                self.pending.remove(&(pipeline.clone(), *fingerprint));
                self.cumulative.merge(llm);
            }
            JournalRecord::StreamIngest { item, windows } => {
                for window in windows {
                    self.stream.open_windows.entry(*window).or_default().push(item.clone());
                }
                self.stream.max_event_time = self.stream.max_event_time.max(item.event_time);
            }
            JournalRecord::WatermarkAdvance { watermark, max_event_time } => {
                self.stream.watermark = (*watermark).max(self.stream.watermark);
                self.stream.max_event_time = (*max_event_time).max(self.stream.max_event_time);
            }
            JournalRecord::WindowClose(close) => {
                self.stream.open_windows.remove(&close.window);
                if !self.stream.reported.contains_key(&close.window) {
                    self.stream.closed_unreported.insert(close.window, close.clone());
                }
            }
            JournalRecord::ReportSubmitted(report) => {
                self.stream.closed_unreported.remove(&report.window);
                self.stream.reported.insert(report.window, report.clone());
            }
            JournalRecord::Checkpoint(checkpoint) => {
                *self = Fold::from_checkpoint(checkpoint);
            }
        }
    }

    fn from_checkpoint(checkpoint: &Checkpoint) -> Self {
        let mut fold = Fold {
            cumulative: checkpoint.cumulative,
            stream: checkpoint.stream.clone(),
            ..Fold::default()
        };
        for job in &checkpoint.finished {
            fold.finished.insert((job.pipeline.clone(), job.fingerprint), job.clone());
        }
        for job in &checkpoint.pending {
            fold.pending.insert((job.pipeline.clone(), job.fingerprint), job.clone());
        }
        fold
    }

    fn to_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            finished: self.finished.values().cloned().collect(),
            pending: self.pending.values().cloned().collect(),
            cumulative: self.cumulative,
            stream: self.stream.clone(),
        }
    }
}

struct Inner {
    fold: Fold,
    appends_since_checkpoint: usize,
}

/// Append-only journal with checkpoint compaction. Clone the [`Arc`] it
/// lives in; the journal itself is internally synchronized.
pub struct Journal {
    writer: JournalWriter,
    checkpoint_interval: usize,
    inner: Mutex<Inner>,
}

impl Journal {
    /// Open (or create) a journal over `tuning.storage`: scan the log,
    /// truncate any damaged suffix so future appends stay readable, and
    /// seed the fold from what survived.
    pub fn open(tuning: JournalTuning) -> io::Result<(Self, Recovered)> {
        let bytes = tuning.storage.read()?;
        let scan = JournalReader::scan(&bytes);
        if scan.valid_len < bytes.len() {
            // Repair the tail: appending after torn bytes would make every
            // future record unreachable.
            tuning.storage.replace(&bytes[..scan.valid_len])?;
        }
        let mut fold = Fold::default();
        for record in &scan.records {
            fold.apply(record);
        }
        let recovered = Recovered {
            replayed: scan.records.len() as u64,
            corrupt_records_skipped: scan.corrupt_records_skipped,
            finished: fold.finished.values().cloned().collect(),
            pending: fold.pending.values().cloned().collect(),
            cumulative: fold.cumulative,
            stream: fold.stream.clone(),
        };
        let journal = Journal {
            writer: JournalWriter::new(tuning.storage, tuning.injector),
            checkpoint_interval: tuning.checkpoint_interval.max(1),
            inner: Mutex::new(Inner { fold, appends_since_checkpoint: scan.records.len() }),
        };
        Ok((journal, recovered))
    }

    pub fn injector(&self) -> &Arc<CrashInjector> {
        self.writer.injector()
    }

    /// Whether the simulated process has crashed (always false in
    /// production, where the injector is inert).
    pub fn dead(&self) -> bool {
        self.writer.dead()
    }

    /// Append one record, fold it, and compact if the interval elapsed.
    /// Returns whether the record was durably written — `false` only when
    /// the crash injector killed the simulated process before or during the
    /// write, so harnesses can tell "journaled" from "lost" exactly.
    fn append(&self, record: JournalRecord) -> io::Result<bool> {
        let mut inner = self.inner.lock();
        if self.writer.dead() {
            return Ok(false);
        }
        let written = self.writer.append_record(&record)?;
        if !written {
            return Ok(false);
        }
        inner.fold.apply(&record);
        inner.appends_since_checkpoint += 1;
        if inner.appends_since_checkpoint >= self.checkpoint_interval && !self.writer.dead() {
            let checkpoint = inner.fold.to_checkpoint();
            if self.writer.write_checkpoint(&checkpoint)? {
                inner.appends_since_checkpoint = 0;
            }
        }
        Ok(true)
    }

    pub fn record_job_accepted(
        &self,
        pipeline: &str,
        fingerprint: u64,
        inputs: &BTreeMap<String, lingua_core::Data>,
    ) -> io::Result<bool> {
        self.append(JournalRecord::JobAccepted(PendingJob {
            pipeline: pipeline.to_string(),
            fingerprint,
            inputs: inputs.clone(),
        }))
    }

    pub fn record_job_started(&self, pipeline: &str, fingerprint: u64) -> io::Result<bool> {
        self.append(JournalRecord::JobStarted { pipeline: pipeline.to_string(), fingerprint })
    }

    pub fn record_job_finished(&self, job: FinishedJob) -> io::Result<bool> {
        self.append(JournalRecord::JobFinished(job))
    }

    pub fn record_job_failed(
        &self,
        pipeline: &str,
        fingerprint: u64,
        llm: Usage,
        reason: &str,
    ) -> io::Result<bool> {
        self.append(JournalRecord::JobFailed {
            pipeline: pipeline.to_string(),
            fingerprint,
            llm,
            reason: reason.to_string(),
        })
    }

    pub fn record_stream_ingest(
        &self,
        item: &lingua_dataset::generators::stream::StreamItem,
        windows: &[u64],
    ) -> io::Result<bool> {
        self.append(JournalRecord::StreamIngest { item: item.clone(), windows: windows.to_vec() })
    }

    pub fn record_watermark(&self, watermark: u64, max_event_time: u64) -> io::Result<bool> {
        self.append(JournalRecord::WatermarkAdvance { watermark, max_event_time })
    }

    pub fn record_window_close(&self, close: WindowCloseRecord) -> io::Result<bool> {
        self.append(JournalRecord::WindowClose(close))
    }

    pub fn record_report_submitted(&self, report: WindowReportRecord) -> io::Result<bool> {
        self.append(JournalRecord::ReportSubmitted(report))
    }

    /// Force a checkpoint + compaction now (shutdown path).
    pub fn checkpoint_now(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if self.writer.dead() {
            return Ok(());
        }
        let checkpoint = inner.fold.to_checkpoint();
        if self.writer.write_checkpoint(&checkpoint)? {
            inner.appends_since_checkpoint = 0;
        }
        Ok(())
    }

    pub fn flush(&self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kill::{CrashInjector, KillPoint};
    use lingua_core::Data;

    fn inputs(n: i64) -> BTreeMap<String, Data> {
        BTreeMap::from([("n".to_string(), Data::Int(n))])
    }

    fn finished(pipeline: &str, fp: u64, tokens: usize) -> FinishedJob {
        let mut llm = Usage::default();
        llm.record(tokens, tokens / 4);
        FinishedJob {
            pipeline: pipeline.into(),
            fingerprint: fp,
            env: BTreeMap::from([("out".to_string(), Data::Int(fp as i64))]),
            llm,
            wall_us: 10,
        }
    }

    #[test]
    fn roundtrip_pending_and_finished() {
        let storage = SimStorage::new();
        let (journal, fresh) = Journal::open(JournalTuning::sim(storage.clone())).unwrap();
        assert_eq!(fresh.replayed, 0);

        journal.record_job_accepted("clean", 1, &inputs(1)).unwrap();
        journal.record_job_accepted("clean", 2, &inputs(2)).unwrap();
        journal.record_job_started("clean", 1).unwrap();
        journal.record_job_finished(finished("clean", 1, 100)).unwrap();
        drop(journal);

        let (_journal, recovered) = Journal::open(JournalTuning::sim(storage)).unwrap();
        assert_eq!(recovered.replayed, 4);
        assert_eq!(recovered.corrupt_records_skipped, 0);
        assert_eq!(recovered.finished.len(), 1);
        assert_eq!(recovered.finished[0].fingerprint, 1);
        assert_eq!(recovered.pending.len(), 1);
        assert_eq!(recovered.pending[0].fingerprint, 2);
        assert_eq!(recovered.cumulative.calls, 1);
        assert_eq!(recovered.cumulative.tokens_in, 100);
    }

    #[test]
    fn checkpoint_compacts_the_log_and_preserves_state() {
        let storage = SimStorage::new();
        let tuning = JournalTuning::sim(storage.clone()).with_checkpoint_interval(4);
        let (journal, _) = Journal::open(tuning).unwrap();
        for fp in 0..10 {
            journal.record_job_accepted("p", fp, &inputs(fp as i64)).unwrap();
            journal.record_job_finished(finished("p", fp, 10)).unwrap();
        }
        drop(journal);

        let bytes = storage.snapshot();
        let scan = JournalReader::scan(&bytes);
        // Compaction keeps the log short: one checkpoint plus a tail
        // shorter than the interval.
        assert!(scan.records.len() <= 4, "log held {} records", scan.records.len());
        assert!(matches!(scan.records[0], JournalRecord::Checkpoint(_)));

        let (_journal, recovered) = Journal::open(JournalTuning::sim(storage)).unwrap();
        assert_eq!(recovered.finished.len(), 10);
        assert_eq!(recovered.pending.len(), 0);
        assert_eq!(recovered.cumulative.calls, 10);
    }

    #[test]
    fn dead_journal_writes_nothing() {
        let storage = SimStorage::new();
        let injector = CrashInjector::armed_at(KillPoint::BeforeJournal, 2);
        let tuning = JournalTuning::sim(storage.clone()).with_injector(injector.clone());
        let (journal, _) = Journal::open(tuning).unwrap();
        journal.record_job_accepted("p", 1, &inputs(1)).unwrap();
        let len_before = storage.len();
        journal.record_job_accepted("p", 2, &inputs(2)).unwrap(); // dies here
        journal.record_job_accepted("p", 3, &inputs(3)).unwrap(); // dropped
        journal.record_job_finished(finished("p", 1, 5)).unwrap(); // dropped
        assert!(journal.dead());
        assert_eq!(storage.len(), len_before);

        let (_journal, recovered) = Journal::open(JournalTuning::sim(storage)).unwrap();
        assert_eq!(recovered.pending.len(), 1);
        assert_eq!(recovered.finished.len(), 0);
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let storage = SimStorage::new();
        let (journal, _) = Journal::open(JournalTuning::sim(storage.clone())).unwrap();
        journal.record_job_accepted("p", 1, &inputs(1)).unwrap();
        journal.record_job_accepted("p", 2, &inputs(2)).unwrap();
        drop(journal);
        storage.truncate(storage.len() - 5);

        let (journal, recovered) = Journal::open(JournalTuning::sim(storage.clone())).unwrap();
        assert_eq!(recovered.replayed, 1);
        assert_eq!(recovered.corrupt_records_skipped, 1);
        // The damaged suffix is gone and new appends are readable.
        journal.record_job_accepted("p", 3, &inputs(3)).unwrap();
        drop(journal);
        let (_journal, again) = Journal::open(JournalTuning::sim(storage)).unwrap();
        assert_eq!(again.replayed, 2);
        assert_eq!(again.corrupt_records_skipped, 0);
        assert_eq!(again.pending.len(), 2);
    }

    #[test]
    fn client_retry_of_finished_job_stays_finished() {
        let storage = SimStorage::new();
        let (journal, _) = Journal::open(JournalTuning::sim(storage.clone())).unwrap();
        journal.record_job_accepted("p", 7, &inputs(7)).unwrap();
        journal.record_job_finished(finished("p", 7, 10)).unwrap();
        // Recovery resubmission (or a client retry) re-accepts the same
        // fingerprint; it must not resurrect as pending.
        journal.record_job_accepted("p", 7, &inputs(7)).unwrap();
        drop(journal);
        let (_journal, recovered) = Journal::open(JournalTuning::sim(storage)).unwrap();
        assert_eq!(recovered.pending.len(), 0);
        assert_eq!(recovered.finished.len(), 1);
    }
}
