//! Low-level framed appender with kill-point instrumentation.

use crate::frame::encode_frame;
use crate::kill::{CrashInjector, KillPoint};
use crate::record::{Checkpoint, JournalRecord};
use crate::storage::Storage;
use std::io;
use std::sync::Arc;

/// Appends CRC-framed records to a [`Storage`], threading every write
/// through the crash injector. Once the injector reports dead, every write
/// is silently dropped — the simulated process no longer exists, so nothing
/// it "does" can reach storage.
pub struct JournalWriter {
    storage: Arc<dyn Storage>,
    injector: Arc<CrashInjector>,
}

impl JournalWriter {
    pub fn new(storage: Arc<dyn Storage>, injector: Arc<CrashInjector>) -> Self {
        Self { storage, injector }
    }

    pub fn injector(&self) -> &Arc<CrashInjector> {
        &self.injector
    }

    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    pub fn dead(&self) -> bool {
        self.injector.dead()
    }

    fn encode(record: &JournalRecord) -> Vec<u8> {
        encode_frame(&crate::codec::encode(record))
    }

    /// Append one record. Returns `Ok(true)` when the full frame reached
    /// storage, `Ok(false)` when the injected crash dropped or tore it.
    pub fn append_record(&self, record: &JournalRecord) -> io::Result<bool> {
        if self.injector.fire(KillPoint::BeforeJournal) {
            return Ok(false);
        }
        let frame = Self::encode(record);
        if self.injector.fire(KillPoint::MidWrite) {
            // Torn write: the first half of the frame reaches storage, the
            // process dies before the rest.
            self.storage.append(&frame[..frame.len() / 2])?;
            return Ok(false);
        }
        self.storage.append(&frame)?;
        self.injector.fire(KillPoint::AfterJournal);
        Ok(true)
    }

    /// Write a checkpoint and compact: atomically replace the whole log
    /// with just the checkpoint frame, so recovery replays only records
    /// appended after it. Returns `Ok(true)` when compaction completed.
    pub fn write_checkpoint(&self, checkpoint: &Checkpoint) -> io::Result<bool> {
        if self.injector.dead() {
            return Ok(false);
        }
        let frame = Self::encode(&JournalRecord::Checkpoint(checkpoint.clone()));
        if self.injector.fire(KillPoint::MidCheckpoint) {
            // The checkpoint frame tears mid-append, before compaction
            // replaced anything: the old log survives with a damaged tail.
            self.storage.append(&frame[..frame.len() / 2])?;
            return Ok(false);
        }
        self.storage.replace(&frame)?;
        self.injector.fire(KillPoint::AfterCheckpoint);
        Ok(true)
    }

    pub fn flush(&self) -> io::Result<()> {
        if self.injector.dead() {
            return Ok(());
        }
        self.storage.flush()
    }
}
