//! The journal's record vocabulary.
//!
//! Each variant of [`JournalRecord`] is one durable fact about serve-job
//! lifecycle or stream-engine state, written *before* the corresponding
//! in-memory effect becomes observable (write-ahead ordering). Records are
//! self-contained: recovery needs no live engine to interpret them, only
//! the fold in [`crate::journal`].
//!
//! JSON (via the explicit [`crate::codec`]) is the payload format —
//! records are small control-plane events, the hot data plane never flows
//! through the journal, and a human-readable log is worth far more during
//! a 3am recovery than a few saved bytes.

use lingua_core::Data;
use lingua_dataset::generators::stream::StreamItem;
use lingua_llm_sim::Usage;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serve job that was accepted but has not yet finished. Carries the full
/// inputs so recovery can resubmit it without the original caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    pub pipeline: String,
    /// Input fingerprint — the dedup key that makes recovery exactly-once.
    pub fingerprint: u64,
    pub inputs: BTreeMap<String, Data>,
}

/// A serve job that ran to completion, with everything needed to restore
/// its result into the serve-side result cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinishedJob {
    pub pipeline: String,
    pub fingerprint: u64,
    /// The pipeline's final environment (its output).
    pub env: BTreeMap<String, Data>,
    /// LLM usage billed to this job.
    pub llm: Usage,
    /// Wall-clock the original execution took, in microseconds.
    pub wall_us: u64,
}

/// A closed-but-not-yet-reported stream window: the pending-report metadata
/// plus the serve-job inputs needed to resubmit the window job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowCloseRecord {
    pub window: u64,
    pub start: u64,
    pub end: u64,
    pub records: usize,
    pub candidate_pairs: usize,
    pub comparisons: u64,
    pub true_duplicates: usize,
    /// Pairs judged inline before close (continuous strategy).
    pub inline_judged: u64,
    pub inline_matched: u64,
    /// Inputs of the window-report serve job.
    pub inputs: BTreeMap<String, Data>,
}

/// A fully reported window — the durable mirror of a stream `WindowReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReportRecord {
    pub window: u64,
    pub start: u64,
    pub end: u64,
    pub records: usize,
    pub candidate_pairs: usize,
    pub comparisons: u64,
    pub judged: u64,
    pub matched: u64,
    pub true_duplicates: usize,
    pub llm: Usage,
}

/// One durable event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A job entered the serve queue.
    JobAccepted(PendingJob),
    /// A worker picked the job up. Purely diagnostic — recovery treats
    /// started-but-unfinished exactly like queued (the work is lost either
    /// way) — but it dates the crash within the job lifecycle.
    JobStarted { pipeline: String, fingerprint: u64 },
    /// The job completed and its output is durable.
    JobFinished(FinishedJob),
    /// The job failed terminally (panic, deadline, pipeline error). The
    /// partial usage is still billed; recovery does not resurrect it.
    JobFailed { pipeline: String, fingerprint: u64, llm: Usage, reason: String },
    /// A stream item was ingested into the listed open windows. The engine
    /// records its own window assignment so the fold never re-derives
    /// window math.
    StreamIngest { item: StreamItem, windows: Vec<u64> },
    /// The watermark advanced. `max_event_time` rides along so a restored
    /// engine resumes with the exact disorder bookkeeping it crashed with.
    WatermarkAdvance { watermark: u64, max_event_time: u64 },
    /// A window closed and its report job is about to be submitted.
    WindowClose(WindowCloseRecord),
    /// The window's report was produced and handed to the application:
    /// this window must never be reported again.
    ReportSubmitted(WindowReportRecord),
    /// A compacted snapshot of everything above; resets the fold.
    Checkpoint(Checkpoint),
}

impl JournalRecord {
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::JobAccepted(_) => "job_accepted",
            JournalRecord::JobStarted { .. } => "job_started",
            JournalRecord::JobFinished(_) => "job_finished",
            JournalRecord::JobFailed { .. } => "job_failed",
            JournalRecord::StreamIngest { .. } => "stream_ingest",
            JournalRecord::WatermarkAdvance { .. } => "watermark_advance",
            JournalRecord::WindowClose(_) => "window_close",
            JournalRecord::ReportSubmitted(_) => "report_submitted",
            JournalRecord::Checkpoint(_) => "checkpoint",
        }
    }
}

/// The compacted state the journal folds every record into. A checkpoint
/// frame carries this snapshot verbatim; recovery seeds its fold from the
/// last checkpoint and replays only the records after it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Finished jobs keyed by `(pipeline, fingerprint)` — the durable dedup
    /// index and result cache.
    pub finished: Vec<FinishedJob>,
    /// Accepted-but-unfinished jobs, to resubmit on recovery.
    pub pending: Vec<PendingJob>,
    /// Cumulative billed usage across finished and failed jobs — the
    /// ledger's durable shadow.
    pub cumulative: Usage,
    /// Stream engine state, if a stream engine writes to this journal.
    pub stream: StreamCheckpoint,
}

/// Stream-engine portion of a checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    pub watermark: u64,
    pub max_event_time: u64,
    /// Items of still-open windows, keyed by window id, in ingest order so
    /// a restored engine rebuilds identical window state by re-insertion.
    pub open_windows: BTreeMap<u64, Vec<StreamItem>>,
    /// Windows that closed but whose report was never submitted.
    pub closed_unreported: BTreeMap<u64, WindowCloseRecord>,
    /// Reports already handed to the application, keyed by window id.
    pub reported: BTreeMap<u64, WindowReportRecord>,
}

/// What recovery found, surfaced through `MetricsSnapshot` so operators can
/// see that a restart replayed state and how much of the tail was damaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySnapshot {
    /// Journal records (including the seeding checkpoint) replayed.
    pub replayed: u64,
    /// Journaled-but-unfinished jobs resubmitted into the queue.
    pub resumed_jobs: u64,
    /// Resubmissions answered by the restored result cache instead of
    /// re-executing — the exactly-once guard doing its job.
    pub skipped_duplicates: u64,
    /// Damaged tail records skipped (0 on a clean log, 1 after a torn or
    /// bit-flipped tail — frames after the first damage are unreachable).
    pub corrupt_records_skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let mut usage = Usage::default();
        usage.record(120, 8);
        let records = vec![
            JournalRecord::JobAccepted(PendingJob {
                pipeline: "clean".into(),
                fingerprint: 42,
                inputs: BTreeMap::from([("text".to_string(), Data::Str("x".into()))]),
            }),
            JournalRecord::JobStarted { pipeline: "clean".into(), fingerprint: 42 },
            JournalRecord::JobFinished(FinishedJob {
                pipeline: "clean".into(),
                fingerprint: 42,
                env: BTreeMap::from([("out".to_string(), Data::Int(7))]),
                llm: usage,
                wall_us: 1500,
            }),
            JournalRecord::WatermarkAdvance { watermark: 64, max_event_time: 71 },
            JournalRecord::Checkpoint(Checkpoint::default()),
        ];
        for record in records {
            let bytes = crate::codec::encode(&record);
            let back = crate::codec::decode(&bytes).unwrap();
            assert_eq!(back, record);
        }
    }
}
