//! A small, strict JSON parser producing `serde_json::Value`.
//!
//! The journal's wire format is JSON text, but decoding cannot lean on
//! generic serde deserialization: the workspace builds against a minimal
//! std-backed serde in offline environments, where only the concrete
//! `Value` tree exists. Parsing here — against the common `Value` surface —
//! keeps the journal byte-compatible everywhere the workspace compiles.
//!
//! Strictness matters more than features: a journal payload is either
//! exactly what the writer produced or it is damage, so the parser rejects
//! trailing garbage, unpaired surrogates, and malformed numbers instead of
//! guessing.

use serde_json::{Map, Value};
use std::fmt;

/// Why a payload failed to parse. Recovery treats any parse failure as a
/// damaged record, so the message only ever feeds diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(bytes: &[u8]) -> Result<Value, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { at: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static [u8], message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", "expected 'true'").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal(b"false", "expected 'false'").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal(b"null", "expected 'null'").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or_else(|| self.err("invalid utf-8"))?;
                    let end = start + width;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a \uXXXX low surrogate.
            self.literal(b"\\u", "unpaired surrogate")?;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("unpaired surrogate"));
            }
            let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid codepoint"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !f.is_finite() {
                return Err(self.err("non-finite number"));
            }
            Ok(Value::from(f))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _: i64 = stripped.parse().map_err(|_| self.err("invalid number"))?;
            let n: i64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::from(n))
        } else {
            let n: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::from(n))
        }
    }
}

fn utf8_width(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let text = serde_json::to_string(v).unwrap();
        let back = parse(text.as_bytes()).unwrap();
        assert_eq!(&back, v, "roundtrip failed for {text}");
    }

    #[test]
    fn roundtrips_every_shape() {
        let mut map = Map::new();
        map.insert("neg".into(), Value::from(-42i64));
        map.insert("big".into(), Value::from(u64::MAX));
        map.insert("pi".into(), Value::from(3.25f64));
        map.insert("whole".into(), Value::from(2.0f64));
        map.insert("s".into(), Value::String("quote \" slash \\ nl \n tab \t".into()));
        map.insert("unicode".into(), Value::String("héllo 🦀 \u{0007}".into()));
        map.insert("arr".into(), Value::Array(vec![Value::Null, Value::Bool(true)]));
        map.insert("nested".into(), Value::Object(Map::new()));
        roundtrip(&Value::Object(map));
        roundtrip(&Value::Array(vec![]));
        roundtrip(&Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"tru",
            b"1 2",
            b"\"\\u12\"",
            b"\"\\ud800\"",
            b"nullx",
            b"{\"a\":}",
            b"\x01",
            b"",
        ] {
            assert!(parse(bad).is_err(), "accepted {:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(b"\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F980}"));
    }
}
