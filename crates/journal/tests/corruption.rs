//! Deterministic corruption sweeps: truncate the log at *every* byte offset
//! and flip a bit at *every* byte position, and prove recovery (a) never
//! panics, (b) loses at most the damaged suffix — never an interior record —
//! and (c) reports `corrupt_records_skipped` exactly.
//!
//! These sweeps are exhaustive over one representative log (every record
//! variant, a checkpoint frame in front). The randomized generalization —
//! arbitrary logs, arbitrary damage — lives in `proptest_corruption.rs`.

use lingua_core::Data;
use lingua_dataset::generators::stream::{ProductStream, StreamItem, StreamSpec};
use lingua_dataset::world::WorldSpec;
use lingua_durable::{
    FinishedJob, Journal, JournalReader, JournalTuning, SimStorage, WindowCloseRecord,
    WindowReportRecord,
};
use lingua_llm_sim::Usage;
use std::collections::BTreeMap;
use std::sync::Arc;

fn inputs(n: i64) -> BTreeMap<String, Data> {
    BTreeMap::from([("n".to_string(), Data::Int(n))])
}

fn finished(fp: u64) -> FinishedJob {
    let mut llm = Usage::default();
    llm.record(64, 16);
    FinishedJob {
        pipeline: "curate".into(),
        fingerprint: fp,
        env: BTreeMap::from([("out".to_string(), Data::Int(fp as i64))]),
        llm,
        wall_us: 10,
    }
}

fn stream_items() -> Vec<StreamItem> {
    let world = WorldSpec::generate(7);
    ProductStream::new(&world, StreamSpec { seed: 7, ..Default::default() }).take(4).collect()
}

/// One representative log: every record variant, a checkpoint frame at the
/// front (from compaction), a varied tail behind it. Rebuilt identically on
/// every call — corruption tests mutate the storage, so each case needs a
/// fresh copy.
fn pristine(items: &[StreamItem]) -> Arc<SimStorage> {
    let storage = SimStorage::new();
    let (journal, _) = Journal::open(JournalTuning::sim(storage.clone())).expect("open");
    journal.record_job_accepted("curate", 1, &inputs(1)).unwrap();
    journal.record_job_started("curate", 1).unwrap();
    journal.record_job_finished(finished(1)).unwrap();
    journal.record_job_accepted("curate", 2, &inputs(2)).unwrap();
    journal.record_job_failed("curate", 2, Usage::default(), "timeout").unwrap();
    // Compacts everything above into a single leading checkpoint frame.
    journal.checkpoint_now().unwrap();
    for (i, item) in items.iter().enumerate() {
        journal.record_stream_ingest(item, &[i as u64, i as u64 + 1]).unwrap();
    }
    journal.record_watermark(40, 48).unwrap();
    journal
        .record_window_close(WindowCloseRecord {
            window: 3,
            start: 48,
            end: 80,
            records: 2,
            candidate_pairs: 1,
            comparisons: 1,
            true_duplicates: 1,
            inline_judged: 0,
            inline_matched: 0,
            inputs: inputs(3),
        })
        .unwrap();
    journal
        .record_report_submitted(WindowReportRecord {
            window: 3,
            start: 48,
            end: 80,
            records: 2,
            candidate_pairs: 1,
            comparisons: 1,
            judged: 1,
            matched: 1,
            true_duplicates: 1,
            llm: Usage::default(),
        })
        .unwrap();
    journal.record_job_accepted("curate", 9, &inputs(9)).unwrap();
    journal.flush().unwrap();
    storage
}

/// Truncating the log to every possible length: recovery keeps exactly the
/// complete frames in the prefix, counts one damaged suffix iff the cut is
/// mid-frame, and repairs the log so the next open is clean.
#[test]
fn truncation_at_every_offset_recovers_the_exact_prefix() {
    let items = stream_items();
    let full = pristine(&items).snapshot();
    assert!(full.len() > 100, "the sweep needs a real log");

    for len in 0..=full.len() {
        // Oracle from the reader layer: which complete frames fit in the
        // prefix, and does the cut land on a frame boundary?
        let oracle = JournalReader::scan(&full[..len]);
        let on_boundary = oracle.valid_len == len;

        let storage = pristine(&items);
        storage.truncate(len);
        let (journal, recovered) =
            Journal::open(JournalTuning::sim(storage.clone())).expect("open never fails");
        assert_eq!(
            recovered.replayed,
            oracle.records.len() as u64,
            "len {len}: recovery must keep every complete frame in the prefix"
        );
        assert_eq!(
            recovered.corrupt_records_skipped,
            u64::from(!on_boundary),
            "len {len}: exactly the damaged suffix is counted"
        );
        drop(journal);

        // Repair is complete and idempotent: the reopened log is clean and
        // replays the same records.
        let (_journal, again) = Journal::open(JournalTuning::sim(storage)).expect("reopen");
        assert_eq!(again.corrupt_records_skipped, 0, "len {len}: tail was repaired");
        assert_eq!(again.replayed, oracle.records.len() as u64, "len {len}: no further loss");
    }
}

/// Flipping one bit at every byte position: the CRC catches it, recovery
/// stops at the damaged frame (keeping everything before it), counts one
/// damaged suffix, and never panics.
#[test]
fn bit_flip_at_every_position_loses_only_the_suffix() {
    let items = stream_items();
    let full = pristine(&items).snapshot();

    for pos in 0..full.len() {
        // Frames wholly before `pos` are untouched by the flip; the frame
        // containing `pos` and everything after it is the damaged suffix.
        let expected = JournalReader::scan(&full[..pos]).records.len() as u64;

        let storage = pristine(&items);
        storage.flip_bit(pos, (pos % 8) as u8);
        let (_journal, recovered) =
            Journal::open(JournalTuning::sim(storage)).expect("open never fails");
        assert_eq!(recovered.replayed, expected, "pos {pos}: every frame before the flip survives");
        assert_eq!(
            recovered.corrupt_records_skipped, 1,
            "pos {pos}: the damaged suffix is counted exactly once"
        );
    }
}

/// Damage in two places still costs one contiguous suffix: frame boundaries
/// are only discoverable front-to-back, so the scan stops at the first bad
/// frame and everything behind it is gone regardless of later damage.
#[test]
fn multiple_corruptions_still_one_suffix() {
    let items = stream_items();
    let full = pristine(&items).snapshot();
    let (a, b) = (full.len() / 3, 2 * full.len() / 3);
    let expected = JournalReader::scan(&full[..a]).records.len() as u64;

    let storage = pristine(&items);
    storage.flip_bit(a, 3);
    storage.flip_bit(b, 5);
    let (_journal, recovered) = Journal::open(JournalTuning::sim(storage)).expect("open");
    assert_eq!(recovered.replayed, expected, "scan stops at the first damaged frame");
    assert_eq!(recovered.corrupt_records_skipped, 1, "one contiguous suffix, not two");
}
