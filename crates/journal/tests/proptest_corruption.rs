//! Property-based corruption torture: arbitrary record mixes, arbitrary
//! truncation points, arbitrary byte flips — recovery must never panic,
//! must lose at most the damaged suffix (never an interior record), and
//! must report `corrupt_records_skipped` exactly.
//!
//! The exhaustive single-log sweeps live in `corruption.rs`; this file
//! generalizes them over randomized logs and damage. (Named `proptest_*`
//! so sandboxed offline builds, which stub the proptest dependency, skip
//! it; real CI runs it in full.)

use lingua_core::Data;
use lingua_durable::{FinishedJob, Journal, JournalReader, JournalTuning, SimStorage};
use lingua_llm_sim::Usage;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A journal populated from a compact script: each step appends one of the
/// serve-lifecycle record kinds (the frame/codec layer underneath is shared
/// by every kind, so lifecycle records exercise the same decode paths the
/// stream records do).
fn build(script: &[u8]) -> Arc<SimStorage> {
    let storage = SimStorage::new();
    let (journal, _) = Journal::open(JournalTuning::sim(storage.clone())).expect("open");
    for (i, step) in script.iter().enumerate() {
        let fp = i as u64;
        let inputs = BTreeMap::from([("n".to_string(), Data::Int(fp as i64))]);
        match step % 4 {
            0 => journal.record_job_accepted("p", fp, &inputs).map(|_| ()),
            1 => journal.record_job_started("p", fp).map(|_| ()),
            2 => {
                let mut llm = Usage::default();
                llm.record(8 + i, 2 + i);
                journal.record_job_finished(FinishedJob {
                    pipeline: "p".into(),
                    fingerprint: fp,
                    env: BTreeMap::from([("out".to_string(), Data::Int(fp as i64))]),
                    llm,
                    wall_us: i as u64,
                })
            }
            .map(|_| ()),
            _ => journal.record_job_failed("p", fp, Usage::default(), "boom").map(|_| ()),
        }
        .expect("append");
    }
    journal.flush().expect("flush");
    storage
}

proptest! {
    /// Truncation at an arbitrary offset keeps exactly the complete frames
    /// before the cut and counts the damage exactly.
    #[test]
    fn truncation_never_panics_and_counts_exactly(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        cut in any::<prop::sample::Index>(),
    ) {
        let full = build(&script).snapshot();
        let len = cut.index(full.len() + 1);
        let oracle = JournalReader::scan(&full[..len]);

        let storage = build(&script);
        storage.truncate(len);
        let (_journal, recovered) =
            Journal::open(JournalTuning::sim(storage.clone())).expect("open never fails");
        prop_assert_eq!(recovered.replayed, oracle.records.len() as u64);
        prop_assert_eq!(
            recovered.corrupt_records_skipped,
            u64::from(oracle.valid_len != len)
        );

        // Repair is complete: the next open replays the same state cleanly.
        let (_journal, again) = Journal::open(JournalTuning::sim(storage)).expect("reopen");
        prop_assert_eq!(again.corrupt_records_skipped, 0);
        prop_assert_eq!(again.replayed, oracle.records.len() as u64);
    }

    /// A single byte flip anywhere in the log costs at most the suffix from
    /// the damaged frame on — never an interior record, never a panic.
    #[test]
    fn byte_flip_never_panics_and_loses_only_a_suffix(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let full = build(&script).snapshot();
        prop_assume!(!full.is_empty());
        let pos = pos.index(full.len());
        let expected = JournalReader::scan(&full[..pos]).records.len() as u64;

        let storage = build(&script);
        storage.flip_bit(pos, bit);
        let (_journal, recovered) =
            Journal::open(JournalTuning::sim(storage)).expect("open never fails");
        prop_assert_eq!(recovered.replayed, expected);
        prop_assert_eq!(recovered.corrupt_records_skipped, 1);
    }
}
