//! Property-based differential testing: arbitrary generated programs must
//! behave identically on the tree-walking interpreter and the bytecode VM —
//! results, errors, fuel use, print output, and host-call sequences.
//!
//! Complements `vm_differential.rs` (a seeded, dependency-free corpus that
//! runs everywhere): this suite adds proptest's shrinking on top in CI.

use lingua_script::ast::*;
use lingua_script::error::Span;
use lingua_script::{compile, Host, Interpreter, ScriptError, Value, Vm};
use proptest::prelude::*;
use std::sync::Arc;

fn span() -> Span {
    Span::default()
}

/// Variable names drawn from a small pool so reads frequently hit a binding
/// (and sometimes don't — unknown-variable errors must match too).
fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("x"), Just("y"), Just("z")].prop_map(str::to_string)
}

/// Call names covering builtins, user functions, host specials, mutating
/// forms, and unknown names.
fn call_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("len"),
        Just("join"),
        Just("sort"),
        Just("trim"),
        Just("upper"),
        Just("typeof"),
        Just("to_str"),
        Just("abs"),
        Just("keys"),
        Just("f0"),
        Just("f1"),
        Just("mystery"),
        Just("push"),
        Just("pop"),
        Just("insert"),
        Just("delete"),
        Just("print"),
        Just("call_llm"),
        Just("call_module"),
        Just("call_tool"),
    ]
    .prop_map(str::to_string)
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Null(span())),
        any::<bool>().prop_map(|b| Expr::Bool(b, span())),
        (-10i64..10).prop_map(|i| Expr::Int(i, span())),
        (-16i64..16).prop_map(|q| Expr::Float(q as f64 / 4.0, span())),
        "[a-z]{0,6}".prop_map(|s| Expr::Str(s, span())),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), var_name().prop_map(|n| Expr::Var(n, span()))];
    leaf.prop_recursive(depth, 48, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(|items| Expr::List(items, span())),
            prop::collection::vec(("k[0-2]", inner.clone()), 0..3)
                .prop_map(|pairs| Expr::Map(pairs, span())),
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r),
                span()
            )),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, e)| Expr::Unary(op, Box::new(e), span())),
            (call_name(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call(name, args, span())),
            (var_name(), inner.clone()).prop_map(|(v, i)| Expr::Index(
                Box::new(Expr::Var(v, span())),
                Box::new(i),
                span()
            )),
        ]
    })
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (var_name(), expr(2)).prop_map(|(name, value)| Stmt::Let { name, value, span: span() }),
        (var_name(), expr(2)).prop_map(|(name, value)| Stmt::Assign {
            target: LValue::Var(name),
            value,
            span: span()
        }),
        (var_name(), expr(1), expr(2)).prop_map(|(name, idx, value)| Stmt::Assign {
            target: LValue::Index(name, idx),
            value,
            span: span()
        }),
        expr(2).prop_map(Stmt::Expr),
        prop::option::of(expr(2)).prop_map(|value| Stmt::Return { value, span: span() }),
        Just(Stmt::Break(span())),
        Just(Stmt::Continue(span())),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    prop_oneof![
        simple,
        (
            expr(1),
            prop::collection::vec(stmt(depth - 1), 0..3),
            prop::collection::vec(stmt(depth - 1), 0..2)
        )
            .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                cond,
                then_branch,
                else_branch,
                span: span()
            }),
        (expr(1), prop::collection::vec(stmt(depth - 1), 0..3))
            .prop_map(|(cond, body)| Stmt::While { cond, body, span: span() }),
        (var_name(), expr(1), prop::collection::vec(stmt(depth - 1), 0..3))
            .prop_map(|(var, iterable, body)| Stmt::For { var, iterable, body, span: span() }),
    ]
    .boxed()
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(stmt(2), 0..4),
        prop::collection::vec(stmt(2), 0..4),
        prop::collection::vec(stmt(3), 1..6),
    )
        .prop_map(|(b0, b1, main_tail)| {
            let mut main_body = vec![
                Stmt::Let {
                    name: "x".into(),
                    value: Expr::List(vec![Expr::Int(1, span()), Expr::Int(2, span())], span()),
                    span: span(),
                },
                Stmt::Let {
                    name: "y".into(),
                    value: Expr::Map(vec![("k0".into(), Expr::Int(3, span()))], span()),
                    span: span(),
                },
            ];
            main_body.extend(main_tail);
            Program {
                functions: vec![
                    FnDecl {
                        name: "f0".into(),
                        params: vec!["a".into(), "b".into()],
                        body: b0,
                        span: span(),
                    },
                    FnDecl { name: "f1".into(), params: vec!["a".into()], body: b1, span: span() },
                    FnDecl { name: "main".into(), params: vec![], body: main_body, span: span() },
                ],
            }
        })
}

#[derive(Default)]
struct RecordingHost {
    log: Vec<String>,
}

impl Host for RecordingHost {
    fn call_llm(&mut self, prompt: &str) -> Result<String, String> {
        self.log.push(format!("llm:{prompt}"));
        if prompt.len() % 7 == 3 {
            Err(format!("llm refused `{prompt}`"))
        } else {
            Ok(format!("L<{prompt}>"))
        }
    }

    fn call_module(&mut self, name: &str, input: Value) -> Result<Value, String> {
        self.log.push(format!("module:{name}:{input}"));
        Ok(Value::Str(format!("M<{name}:{input}>")))
    }

    fn call_tool(&mut self, name: &str, args: &[Value]) -> Result<Value, String> {
        self.log.push(format!("tool:{name}:{}", args.len()));
        Ok(Value::Int(args.len() as i64))
    }
}

fn run_both(p: &Program, fuel: u64) -> Result<(), TestCaseError> {
    let mut interp = Interpreter::new(p).with_fuel(fuel).with_max_depth(16);
    let mut ihost = RecordingHost::default();
    let i: Result<Value, ScriptError> = interp.call(&mut ihost, "main", vec![]);

    let mut vm = Vm::new(Arc::new(compile(p))).with_fuel(fuel).with_max_depth(16);
    let mut vhost = RecordingHost::default();
    let v = vm.call(&mut vhost, "main", vec![]);

    prop_assert_eq!(i, v, "result divergence");
    prop_assert_eq!(interp.fuel_used(), vm.fuel_used(), "fuel divergence");
    prop_assert_eq!(&interp.output, &vm.output, "print divergence");
    prop_assert_eq!(&ihost.log, &vhost.log, "host-call divergence");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn vm_matches_interpreter_on_arbitrary_programs(p in program()) {
        run_both(&p, 5_000)?;
    }

    #[test]
    fn vm_matches_interpreter_under_tight_fuel(p in program(), fuel in 1u64..200) {
        // Starved budgets cut execution at arbitrary points; the trap point
        // and the fuel counter must still agree exactly.
        run_both(&p, fuel)?;
    }
}
