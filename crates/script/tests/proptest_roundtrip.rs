//! Property tests: `parse(pretty(ast)) == ast` (strict structural identity
//! modulo spans), and the interpreter never panics on arbitrary small
//! programs.

use lingua_script::{ast::*, parse, pretty, Interpreter, NoHost, Value};
use proptest::prelude::*;

fn span() -> Span {
    Span::default()
}

use lingua_script::error::Span;

/// Generator for identifiers that are not keywords or builtin special forms.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "fn" | "let"
                | "if"
                | "else"
                | "while"
                | "for"
                | "in"
                | "return"
                | "break"
                | "continue"
                | "true"
                | "false"
                | "null"
                | "push"
                | "pop"
                | "insert"
                | "delete"
        )
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Null(span())),
        any::<bool>().prop_map(|b| Expr::Bool(b, span())),
        (-1000i64..1000).prop_map(|i| Expr::Int(i, span())),
        (-100.0f64..100.0).prop_map(|f| Expr::Float((f * 8.0).round() / 8.0, span())),
        "[ -~]{0,12}".prop_map(|s| Expr::Str(s, span())),
    ]
}

fn expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), ident().prop_map(|n| Expr::Var(n, span()))];
    leaf.prop_recursive(depth, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(|items| Expr::List(items, span())),
            prop::collection::vec(("[a-z]{1,4}", inner.clone()), 0..3)
                .prop_map(|pairs| Expr::Map(pairs, span())),
            (inner.clone(), inner.clone(), binop()).prop_map(|(l, r, op)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r),
                span()
            )),
            (inner.clone(), unop()).prop_map(|(e, op)| match (op, e) {
                // The parser folds a negated numeric literal into a signed
                // constant, so generate the folded form directly — otherwise
                // `parse(pretty(ast))` could never equal `ast`.
                (UnOp::Neg, Expr::Int(v, s)) => Expr::Int(v.wrapping_neg(), s),
                (UnOp::Neg, Expr::Float(v, s)) => Expr::Float(-v, s),
                (op, e) => Expr::Unary(op, Box::new(e), span()),
            }),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call(name, args, span())),
            (inner.clone(), inner).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i), span())),
        ]
    })
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (ident(), expr(2)).prop_map(|(name, value)| Stmt::Let { name, value, span: span() }),
        expr(2).prop_map(Stmt::Expr),
        prop::option::of(expr(2)).prop_map(|value| Stmt::Return { value, span: span() }),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    prop_oneof![
        simple,
        (
            expr(1),
            prop::collection::vec(stmt(depth - 1), 0..3),
            prop::collection::vec(stmt(depth - 1), 0..2)
        )
            .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
                cond,
                then_branch,
                else_branch,
                span: span()
            }),
        (ident(), expr(1), prop::collection::vec(stmt(depth - 1), 0..3))
            .prop_map(|(var, iterable, body)| Stmt::For { var, iterable, body, span: span() }),
    ]
    .boxed()
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (ident(), prop::collection::vec(ident(), 0..3), prop::collection::vec(stmt(2), 0..5)),
        1..3,
    )
    .prop_map(|fns| Program {
        functions: fns
            .into_iter()
            .enumerate()
            .map(|(i, (name, params, body))| {
                let mut unique_params = params;
                unique_params.dedup();
                FnDecl {
                    // Ensure unique function names.
                    name: format!("{name}_{i}"),
                    params: unique_params,
                    body,
                    span: span(),
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn pretty_parse_roundtrip(p in program()) {
        let printed = pretty::program(&p);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        // Strict structural identity modulo spans: parse(pretty(ast)) == ast.
        prop_assert_eq!(reparsed.strip_spans(), p.strip_spans(), "printed:\n{}", printed);
        // And printing again must be a fixed point.
        prop_assert_eq!(pretty::program(&reparsed), printed);
    }

    #[test]
    fn interpreter_never_panics(p in program(), arg in -50i64..50) {
        // Run every function with the right arity; errors are fine, panics are not.
        for f in &p.functions {
            let args: Vec<Value> = f.params.iter().map(|_| Value::Int(arg)).collect();
            let mut interp = Interpreter::new(&p).with_fuel(20_000);
            let _ = interp.call(&mut NoHost, &f.name, args);
        }
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(src in "[ -~\n\t]{0,80}") {
        let _ = parse(&src);
    }
}
