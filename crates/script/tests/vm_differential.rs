//! Seeded differential testing: the bytecode VM must be observationally
//! identical to the tree-walking interpreter — same results, same errors
//! (including spans), same fuel consumption to the tick, same print output,
//! and the same host-call sequence.
//!
//! This suite uses its own small PRNG and AST generator so it runs
//! everywhere deterministically; `proptest_vm_diff.rs` layers shrinking
//! property tests over the same invariant in CI.

use lingua_script::ast::*;
use lingua_script::error::Span;
use lingua_script::{compile, parse, pretty, Host, Interpreter, ScriptError, Value, Vm};
use std::sync::Arc;

/// SplitMix64: tiny, seedable, and good enough to drive a program generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const VARS: &[&str] = &["a", "b", "x", "y", "z"];
const KEYS: &[&str] = &["k0", "k1", "k2"];
// A mix of real builtins, host specials, mutating forms, user functions,
// and names that resolve to nothing — unknown-function errors must match.
const CALLS: &[&str] = &[
    "len",
    "join",
    "sort",
    "trim",
    "upper",
    "typeof",
    "to_str",
    "abs",
    "keys",
    "contains",
    "split",
    "f0",
    "f1",
    "mystery",
    "push",
    "pop",
    "insert",
    "delete",
    "print",
    "call_llm",
    "call_module",
    "call_tool",
];

fn sp() -> Span {
    Span::default()
}

fn gen_expr(r: &mut Rng, depth: u32) -> Expr {
    let leaf_only = depth == 0;
    match if leaf_only { r.below(6) } else { r.below(12) } {
        0 => Expr::Null(sp()),
        1 => Expr::Bool(r.below(2) == 0, sp()),
        2 => Expr::Int(r.below(21) as i64 - 10, sp()),
        3 => Expr::Float((r.below(33) as f64 - 16.0) / 4.0, sp()),
        4 => Expr::Str(format!("s{}", r.below(4)), sp()),
        5 => Expr::Var(r.pick(VARS).to_string(), sp()),
        6 => {
            let n = r.below(3);
            Expr::List((0..n).map(|_| gen_expr(r, depth - 1)).collect(), sp())
        }
        7 => {
            let n = r.below(3);
            Expr::Map(
                (0..n).map(|_| (r.pick(KEYS).to_string(), gen_expr(r, depth - 1))).collect(),
                sp(),
            )
        }
        8 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Rem,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::And,
                BinOp::Or,
            ];
            Expr::Binary(
                *r.pick(&ops),
                Box::new(gen_expr(r, depth - 1)),
                Box::new(gen_expr(r, depth - 1)),
                sp(),
            )
        }
        9 => {
            let op = if r.below(2) == 0 { UnOp::Neg } else { UnOp::Not };
            Expr::Unary(op, Box::new(gen_expr(r, depth - 1)), sp())
        }
        10 => {
            let name = r.pick(CALLS).to_string();
            let argc = r.below(4);
            let mut args: Vec<Expr> = Vec::new();
            // Mutating forms want an lvalue-ish first argument most of the
            // time so the happy paths get real coverage, not just the
            // "target must be a variable" error.
            if matches!(name.as_str(), "push" | "pop" | "insert" | "delete") && r.below(4) > 0 {
                args.push(match r.below(3) {
                    0 => Expr::Var(r.pick(VARS).to_string(), sp()),
                    1 => Expr::Index(
                        Box::new(Expr::Var(r.pick(VARS).to_string(), sp())),
                        Box::new(gen_expr(r, 0)),
                        sp(),
                    ),
                    _ => gen_expr(r, depth - 1),
                });
            }
            while (args.len() as u64) < argc {
                args.push(gen_expr(r, depth - 1));
            }
            Expr::Call(name, args, sp())
        }
        _ => Expr::Index(Box::new(gen_expr(r, depth - 1)), Box::new(gen_expr(r, depth - 1)), sp()),
    }
}

fn gen_stmt(r: &mut Rng, depth: u32) -> Stmt {
    match if depth == 0 { r.below(5) } else { r.below(10) } {
        0 => Stmt::Let { name: r.pick(VARS).to_string(), value: gen_expr(r, 2), span: sp() },
        1 => Stmt::Assign {
            target: LValue::Var(r.pick(VARS).to_string()),
            value: gen_expr(r, 2),
            span: sp(),
        },
        2 => Stmt::Assign {
            target: LValue::Index(r.pick(VARS).to_string(), gen_expr(r, 1)),
            value: gen_expr(r, 2),
            span: sp(),
        },
        3 => Stmt::Expr(gen_expr(r, 2)),
        4 => Stmt::Return { value: (r.below(2) == 0).then(|| gen_expr(r, 2)), span: sp() },
        5 => Stmt::If {
            cond: gen_expr(r, 1),
            then_branch: gen_block(r, depth - 1),
            else_branch: if r.below(2) == 0 { gen_block(r, depth - 1) } else { vec![] },
            span: sp(),
        },
        6 => Stmt::While { cond: gen_expr(r, 1), body: gen_block(r, depth - 1), span: sp() },
        7 => Stmt::For {
            var: r.pick(VARS).to_string(),
            iterable: gen_expr(r, 1),
            body: gen_block(r, depth - 1),
            span: sp(),
        },
        8 => Stmt::Break(sp()),
        _ => Stmt::Continue(sp()),
    }
}

fn gen_block(r: &mut Rng, depth: u32) -> Vec<Stmt> {
    (0..r.below(3) + 1).map(|_| gen_stmt(r, depth)).collect()
}

fn gen_program(r: &mut Rng) -> Program {
    let f0 = FnDecl {
        name: "f0".into(),
        params: vec!["a".into(), "b".into()],
        body: gen_block(r, 2),
        span: sp(),
    };
    let f1 =
        FnDecl { name: "f1".into(), params: vec!["a".into()], body: gen_block(r, 2), span: sp() };
    // main seeds a couple of variables so generated reads often hit
    // something defined; the rest stay undefined on purpose.
    let mut body = vec![
        Stmt::Let { name: "x".into(), value: gen_expr(r, 2), span: sp() },
        Stmt::Let { name: "y".into(), value: gen_expr(r, 2), span: sp() },
    ];
    body.extend(gen_block(r, 3));
    let main = FnDecl { name: "main".into(), params: vec![], body, span: sp() };
    Program { functions: vec![f0, f1, main] }
}

/// Deterministic host that logs every call it receives.
#[derive(Default)]
struct RecordingHost {
    log: Vec<String>,
}

impl Host for RecordingHost {
    fn call_llm(&mut self, prompt: &str) -> Result<String, String> {
        self.log.push(format!("llm:{prompt}"));
        if prompt.len() % 7 == 3 {
            Err(format!("llm refused `{prompt}`"))
        } else {
            Ok(format!("L<{prompt}>"))
        }
    }

    fn call_module(&mut self, name: &str, input: Value) -> Result<Value, String> {
        self.log.push(format!("module:{name}:{input}"));
        Ok(Value::Str(format!("M<{name}:{input}>")))
    }

    fn call_tool(&mut self, name: &str, args: &[Value]) -> Result<Value, String> {
        self.log.push(format!("tool:{name}:{}", args.len()));
        Ok(Value::Int(args.len() as i64))
    }
}

/// Run one program through both engines and require full observational
/// equality. Returns the interpreter outcome for corpus statistics.
fn assert_equivalent(program: &Program, fuel: u64, label: &str) -> Result<Value, ScriptError> {
    let mut interp = Interpreter::new(program).with_fuel(fuel).with_max_depth(16);
    let mut ihost = RecordingHost::default();
    let i = interp.call(&mut ihost, "main", vec![]);

    let compiled = Arc::new(compile(program));
    let mut vm = Vm::new(compiled).with_fuel(fuel).with_max_depth(16);
    let mut vhost = RecordingHost::default();
    let v = vm.call(&mut vhost, "main", vec![]);

    assert_eq!(i, v, "{label}: result divergence\n{}", pretty::program(program));
    assert_eq!(
        interp.fuel_used(),
        vm.fuel_used(),
        "{label}: fuel divergence\n{}",
        pretty::program(program)
    );
    assert_eq!(interp.output, vm.output, "{label}: print divergence\n{}", pretty::program(program));
    assert_eq!(ihost.log, vhost.log, "{label}: host-call divergence\n{}", pretty::program(program));
    i
}

#[test]
fn random_programs_agree_between_interpreter_and_vm() {
    let mut ok = 0u32;
    let mut errs = 0u32;
    for seed in 0..600u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
        let program = gen_program(&mut rng);
        match assert_equivalent(&program, 3_000, &format!("seed {seed}")) {
            Ok(_) => ok += 1,
            Err(_) => errs += 1,
        }
    }
    // The corpus must genuinely exercise both sides of the contract.
    assert!(ok > 50, "corpus too error-heavy: only {ok} clean runs");
    assert!(errs > 50, "corpus too clean: only {errs} erroring runs");
}

#[test]
fn reparsed_programs_agree_with_real_spans() {
    // Printing and reparsing attaches genuine line/column spans, so this
    // variant also proves the compiler pins the same error spans the
    // interpreter reports (Result equality compares spans).
    let mut reparsed_count = 0u32;
    for seed in 0..300u64 {
        let mut rng = Rng(seed.wrapping_mul(0xd605_bbb5_8c8a_bc03) + 7);
        let program = gen_program(&mut rng);
        let printed = pretty::program(&program);
        let reparsed = match parse(&printed) {
            Ok(p) => p,
            Err(e) => panic!("pretty output failed to reparse: {e}\n{printed}"),
        };
        let _ = assert_equivalent(&reparsed, 3_000, &format!("reparsed seed {seed}"));
        reparsed_count += 1;
    }
    assert_eq!(reparsed_count, 300);
}

#[test]
fn fuel_exhaustion_is_tick_identical_at_every_budget() {
    // Sweep budgets across a looping program: at every cutoff point the two
    // engines must trap (or finish) identically with identical fuel use.
    let src = r#"
        fn main() {
            let s = 0;
            let i = 0;
            while i < 40 {
                i = i + 1;
                for x in [1, 2, 3] { s = s + x * i; }
                if i % 5 == 0 { s = s - len("abc"); }
            }
            return s;
        }
    "#;
    let program = parse(src).unwrap();
    let compiled = Arc::new(compile(&program));
    for budget in 1..400u64 {
        let mut interp = Interpreter::new(&program).with_fuel(budget);
        let i = interp.call(&mut lingua_script::NoHost, "main", vec![]);
        let mut vm = Vm::new(Arc::clone(&compiled)).with_fuel(budget);
        let v = vm.call(&mut lingua_script::NoHost, "main", vec![]);
        assert_eq!(i, v, "budget {budget}");
        assert_eq!(interp.fuel_used(), vm.fuel_used(), "budget {budget}");
    }
}

#[test]
fn recursion_traps_at_identical_depths() {
    let src = "fn f(n) { if n == 0 { return 0; } return f(n - 1); } fn main() { return f(100); }";
    let program = parse(src).unwrap();
    let compiled = Arc::new(compile(&program));
    for depth in 2..40usize {
        let mut interp = Interpreter::new(&program).with_max_depth(depth);
        let i = interp.call(&mut lingua_script::NoHost, "main", vec![]);
        let mut vm = Vm::new(Arc::clone(&compiled)).with_max_depth(depth);
        let v = vm.call(&mut lingua_script::NoHost, "main", vec![]);
        assert_eq!(i, v, "depth {depth}");
    }
}
