//! Tree-walking interpreter with a fuel budget and a host bridge.

use crate::ast::*;
use crate::builtins;
use crate::error::{ScriptError, Span};
use crate::value::Value;
use std::collections::HashMap;

/// The capabilities a running script gets from its embedding system.
///
/// In `lingua-core`, the executor implements `Host` so LLMGC modules can call
/// the (simulated) LLM, other modules in the pipeline, and registered external
/// tools — the composition §3.1 of the paper describes.
pub trait Host {
    /// `call_llm(prompt)` — ask the LLM for a free-text completion.
    fn call_llm(&mut self, prompt: &str) -> Result<String, String>;
    /// `call_module(name, input)` — invoke another module.
    fn call_module(&mut self, name: &str, input: Value) -> Result<Value, String>;
    /// `call_tool(name, args...)` — invoke a registered external tool.
    fn call_tool(&mut self, name: &str, args: &[Value]) -> Result<Value, String>;
}

/// A host that rejects all host calls — for pure scripts and tests.
pub struct NoHost;

impl Host for NoHost {
    fn call_llm(&mut self, _prompt: &str) -> Result<String, String> {
        Err("no LLM available in this context".into())
    }
    fn call_module(&mut self, _name: &str, _input: Value) -> Result<Value, String> {
        Err("no modules available in this context".into())
    }
    fn call_tool(&mut self, name: &str, _args: &[Value]) -> Result<Value, String> {
        Err(format!("no tool `{name}` available in this context"))
    }
}

/// Default fuel budget: generous for real modules, tight enough that an
/// accidental `while true {}` fails fast.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Default call-depth limit. Each interpreter call frame recurses on the
/// *host* stack (`call_function` → `run_block` → … → `call_function`), so
/// unbounded script recursion would overflow the host thread's stack and
/// abort the process — unwinding never happens and `catch_unwind` isolation
/// upstream is useless against it. 64 frames is far deeper than any
/// generated module calls and far shallower than what a default thread
/// stack can absorb.
pub const DEFAULT_MAX_DEPTH: usize = 64;

/// Control flow signal threaded through statement execution.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// A (re-usable) interpreter over one parsed program.
pub struct Interpreter<'p> {
    program: &'p Program,
    fuel_budget: u64,
    fuel: u64,
    max_depth: usize,
    depth: usize,
    /// Lines produced by `print(...)` during the last call.
    pub output: Vec<String>,
}

impl<'p> Interpreter<'p> {
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            fuel_budget: DEFAULT_FUEL,
            fuel: DEFAULT_FUEL,
            max_depth: DEFAULT_MAX_DEPTH,
            depth: 0,
            output: Vec::new(),
        }
    }

    /// Override the fuel budget (per `call`).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_budget = fuel;
        self
    }

    /// Override the call-depth limit (per `call`).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth.max(1);
        self
    }

    /// Fuel consumed by the last `call`.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_budget - self.fuel
    }

    /// Invoke a top-level function by name.
    pub fn call(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, ScriptError> {
        self.fuel = self.fuel_budget;
        self.depth = 0;
        self.output.clear();
        self.call_function(host, name, args, Span::default())
    }

    fn tick(&mut self) -> Result<(), ScriptError> {
        if self.fuel == 0 {
            return Err(ScriptError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn call_function(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
        span: Span,
    ) -> Result<Value, ScriptError> {
        // Trap runaway recursion before it overflows the host stack (an
        // abort, not an unwind — nothing upstream could catch it).
        if self.depth >= self.max_depth {
            return Err(ScriptError::RecursionLimit { depth: self.depth });
        }
        self.depth += 1;
        let result = self.call_function_frame(host, name, args, span);
        self.depth -= 1;
        result
    }

    fn call_function_frame(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
        span: Span,
    ) -> Result<Value, ScriptError> {
        let func = self
            .program
            .function(name)
            .ok_or_else(|| ScriptError::runtime(span, format!("unknown function `{name}`")))?;
        if func.params.len() != args.len() {
            return Err(ScriptError::runtime(
                span,
                format!(
                    "function `{name}` expects {} argument(s), got {}",
                    func.params.len(),
                    args.len()
                ),
            ));
        }
        let mut scope: HashMap<String, Value> = func.params.iter().cloned().zip(args).collect();
        // Clone the body statements' reference via raw indexing to avoid
        // borrowing issues: the program outlives the interpreter borrow.
        let body = func.body.clone();
        match self.run_block(host, &body, &mut scope)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Null),
        }
    }

    fn run_block(
        &mut self,
        host: &mut dyn Host,
        stmts: &[Stmt],
        scope: &mut HashMap<String, Value>,
    ) -> Result<Flow, ScriptError> {
        for stmt in stmts {
            match self.run_stmt(host, stmt, scope)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(
        &mut self,
        host: &mut dyn Host,
        stmt: &Stmt,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Flow, ScriptError> {
        self.tick()?;
        match stmt {
            Stmt::Let { name, value, .. } => {
                let v = self.eval(host, value, scope)?;
                scope.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value, span } => {
                let v = self.eval(host, value, scope)?;
                match target {
                    LValue::Var(name) => {
                        if !scope.contains_key(name) {
                            return Err(ScriptError::runtime(
                                *span,
                                format!("assignment to undeclared variable `{name}`"),
                            ));
                        }
                        scope.insert(name.clone(), v);
                    }
                    LValue::Index(name, index_expr) => {
                        let index = self.eval(host, index_expr, scope)?;
                        let container = scope.get_mut(name).ok_or_else(|| {
                            ScriptError::runtime(*span, format!("unknown variable `{name}`"))
                        })?;
                        assign_index(container, &index, v, *span)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(host, expr, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                let c = self.eval(host, cond, scope)?;
                if c.truthy() {
                    self.run_block(host, then_branch, scope)
                } else {
                    self.run_block(host, else_branch, scope)
                }
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.tick()?;
                    let c = self.eval(host, cond, scope)?;
                    if !c.truthy() {
                        break;
                    }
                    match self.run_block(host, body, scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iterable, body, span } => {
                let iter_value = self.eval(host, iterable, scope)?;
                let items: Vec<Value> = match iter_value {
                    Value::List(items) => items,
                    Value::Map(map) => map.keys().cloned().map(Value::Str).collect(),
                    Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                    other => {
                        return Err(ScriptError::runtime(
                            *span,
                            format!("cannot iterate a {}", other.type_name()),
                        ))
                    }
                };
                for item in items {
                    self.tick()?;
                    scope.insert(var.clone(), item);
                    match self.run_block(host, body, scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(expr) => self.eval(host, expr, scope)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
        }
    }

    fn eval(
        &mut self,
        host: &mut dyn Host,
        expr: &Expr,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value, ScriptError> {
        self.tick()?;
        match expr {
            Expr::Null(_) => Ok(Value::Null),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Int(i, _) => Ok(Value::Int(*i)),
            Expr::Float(f, _) => Ok(Value::Float(*f)),
            Expr::Str(s, _) => Ok(Value::Str(s.clone())),
            Expr::Var(name, span) => scope
                .get(name)
                .cloned()
                .ok_or_else(|| ScriptError::runtime(*span, format!("unknown variable `{name}`"))),
            Expr::List(items, _) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(host, item, scope)?);
                }
                Ok(Value::List(out))
            }
            Expr::Map(pairs, _) => {
                let mut out = std::collections::BTreeMap::new();
                for (k, v) in pairs {
                    let value = self.eval(host, v, scope)?;
                    out.insert(k.clone(), value);
                }
                Ok(Value::Map(out))
            }
            Expr::Unary(op, inner, span) => {
                let v = self.eval(host, inner, scope)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(ScriptError::runtime(
                            *span,
                            format!("cannot negate a {}", other.type_name()),
                        )),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            Expr::Binary(op, left, right, span) => {
                self.eval_binary(host, *op, left, right, *span, scope)
            }
            Expr::Call(name, args, span) => self.eval_call(host, name, args, *span, scope),
            Expr::Index(base, index, span) => {
                let b = self.eval(host, base, scope)?;
                let i = self.eval(host, index, scope)?;
                read_index(&b, &i, *span)
            }
        }
    }

    fn eval_binary(
        &mut self,
        host: &mut dyn Host,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        span: Span,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value, ScriptError> {
        // Short-circuiting logical operators.
        if op == BinOp::And {
            let l = self.eval(host, left, scope)?;
            if !l.truthy() {
                return Ok(Value::Bool(false));
            }
            let r = self.eval(host, right, scope)?;
            return Ok(Value::Bool(r.truthy()));
        }
        if op == BinOp::Or {
            let l = self.eval(host, left, scope)?;
            if l.truthy() {
                return Ok(Value::Bool(true));
            }
            let r = self.eval(host, right, scope)?;
            return Ok(Value::Bool(r.truthy()));
        }

        let l = self.eval(host, left, scope)?;
        let r = self.eval(host, right, scope)?;
        match op {
            BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
            BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
            BinOp::Add => add_values(&l, &r, span),
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => arith(op, &l, &r, span),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, &l, &r, span),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_call(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: &[Expr],
        span: Span,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value, ScriptError> {
        // Mutating special forms: the first argument must be an lvalue.
        match name {
            "push" | "pop" | "insert" | "delete" => {
                return self.eval_mutating_call(host, name, args, span, scope)
            }
            _ => {}
        }

        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(self.eval(host, arg, scope)?);
        }

        // 1. User-defined functions shadow builtins.
        if self.program.function(name).is_some() {
            return self.call_function(host, name, values, span);
        }

        // 2. Host bridge.
        match name {
            "call_llm" => {
                let prompt = values.first().and_then(|v| v.as_str()).ok_or_else(|| {
                    ScriptError::runtime(span, "call_llm expects a string prompt")
                })?;
                return host
                    .call_llm(prompt)
                    .map(Value::Str)
                    .map_err(|message| ScriptError::Host { message });
            }
            "call_module" => {
                if values.len() != 2 {
                    return Err(ScriptError::runtime(span, "call_module expects (name, input)"));
                }
                let module = values[0]
                    .as_str()
                    .ok_or_else(|| ScriptError::runtime(span, "module name must be a string"))?
                    .to_string();
                return host
                    .call_module(&module, values[1].clone())
                    .map_err(|message| ScriptError::Host { message });
            }
            "call_tool" => {
                let tool = values
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| ScriptError::runtime(span, "call_tool expects a tool name"))?
                    .to_string();
                return host
                    .call_tool(&tool, &values[1..])
                    .map_err(|message| ScriptError::Host { message });
            }
            "print" => {
                let line = values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
                self.output.push(line);
                return Ok(Value::Null);
            }
            _ => {}
        }

        // 3. Builtins.
        builtins::call(name, &values, span)
    }

    /// `push(list, v)`, `pop(list)`, `insert(map, k, v)`, `delete(map, k)` —
    /// mutate the container held by a variable (or one index level into it).
    fn eval_mutating_call(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: &[Expr],
        span: Span,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value, ScriptError> {
        let Some((target, rest)) = args.split_first() else {
            return Err(ScriptError::runtime(span, format!("{name} expects a container argument")));
        };
        let mut rest_values = Vec::with_capacity(rest.len());
        for arg in rest {
            rest_values.push(self.eval(host, arg, scope)?);
        }
        // Resolve the target to a mutable container reference.
        let (var, index) = match target {
            Expr::Var(v, _) => (v.clone(), None),
            Expr::Index(base, idx, _) => match &**base {
                Expr::Var(v, _) => {
                    let i = self.eval(host, idx, scope)?;
                    (v.clone(), Some(i))
                }
                _ => {
                    return Err(ScriptError::runtime(
                        span,
                        format!("{name} target must be a variable or `var[index]`"),
                    ))
                }
            },
            _ => {
                return Err(ScriptError::runtime(
                    span,
                    format!("{name} target must be a variable or `var[index]`"),
                ))
            }
        };
        let container = scope
            .get_mut(&var)
            .ok_or_else(|| ScriptError::runtime(span, format!("unknown variable `{var}`")))?;
        let slot: &mut Value = match &index {
            None => container,
            Some(i) => index_mut(container, i, span)?,
        };
        match (name, slot) {
            ("push", Value::List(items)) => {
                let v = rest_values
                    .first()
                    .cloned()
                    .ok_or_else(|| ScriptError::runtime(span, "push expects (list, value)"))?;
                items.push(v);
                Ok(Value::Null)
            }
            ("pop", Value::List(items)) => Ok(items.pop().unwrap_or(Value::Null)),
            ("insert", Value::Map(map)) => {
                let [k, v] = rest_values.as_slice() else {
                    return Err(ScriptError::runtime(span, "insert expects (map, key, value)"));
                };
                let key = k
                    .as_str()
                    .ok_or_else(|| ScriptError::runtime(span, "map keys must be strings"))?;
                map.insert(key.to_string(), v.clone());
                Ok(Value::Null)
            }
            ("delete", Value::Map(map)) => {
                let k = rest_values
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| ScriptError::runtime(span, "delete expects (map, key)"))?;
                Ok(map.remove(k).unwrap_or(Value::Null))
            }
            (_, other) => Err(ScriptError::runtime(
                span,
                format!("{name} cannot operate on a {}", other.type_name()),
            )),
        }
    }
}

fn read_index(base: &Value, index: &Value, span: Span) -> Result<Value, ScriptError> {
    match (base, index) {
        (Value::List(items), Value::Int(i)) => {
            let idx = normalize_index(*i, items.len());
            idx.and_then(|i| items.get(i))
                .cloned()
                .ok_or_else(|| ScriptError::runtime(span, format!("list index {i} out of bounds")))
        }
        (Value::Map(map), Value::Str(k)) => Ok(map.get(k).cloned().unwrap_or(Value::Null)),
        (Value::Str(s), Value::Int(i)) => {
            let chars: Vec<char> = s.chars().collect();
            let idx = normalize_index(*i, chars.len());
            idx.and_then(|i| chars.get(i)).map(|c| Value::Str(c.to_string())).ok_or_else(|| {
                ScriptError::runtime(span, format!("string index {i} out of bounds"))
            })
        }
        (b, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

fn index_mut<'v>(
    base: &'v mut Value,
    index: &Value,
    span: Span,
) -> Result<&'v mut Value, ScriptError> {
    match (base, index) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len();
            normalize_index(*i, len)
                .and_then(move |idx| items.get_mut(idx))
                .ok_or_else(|| ScriptError::runtime(span, format!("list index {i} out of bounds")))
        }
        (Value::Map(map), Value::Str(k)) => map
            .get_mut(k)
            .ok_or_else(|| ScriptError::runtime(span, format!("missing map key `{k}`"))),
        (b, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

fn assign_index(
    container: &mut Value,
    index: &Value,
    value: Value,
    span: Span,
) -> Result<(), ScriptError> {
    match (container, index) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len();
            let idx = normalize_index(*i, len).ok_or_else(|| {
                ScriptError::runtime(span, format!("list index {i} out of bounds"))
            })?;
            items[idx] = value;
            Ok(())
        }
        (Value::Map(map), Value::Str(k)) => {
            map.insert(k.clone(), value);
            Ok(())
        }
        (c, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index-assign {} with {}", c.type_name(), i.type_name()),
        )),
    }
}

/// Negative indices count from the end (Python-style).
fn normalize_index(i: i64, len: usize) -> Option<usize> {
    if i >= 0 {
        let idx = i as usize;
        (idx < len).then_some(idx)
    } else {
        let back = (-i) as usize;
        (back <= len).then(|| len - back)
    }
}

fn add_values(l: &Value, r: &Value, span: Span) -> Result<Value, ScriptError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
        // String + anything stringifies the other side (handy for prompts).
        (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
        (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
        (Value::List(a), Value::List(b)) => {
            let mut out = a.clone();
            out.extend(b.iter().cloned());
            Ok(Value::List(out))
        }
        (a, b) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float(x + y)),
            _ => Err(ScriptError::runtime(
                span,
                format!("cannot add {} and {}", a.type_name(), b.type_name()),
            )),
        },
    }
}

fn arith(op: BinOp, l: &Value, r: &Value, span: Span) -> Result<Value, ScriptError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(ScriptError::runtime(span, "division by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_div(*b)))
                }
            }
            BinOp::Rem => {
                if *b == 0 {
                    Err(ScriptError::runtime(span, "remainder by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_rem(*b)))
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => match op {
            BinOp::Sub => Ok(Value::Float(x - y)),
            BinOp::Mul => Ok(Value::Float(x * y)),
            BinOp::Div => {
                if y == 0.0 {
                    Err(ScriptError::runtime(span, "division by zero"))
                } else {
                    Ok(Value::Float(x / y))
                }
            }
            BinOp::Rem => Ok(Value::Float(x % y)),
            _ => unreachable!(),
        },
        _ => Err(ScriptError::runtime(
            span,
            format!("cannot apply `{}` to {} and {}", op.symbol(), l.type_name(), r.type_name()),
        )),
    }
}

fn compare(op: BinOp, l: &Value, r: &Value, span: Span) -> Result<Value, ScriptError> {
    let ord = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(x), Some(y)) => {
                x.partial_cmp(&y).ok_or_else(|| ScriptError::runtime(span, "cannot compare NaN"))?
            }
            _ => {
                return Err(ScriptError::runtime(
                    span,
                    format!(
                        "cannot compare {} and {} with `{}`",
                        l.type_name(),
                        r.type_name(),
                        op.symbol()
                    ),
                ))
            }
        },
    };
    let result = match op {
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    Ok(Value::Bool(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn run(src: &str, func: &str, args: Vec<Value>) -> Result<Value, ScriptError> {
        let program = parse(src).unwrap();
        Interpreter::new(&program).call(&mut NoHost, func, args)
    }

    fn run1(src: &str) -> Value {
        run(src, "main", vec![]).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run1("fn main() { return 1 + 2 * 3; }"), Value::Int(7));
        assert_eq!(run1("fn main() { return (1 + 2) * 3; }"), Value::Int(9));
        assert_eq!(run1("fn main() { return 7 / 2; }"), Value::Int(3));
        assert_eq!(run1("fn main() { return 7.0 / 2; }"), Value::Float(3.5));
        assert_eq!(run1("fn main() { return 7 % 3; }"), Value::Int(1));
        assert_eq!(run1("fn main() { return -3 + 1; }"), Value::Int(-2));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(run("fn main() { return 1 / 0; }", "main", vec![]).is_err());
        assert!(run("fn main() { return 1 % 0; }", "main", vec![]).is_err());
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(run1(r#"fn main() { return "a" + "b" + 1; }"#), Value::Str("ab1".into()));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run1("fn main() { return 1 < 2 && 2 <= 2; }"), Value::Bool(true));
        assert_eq!(run1(r#"fn main() { return "a" < "b"; }"#), Value::Bool(true));
        assert_eq!(run1("fn main() { return !(1 == 1.0); }"), Value::Bool(false));
        assert_eq!(run1("fn main() { return 1 > 2 || 3 > 2; }"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // Division by zero on the right is never evaluated.
        assert_eq!(run1("fn main() { return false && 1 / 0 == 1; }"), Value::Bool(false));
        assert_eq!(run1("fn main() { return true || 1 / 0 == 1; }"), Value::Bool(true));
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run1("fn main() { let x = 1; x = x + 5; return x; }"), Value::Int(6));
        // Assigning an undeclared variable fails.
        assert!(run("fn main() { y = 3; return y; }", "main", vec![]).is_err());
    }

    #[test]
    fn lists_and_maps() {
        assert_eq!(
            run1("fn main() { let xs = [1, 2, 3]; xs[1] = 9; return xs[1] + xs[-1]; }"),
            Value::Int(12)
        );
        assert_eq!(
            run1(r#"fn main() { let m = {"a": 1}; m["b"] = 2; return m["a"] + m["b"]; }"#),
            Value::Int(3)
        );
        // Missing map key reads as null.
        assert_eq!(run1(r#"fn main() { let m = {}; return m["nope"]; }"#), Value::Null);
        // Out-of-bounds list read errors.
        assert!(run("fn main() { let xs = [1]; return xs[5]; }", "main", vec![]).is_err());
    }

    #[test]
    fn push_pop_insert_delete() {
        assert_eq!(
            run1("fn main() { let xs = []; push(xs, 1); push(xs, 2); let last = pop(xs); return last + len(xs); }"),
            Value::Int(3)
        );
        assert_eq!(
            run1(
                r#"fn main() { let m = {}; insert(m, "k", 5); let v = delete(m, "k"); return v + len(m); }"#
            ),
            Value::Int(5)
        );
        // push into a nested container through one index level.
        assert_eq!(
            run1(r#"fn main() { let m = {"xs": []}; push(m["xs"], 7); return m["xs"][0]; }"#),
            Value::Int(7)
        );
        // push target must be an lvalue.
        assert!(run("fn main() { push([1], 2); return 0; }", "main", vec![]).is_err());
    }

    #[test]
    fn loops_and_control_flow() {
        assert_eq!(
            run1("fn main() { let s = 0; for x in [1, 2, 3, 4] { if x == 3 { continue; } s = s + x; } return s; }"),
            Value::Int(7)
        );
        assert_eq!(
            run1("fn main() { let s = 0; let i = 0; while true { i = i + 1; if i > 4 { break; } s = s + i; } return s; }"),
            Value::Int(10)
        );
        // Iterating a map yields keys; iterating a string yields chars.
        assert_eq!(
            run1(
                r#"fn main() { let ks = ""; for k in {"b": 1, "a": 2} { ks = ks + k; } return ks; }"#
            ),
            Value::Str("ab".into())
        );
        assert_eq!(
            run1(r#"fn main() { let n = 0; for c in "hey" { n = n + 1; } return n; }"#),
            Value::Int(3)
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        let src = r#"
            fn fib(n) {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(10); }
        "#;
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(55));
    }

    #[test]
    fn arity_mismatch_errors() {
        let err = run("fn f(a, b) { return a; } fn main() { return f(1); }", "main", vec![]);
        assert!(matches!(err, Err(ScriptError::Runtime { .. })));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let program = parse("fn main() { while true { } return 1; }").unwrap();
        let mut interp = Interpreter::new(&program).with_fuel(10_000);
        let err = interp.call(&mut NoHost, "main", vec![]);
        assert_eq!(err, Err(ScriptError::OutOfFuel));
        assert_eq!(interp.fuel_used(), 10_000);
    }

    #[test]
    fn unbounded_recursion_traps_instead_of_overflowing_the_stack() {
        // `f` never consumes enough fuel per frame for OutOfFuel to fire
        // before the host stack would blow; the depth limit must trap first.
        let program = parse("fn f(n) { return f(n + 1); } fn main() { return f(0); }").unwrap();
        let mut interp = Interpreter::new(&program);
        let err = interp.call(&mut NoHost, "main", vec![]);
        assert_eq!(err, Err(ScriptError::RecursionLimit { depth: DEFAULT_MAX_DEPTH }));
        assert_eq!(err.unwrap_err().kind(), "recursion");
    }

    #[test]
    fn depth_resets_between_calls_and_legal_recursion_fits() {
        let src = r#"
            fn down(n) { if n == 0 { return 0; } return down(n - 1); }
            fn main() { return down(40); }
        "#;
        let program = parse(src).unwrap();
        let mut interp = Interpreter::new(&program);
        for _ in 0..5 {
            // 41 frames fit under the 64 limit; the depth counter resets so
            // repeated calls do not accumulate toward the trap.
            assert_eq!(interp.call(&mut NoHost, "main", vec![]).unwrap(), Value::Int(0));
        }
        // A tightened limit turns the same program into a trap.
        let mut tight = Interpreter::new(&program).with_max_depth(16);
        assert_eq!(
            tight.call(&mut NoHost, "main", vec![]),
            Err(ScriptError::RecursionLimit { depth: 16 })
        );
    }

    #[test]
    fn fuel_resets_between_calls() {
        let program = parse("fn main() { return 1; }").unwrap();
        let mut interp = Interpreter::new(&program).with_fuel(100);
        for _ in 0..10 {
            assert_eq!(interp.call(&mut NoHost, "main", vec![]).unwrap(), Value::Int(1));
        }
    }

    #[test]
    fn print_collects_output() {
        let program = parse(r#"fn main() { print("x =", 1); print([2]); return null; }"#).unwrap();
        let mut interp = Interpreter::new(&program);
        interp.call(&mut NoHost, "main", vec![]).unwrap();
        assert_eq!(interp.output, vec!["x = 1", "[2]"]);
    }

    #[test]
    fn host_calls_reach_the_host() {
        struct EchoHost;
        impl Host for EchoHost {
            fn call_llm(&mut self, prompt: &str) -> Result<String, String> {
                Ok(format!("echo:{prompt}"))
            }
            fn call_module(&mut self, name: &str, input: Value) -> Result<Value, String> {
                Ok(Value::Str(format!("{name}<{input}>")))
            }
            fn call_tool(&mut self, _name: &str, args: &[Value]) -> Result<Value, String> {
                Ok(Value::Int(args.len() as i64))
            }
        }
        let src = r#"
            fn main() {
                let a = call_llm("hi");
                let b = call_module("upper", "x");
                let c = call_tool("count", 1, 2, 3);
                return a + "|" + b + "|" + c;
            }
        "#;
        let program = parse(src).unwrap();
        let result = Interpreter::new(&program).call(&mut EchoHost, "main", vec![]).unwrap();
        assert_eq!(result, Value::Str("echo:hi|upper<x>|3".into()));
    }

    #[test]
    fn no_host_rejects_host_calls() {
        let err = run(r#"fn main() { return call_llm("hi"); }"#, "main", vec![]);
        assert!(matches!(err, Err(ScriptError::Host { .. })));
    }

    #[test]
    fn unknown_function_and_variable_errors() {
        assert!(run("fn main() { return nope(); }", "main", vec![]).is_err());
        assert!(run("fn main() { return nope; }", "main", vec![]).is_err());
    }

    #[test]
    fn user_functions_shadow_builtins() {
        let src = "fn len(x) { return 42; } fn main() { return len([1]); }";
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(42));
    }

    #[test]
    fn arguments_are_passed_by_value() {
        let src = r#"
            fn mutate(xs) { push(xs, 99); return xs; }
            fn main() { let a = [1]; mutate(a); return len(a); }
        "#;
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(1));
    }
}
