//! Recursive-descent parser with precedence-climbing expressions.

use crate::ast::*;
use crate::error::{ScriptError, Span};
use crate::token::{Token, TokenKind};

/// Parse a token stream (from [`crate::lexer::lex`]) into a [`Program`].
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, ScriptError> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while !parser.at(&TokenKind::Eof) {
        functions.push(parser.fn_decl()?);
    }
    Ok(Program { functions })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn current(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.current().kind == kind
    }

    fn bump(&mut self) -> Token {
        let tok = self.current().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ScriptError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.current().kind)))
        }
    }

    fn error(&self, message: impl Into<String>) -> ScriptError {
        ScriptError::Parse { span: self.current().span, message: message.into() }
    }

    fn ident(&mut self) -> Result<(String, Span), ScriptError> {
        match self.bump() {
            Token { kind: TokenKind::Ident(name), span } => Ok((name, span)),
            tok => Err(ScriptError::Parse {
                span: tok.span,
                message: format!("expected identifier, found {:?}", tok.kind),
            }),
        }
    }

    // -- declarations -------------------------------------------------------

    fn fn_decl(&mut self) -> Result<FnDecl, ScriptError> {
        let start = self.expect(TokenKind::Fn)?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?.0);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(FnDecl { name, params, body, span: start.merge(end) })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        match &self.current().kind {
            TokenKind::Let => self.let_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => self.return_stmt(),
            TokenKind::Break => {
                let span = self.bump().span;
                self.expect(TokenKind::Semicolon)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Continue => {
                let span = self.bump().span;
                self.expect(TokenKind::Semicolon)?;
                Ok(Stmt::Continue(span))
            }
            _ => self.expr_or_assign_stmt(),
        }
    }

    fn let_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let start = self.bump().span; // let
        let (name, _) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let value = self.expression()?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(Stmt::Let { name, value, span: start.merge(end) })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let start = self.bump().span; // if
        let cond = self.expression()?;
        let then_branch = self.block()?;
        let mut else_branch = Vec::new();
        if self.at(&TokenKind::Else) {
            self.bump();
            if self.at(&TokenKind::If) {
                // `else if ...` — nest a single If statement.
                else_branch.push(self.if_stmt()?);
            } else {
                else_branch = self.block()?;
            }
        }
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt::If { cond, then_branch, else_branch, span: start.merge(end) })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let start = self.bump().span;
        let cond = self.expression()?;
        let body = self.block()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt::While { cond, body, span: start.merge(end) })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let start = self.bump().span;
        let (var, _) = self.ident()?;
        self.expect(TokenKind::In)?;
        let iterable = self.expression()?;
        let body = self.block()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt::For { var, iterable, body, span: start.merge(end) })
    }

    fn return_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let start = self.bump().span;
        let value = if self.at(&TokenKind::Semicolon) { None } else { Some(self.expression()?) };
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(Stmt::Return { value, span: start.merge(end) })
    }

    /// Either `target = expr;` or a bare expression statement.
    fn expr_or_assign_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let expr = self.expression()?;
        if self.at(&TokenKind::Assign) {
            self.bump();
            let value = self.expression()?;
            let end = self.expect(TokenKind::Semicolon)?.span;
            let span = expr.span().merge(end);
            let target = match expr {
                Expr::Var(name, _) => LValue::Var(name),
                Expr::Index(base, index, _) => match *base {
                    Expr::Var(name, _) => LValue::Index(name, *index),
                    _ => {
                        return Err(ScriptError::Parse {
                            span,
                            message: "only `name[...]` can be assigned".into(),
                        })
                    }
                },
                _ => {
                    return Err(ScriptError::Parse {
                        span,
                        message: "invalid assignment target".into(),
                    })
                }
            };
            Ok(Stmt::Assign { target, value, span })
        } else {
            self.expect(TokenKind::Semicolon)?;
            Ok(Stmt::Expr(expr))
        }
    }

    // -- expressions ---------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ScriptError> {
        self.binary_expr(0)
    }

    fn peek_binop(&self) -> Option<BinOp> {
        Some(match self.current().kind {
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Percent => BinOp::Rem,
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::AndAnd => BinOp::And,
            TokenKind::OrOr => BinOp::Or,
            _ => return None,
        })
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ScriptError> {
        let mut left = self.unary_expr()?;
        while let Some(op) = self.peek_binop() {
            if op.precedence() < min_prec {
                break;
            }
            self.bump();
            let right = self.binary_expr(op.precedence() + 1)?;
            let span = left.span().merge(right.span());
            left = Expr::Binary(op, Box::new(left), Box::new(right), span);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ScriptError> {
        match self.current().kind {
            TokenKind::Minus => {
                let start = self.bump().span;
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span());
                // Fold a negated numeric literal into the literal: `-5` is
                // the constant -5, not a negation of 5. The printer emits
                // negative constants as `-5`, so this keeps
                // `parse(pretty(ast)) == ast` for them.
                Ok(match inner {
                    Expr::Int(v, _) => Expr::Int(v.wrapping_neg(), span),
                    Expr::Float(v, _) => Expr::Float(-v, span),
                    other => Expr::Unary(UnOp::Neg, Box::new(other), span),
                })
            }
            TokenKind::Bang => {
                let start = self.bump().span;
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span());
                Ok(Expr::Unary(UnOp::Not, Box::new(inner), span))
            }
            _ => self.postfix_expr(),
        }
    }

    /// Primary expression followed by any number of `[index]` suffixes.
    fn postfix_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = self.primary_expr()?;
        while self.at(&TokenKind::LBracket) {
            self.bump();
            let index = self.expression()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            let span = expr.span().merge(end);
            expr = Expr::Index(Box::new(expr), Box::new(index), span);
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, ScriptError> {
        let tok = self.bump();
        match tok.kind {
            TokenKind::Null => Ok(Expr::Null(tok.span)),
            TokenKind::True => Ok(Expr::Bool(true, tok.span)),
            TokenKind::False => Ok(Expr::Bool(false, tok.span)),
            TokenKind::Int(v) => Ok(Expr::Int(v, tok.span)),
            TokenKind::Float(v) => Ok(Expr::Float(v, tok.span)),
            TokenKind::Str(s) => Ok(Expr::Str(s, tok.span)),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if self.at(&TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::Call(name, args, tok.span.merge(end)))
                } else {
                    Ok(Expr::Var(name, tok.span))
                }
            }
            TokenKind::LParen => {
                let inner = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                Ok(Expr::List(items, tok.span.merge(end)))
            }
            TokenKind::LBrace => {
                let mut pairs = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        let key = match self.bump() {
                            Token { kind: TokenKind::Str(s), .. } => s,
                            Token { kind: TokenKind::Ident(s), .. } => s,
                            other => {
                                return Err(ScriptError::Parse {
                                    span: other.span,
                                    message: "map keys must be strings or identifiers".into(),
                                })
                            }
                        };
                        self.expect(TokenKind::Colon)?;
                        pairs.push((key, self.expression()?));
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(Expr::Map(pairs, tok.span.merge(end)))
            }
            other => Err(ScriptError::Parse {
                span: tok.span,
                message: format!("unexpected token {other:?} in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parses_a_simple_function() {
        let p = parse("fn main() { return 1 + 2 * 3; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "main");
        assert!(f.params.is_empty());
        // Precedence: 1 + (2 * 3)
        match &f.body[0] {
            Stmt::Return { value: Some(Expr::Binary(BinOp::Add, _, right, _)), .. } => {
                assert!(matches!(**right, Expr::Binary(BinOp::Mul, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_all_statement_kinds() {
        let src = r#"
            fn demo(items) {
                let total = 0;
                let m = {"a": 1, b: 2};
                for item in items {
                    if item > 10 {
                        total = total + item;
                    } else if item < 0 {
                        continue;
                    } else {
                        break;
                    }
                }
                while total > 100 {
                    total = total - 1;
                }
                m["c"] = 3;
                print(total);
                return total;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.len(), 7);
    }

    #[test]
    fn else_if_nests() {
        let p = parse(
            "fn f(x) { if x > 1 { return 1; } else if x > 0 { return 0; } else { return -1; } }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn index_chains_and_assignment() {
        let p = parse("fn f(m) { let x = m[\"k\"][0]; m[\"k\"] = [1]; return x; }").unwrap();
        match &p.functions[0].body[1] {
            Stmt::Assign { target: LValue::Index(name, _), .. } => assert_eq!(name, "m"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_assignment_targets() {
        assert!(parse("fn f() { 1 = 2; }").is_err());
        assert!(parse("fn f(m) { m[\"a\"][0] = 1; }").is_err()); // only one index level
        assert!(parse("fn f() { f() = 2; }").is_err());
    }

    #[test]
    fn rejects_unclosed_constructs() {
        assert!(parse("fn f() {").is_err());
        assert!(parse("fn f( { }").is_err());
        assert!(parse("fn f() { let x = ; }").is_err());
        assert!(parse("fn f() { return [1, 2; }").is_err());
    }

    #[test]
    fn logical_operators_have_lowest_precedence() {
        let p = parse("fn f(a, b) { return a > 1 && b < 2 || a == b; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return { value: Some(Expr::Binary(BinOp::Or, left, _, _)), .. } => {
                assert!(matches!(**left, Expr::Binary(BinOp::And, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_operators() {
        let p = parse("fn f(x) { return -x + !false; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return { value: Some(Expr::Binary(BinOp::Add, left, right, _)), .. } => {
                assert!(matches!(**left, Expr::Unary(UnOp::Neg, _, _)));
                assert!(matches!(**right, Expr::Unary(UnOp::Not, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_literals_fold_into_constants() {
        let p = parse("fn f(x) { return -5 + -2.5 - -x; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return { value: Some(Expr::Binary(BinOp::Sub, left, right, _)), .. } => {
                match &**left {
                    Expr::Binary(BinOp::Add, l, r, _) => {
                        assert!(matches!(**l, Expr::Int(-5, _)));
                        assert!(matches!(**r, Expr::Float(f, _) if f == -2.5));
                    }
                    other => panic!("unexpected {other:?}"),
                }
                // Negation of a non-literal stays a unary expression.
                assert!(matches!(**right, Expr::Unary(UnOp::Neg, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = parse("fn f() {\n    let x = ;\n}").unwrap_err();
        assert!(err.to_string().contains("line 2, col 13"), "{err}");
    }

    #[test]
    fn multiple_functions() {
        let p = parse("fn a() { return 1; } fn b() { return a(); }").unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.function("a").is_some());
        assert!(p.function("b").is_some());
    }

    #[test]
    fn empty_collections() {
        let p = parse("fn f() { let a = []; let b = {}; return a; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Let { value: Expr::List(items, _), .. } => assert!(items.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
