//! # lingua-script — MangaScript
//!
//! A small, dynamically-typed, interpreted language. In the Lingua Manga
//! reproduction this is the language that **LLM-generated code (LLMGC)
//! modules** are written in: the simulated LLM emits MangaScript programs,
//! the `lingua-core` Validator executes them on test cases, observes real
//! failures, and drives the suggest-and-regenerate repair loop from §3.2 of
//! the paper.
//!
//! Design goals:
//!
//! * **Real execution** — a tree-walking interpreter with a *fuel* budget so
//!   buggy generated code (infinite loops included) is safely bounded; fuel
//!   exhaustion is the paper's validation "timeout".
//! * **Host bridge** — programs can `call_llm(prompt)`, `call_module(name,
//!   input)`, and `call_tool(name, args...)`, which is how LLMGC modules use
//!   the LLM as an external tool and compose with other modules (§3.1).
//! * **Printable ASTs** — [`pretty`] renders any program back to source, so
//!   generated code is inspectable and `parse ∘ pretty` is the identity
//!   (property-tested).
//!
//! ## Example
//!
//! ```
//! use lingua_script::{parse, Interpreter, NoHost, Value};
//!
//! let program = parse(r#"
//!     fn double_positive(xs) {
//!         let out = [];
//!         for x in xs {
//!             if x > 0 { push(out, x * 2); }
//!         }
//!         return out;
//!     }
//! "#).unwrap();
//! let mut interp = Interpreter::new(&program);
//! let result = interp
//!     .call(&mut NoHost, "double_positive", vec![Value::List(vec![
//!         Value::Int(3), Value::Int(-1), Value::Int(5),
//!     ])])
//!     .unwrap();
//! assert_eq!(result, Value::List(vec![Value::Int(6), Value::Int(10)]));
//! ```

pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod value;
pub mod vm;

pub use ast::{BinOp, Expr, FnDecl, Program, Stmt, UnOp};
pub use bytecode::CompiledScript;
pub use compile::{compile, source_fingerprint, CompileCache};
pub use error::{ScriptError, Span};
pub use interp::{Host, Interpreter, NoHost, DEFAULT_FUEL, DEFAULT_MAX_DEPTH};
pub use value::Value;
pub use vm::Vm;

/// Parse MangaScript source into a [`Program`].
pub fn parse(source: &str) -> Result<Program, ScriptError> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens)
}
