//! The builtin function library available to every MangaScript program.
//!
//! String-similarity builtins delegate to `lingua-ml`'s implementations so
//! generated code and the ML substrate agree on semantics.

use crate::error::{ScriptError, Span};
use crate::value::Value;
use lingua_ml::textsim;

fn err(span: Span, message: impl Into<String>) -> ScriptError {
    ScriptError::runtime(span, message)
}

fn want_str<'a>(
    name: &str,
    args: &'a [Value],
    i: usize,
    span: Span,
) -> Result<&'a str, ScriptError> {
    args.get(i)
        .and_then(|v| v.as_str())
        .ok_or_else(|| err(span, format!("{name}: argument {} must be a string", i + 1)))
}

fn want_int(name: &str, args: &[Value], i: usize, span: Span) -> Result<i64, ScriptError> {
    args.get(i)
        .and_then(|v| v.as_int())
        .ok_or_else(|| err(span, format!("{name}: argument {} must be an int", i + 1)))
}

fn want_num(name: &str, args: &[Value], i: usize, span: Span) -> Result<f64, ScriptError> {
    args.get(i)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| err(span, format!("{name}: argument {} must be a number", i + 1)))
}

fn arity(name: &str, args: &[Value], n: usize, span: Span) -> Result<(), ScriptError> {
    if args.len() != n {
        Err(err(span, format!("{name} expects {n} argument(s), got {}", args.len())))
    } else {
        Ok(())
    }
}

/// Dispatch a builtin by name. Returns a runtime error for unknown names.
pub fn call(name: &str, args: &[Value], span: Span) -> Result<Value, ScriptError> {
    match name {
        // -- inspection -----------------------------------------------------
        "len" => {
            arity(name, args, 1, span)?;
            let n = match &args[0] {
                Value::Str(s) => s.chars().count(),
                Value::List(items) => items.len(),
                Value::Map(m) => m.len(),
                other => {
                    return Err(err(span, format!("len: cannot measure a {}", other.type_name())))
                }
            };
            Ok(Value::Int(n as i64))
        }
        "typeof" => {
            arity(name, args, 1, span)?;
            Ok(Value::Str(args[0].type_name().to_string()))
        }
        "is_null" => {
            arity(name, args, 1, span)?;
            Ok(Value::Bool(matches!(args[0], Value::Null)))
        }

        // -- strings ----------------------------------------------------------
        "lower" => {
            arity(name, args, 1, span)?;
            Ok(Value::Str(want_str(name, args, 0, span)?.to_lowercase()))
        }
        "upper" => {
            arity(name, args, 1, span)?;
            Ok(Value::Str(want_str(name, args, 0, span)?.to_uppercase()))
        }
        "trim" => {
            arity(name, args, 1, span)?;
            Ok(Value::Str(want_str(name, args, 0, span)?.trim().to_string()))
        }
        "capitalize" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            let mut chars = s.chars();
            let out = match chars.next() {
                Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            };
            Ok(Value::Str(out))
        }
        "split" => {
            arity(name, args, 2, span)?;
            let s = want_str(name, args, 0, span)?;
            let sep = want_str(name, args, 1, span)?;
            let parts: Vec<Value> = if sep.is_empty() {
                s.split_whitespace().map(|p| Value::Str(p.to_string())).collect()
            } else {
                s.split(sep).map(|p| Value::Str(p.to_string())).collect()
            };
            Ok(Value::List(parts))
        }
        "join" => {
            arity(name, args, 2, span)?;
            let items = args[0]
                .as_list()
                .ok_or_else(|| err(span, "join: first argument must be a list"))?;
            let sep = want_str(name, args, 1, span)?;
            let parts: Vec<String> = items.iter().map(|v| v.to_string()).collect();
            Ok(Value::Str(parts.join(sep)))
        }
        "contains" => {
            arity(name, args, 2, span)?;
            match (&args[0], &args[1]) {
                (Value::Str(hay), Value::Str(needle)) => {
                    Ok(Value::Bool(hay.contains(needle.as_str())))
                }
                (Value::List(items), needle) => {
                    Ok(Value::Bool(items.iter().any(|v| v.loose_eq(needle))))
                }
                (Value::Map(map), Value::Str(key)) => Ok(Value::Bool(map.contains_key(key))),
                (a, b) => Err(err(
                    span,
                    format!("contains: unsupported types {} / {}", a.type_name(), b.type_name()),
                )),
            }
        }
        "starts_with" => {
            arity(name, args, 2, span)?;
            Ok(Value::Bool(
                want_str(name, args, 0, span)?.starts_with(want_str(name, args, 1, span)?),
            ))
        }
        "ends_with" => {
            arity(name, args, 2, span)?;
            Ok(Value::Bool(
                want_str(name, args, 0, span)?.ends_with(want_str(name, args, 1, span)?),
            ))
        }
        "replace" => {
            arity(name, args, 3, span)?;
            let s = want_str(name, args, 0, span)?;
            let from = want_str(name, args, 1, span)?;
            let to = want_str(name, args, 2, span)?;
            Ok(Value::Str(s.replace(from, to)))
        }
        "substr" => {
            arity(name, args, 3, span)?;
            let s: Vec<char> = want_str(name, args, 0, span)?.chars().collect();
            let start = want_int(name, args, 1, span)?.max(0) as usize;
            let count = want_int(name, args, 2, span)?.max(0) as usize;
            let out: String = s.iter().skip(start).take(count).collect();
            Ok(Value::Str(out))
        }
        "index_of" => {
            arity(name, args, 2, span)?;
            let s = want_str(name, args, 0, span)?;
            let sub = want_str(name, args, 1, span)?;
            match s.find(sub) {
                // Return a character index, not a byte index.
                Some(byte) => Ok(Value::Int(s[..byte].chars().count() as i64)),
                None => Ok(Value::Int(-1)),
            }
        }
        "chars" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            Ok(Value::List(s.chars().map(|c| Value::Str(c.to_string())).collect()))
        }
        "is_alpha" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            Ok(Value::Bool(!s.is_empty() && s.chars().all(|c| c.is_alphabetic())))
        }
        "is_digit" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            Ok(Value::Bool(!s.is_empty() && s.chars().all(|c| c.is_ascii_digit())))
        }
        "is_upper" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            Ok(Value::Bool(s.chars().next().map(|c| c.is_uppercase()).unwrap_or(false)))
        }

        // -- text analysis (shared with lingua-ml) -----------------------------
        "tokenize" => {
            arity(name, args, 1, span)?;
            let s = want_str(name, args, 0, span)?;
            Ok(Value::List(textsim::tokens(s).into_iter().map(Value::Str).collect()))
        }
        "levenshtein" => {
            arity(name, args, 2, span)?;
            Ok(Value::Int(textsim::levenshtein(
                want_str(name, args, 0, span)?,
                want_str(name, args, 1, span)?,
            ) as i64))
        }
        "levenshtein_sim" => {
            arity(name, args, 2, span)?;
            Ok(Value::Float(textsim::levenshtein_sim(
                want_str(name, args, 0, span)?,
                want_str(name, args, 1, span)?,
            )))
        }
        "jaro_winkler" => {
            arity(name, args, 2, span)?;
            Ok(Value::Float(textsim::jaro_winkler(
                want_str(name, args, 0, span)?,
                want_str(name, args, 1, span)?,
            )))
        }
        "jaccard" => {
            arity(name, args, 2, span)?;
            Ok(Value::Float(textsim::jaccard_tokens(
                want_str(name, args, 0, span)?,
                want_str(name, args, 1, span)?,
            )))
        }
        "overlap" => {
            arity(name, args, 2, span)?;
            Ok(Value::Float(textsim::overlap_tokens(
                want_str(name, args, 0, span)?,
                want_str(name, args, 1, span)?,
            )))
        }

        // -- numbers ----------------------------------------------------------
        "abs" => {
            arity(name, args, 1, span)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(err(span, format!("abs: cannot take abs of {}", other.type_name()))),
            }
        }
        "min" => {
            arity(name, args, 2, span)?;
            let (a, b) = (want_num(name, args, 0, span)?, want_num(name, args, 1, span)?);
            Ok(number(a.min(b), &args[0], &args[1]))
        }
        "max" => {
            arity(name, args, 2, span)?;
            let (a, b) = (want_num(name, args, 0, span)?, want_num(name, args, 1, span)?);
            Ok(number(a.max(b), &args[0], &args[1]))
        }
        "round" => {
            arity(name, args, 1, span)?;
            Ok(Value::Int(want_num(name, args, 0, span)?.round() as i64))
        }
        "floor" => {
            arity(name, args, 1, span)?;
            Ok(Value::Int(want_num(name, args, 0, span)?.floor() as i64))
        }
        "ceil" => {
            arity(name, args, 1, span)?;
            Ok(Value::Int(want_num(name, args, 0, span)?.ceil() as i64))
        }
        "sqrt" => {
            arity(name, args, 1, span)?;
            let x = want_num(name, args, 0, span)?;
            if x < 0.0 {
                return Err(err(span, "sqrt of a negative number"));
            }
            Ok(Value::Float(x.sqrt()))
        }

        // -- conversions -------------------------------------------------------
        "to_str" => {
            arity(name, args, 1, span)?;
            Ok(Value::Str(args[0].to_string()))
        }
        "to_int" => {
            arity(name, args, 1, span)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| err(span, format!("to_int: cannot parse `{s}`"))),
                other => Err(err(span, format!("to_int: cannot convert {}", other.type_name()))),
            }
        }
        "to_float" => {
            arity(name, args, 1, span)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Float(*i as f64)),
                Value::Float(f) => Ok(Value::Float(*f)),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| err(span, format!("to_float: cannot parse `{s}`"))),
                other => Err(err(span, format!("to_float: cannot convert {}", other.type_name()))),
            }
        }
        "parse_int" => {
            arity(name, args, 1, span)?;
            let parsed = args[0].as_str().and_then(|s| s.trim().parse::<i64>().ok());
            Ok(parsed.map(Value::Int).unwrap_or(Value::Null))
        }
        "parse_float" => {
            arity(name, args, 1, span)?;
            let parsed = args[0].as_str().and_then(|s| s.trim().parse::<f64>().ok());
            Ok(parsed.map(Value::Float).unwrap_or(Value::Null))
        }

        // -- lists -------------------------------------------------------------
        "range" => {
            let (lo, hi) = match args.len() {
                1 => (0, want_int(name, args, 0, span)?),
                2 => (want_int(name, args, 0, span)?, want_int(name, args, 1, span)?),
                n => return Err(err(span, format!("range expects 1 or 2 arguments, got {n}"))),
            };
            Ok(Value::List((lo..hi).map(Value::Int).collect()))
        }
        "sort" => {
            arity(name, args, 1, span)?;
            let mut items = args[0]
                .as_list()
                .ok_or_else(|| err(span, "sort: argument must be a list"))?
                .to_vec();
            items.sort_by(|a, b| match (a, b) {
                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                _ => a.as_f64().partial_cmp(&b.as_f64()).unwrap_or(std::cmp::Ordering::Equal),
            });
            Ok(Value::List(items))
        }
        "reverse" => {
            arity(name, args, 1, span)?;
            match &args[0] {
                Value::List(items) => Ok(Value::List(items.iter().rev().cloned().collect())),
                Value::Str(s) => Ok(Value::Str(s.chars().rev().collect())),
                other => Err(err(span, format!("reverse: cannot reverse a {}", other.type_name()))),
            }
        }
        "slice" => {
            arity(name, args, 3, span)?;
            let items = args[0]
                .as_list()
                .ok_or_else(|| err(span, "slice: first argument must be a list"))?;
            let start = want_int(name, args, 1, span)?.max(0) as usize;
            let end = (want_int(name, args, 2, span)?.max(0) as usize).min(items.len());
            let out = if start >= end { vec![] } else { items[start..end].to_vec() };
            Ok(Value::List(out))
        }
        "concat" => {
            arity(name, args, 2, span)?;
            let a =
                args[0].as_list().ok_or_else(|| err(span, "concat: arguments must be lists"))?;
            let b =
                args[1].as_list().ok_or_else(|| err(span, "concat: arguments must be lists"))?;
            let mut out = a.to_vec();
            out.extend(b.iter().cloned());
            Ok(Value::List(out))
        }
        "unique" => {
            arity(name, args, 1, span)?;
            let items =
                args[0].as_list().ok_or_else(|| err(span, "unique: argument must be a list"))?;
            let mut out: Vec<Value> = Vec::new();
            for item in items {
                if !out.iter().any(|v| v.loose_eq(item)) {
                    out.push(item.clone());
                }
            }
            Ok(Value::List(out))
        }
        "sum" => {
            arity(name, args, 1, span)?;
            let items =
                args[0].as_list().ok_or_else(|| err(span, "sum: argument must be a list"))?;
            let mut acc = 0.0;
            let mut all_int = true;
            for item in items {
                match item {
                    Value::Int(i) => acc += *i as f64,
                    Value::Float(f) => {
                        acc += f;
                        all_int = false;
                    }
                    other => {
                        return Err(err(span, format!("sum: cannot add a {}", other.type_name())))
                    }
                }
            }
            Ok(if all_int { Value::Int(acc as i64) } else { Value::Float(acc) })
        }

        // -- maps --------------------------------------------------------------
        "keys" => {
            arity(name, args, 1, span)?;
            let map = args[0].as_map().ok_or_else(|| err(span, "keys: argument must be a map"))?;
            Ok(Value::List(map.keys().cloned().map(Value::Str).collect()))
        }
        "values" => {
            arity(name, args, 1, span)?;
            let map =
                args[0].as_map().ok_or_else(|| err(span, "values: argument must be a map"))?;
            Ok(Value::List(map.values().cloned().collect()))
        }
        "has_key" => {
            arity(name, args, 2, span)?;
            let map = args[0]
                .as_map()
                .ok_or_else(|| err(span, "has_key: first argument must be a map"))?;
            Ok(Value::Bool(map.contains_key(want_str(name, args, 1, span)?)))
        }
        "get_or" => {
            arity(name, args, 3, span)?;
            let map = args[0]
                .as_map()
                .ok_or_else(|| err(span, "get_or: first argument must be a map"))?;
            let key = want_str(name, args, 1, span)?;
            Ok(map.get(key).cloned().unwrap_or_else(|| args[2].clone()))
        }

        other => Err(err(span, format!("unknown function `{other}`"))),
    }
}

/// Preserve int-ness of min/max when both inputs are ints.
fn number(result: f64, a: &Value, b: &Value) -> Value {
    if matches!(a, Value::Int(_)) && matches!(b, Value::Int(_)) {
        Value::Int(result as i64)
    } else {
        Value::Float(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, NoHost};
    use crate::parse;

    fn eval(expr: &str) -> Value {
        let src = format!("fn main() {{ return {expr}; }}");
        let program = parse(&src).unwrap();
        Interpreter::new(&program).call(&mut NoHost, "main", vec![]).unwrap()
    }

    fn eval_err(expr: &str) -> ScriptError {
        let src = format!("fn main() {{ return {expr}; }}");
        let program = parse(&src).unwrap();
        Interpreter::new(&program).call(&mut NoHost, "main", vec![]).unwrap_err()
    }

    #[test]
    fn string_builtins() {
        assert_eq!(eval(r#"lower("ABC")"#), Value::Str("abc".into()));
        assert_eq!(eval(r#"upper("abc")"#), Value::Str("ABC".into()));
        assert_eq!(eval(r#"trim("  x  ")"#), Value::Str("x".into()));
        assert_eq!(eval(r#"capitalize("word")"#), Value::Str("Word".into()));
        assert_eq!(eval(r#"replace("a-b-c", "-", "+")"#), Value::Str("a+b+c".into()));
        assert_eq!(eval(r#"substr("hello", 1, 3)"#), Value::Str("ell".into()));
        assert_eq!(eval(r#"index_of("hello", "ll")"#), Value::Int(2));
        assert_eq!(eval(r#"index_of("hello", "zz")"#), Value::Int(-1));
        assert_eq!(eval(r#"starts_with("hello", "he")"#), Value::Bool(true));
        assert_eq!(eval(r#"ends_with("hello", "lo")"#), Value::Bool(true));
    }

    #[test]
    fn split_and_join() {
        assert_eq!(eval(r#"join(split("a,b,c", ","), "|")"#), Value::Str("a|b|c".into()));
        // Empty separator = whitespace split.
        assert_eq!(eval(r#"len(split("a b   c", ""))"#), Value::Int(3));
    }

    #[test]
    fn contains_variants() {
        assert_eq!(eval(r#"contains("haystack", "hay")"#), Value::Bool(true));
        assert_eq!(eval(r#"contains([1, 2, 3], 2)"#), Value::Bool(true));
        assert_eq!(eval(r#"contains([1, 2, 3], 9)"#), Value::Bool(false));
        assert_eq!(eval(r#"contains({"k": 1}, "k")"#), Value::Bool(true));
    }

    #[test]
    fn char_classes() {
        assert_eq!(eval(r#"is_alpha("Word")"#), Value::Bool(true));
        assert_eq!(eval(r#"is_alpha("w0rd")"#), Value::Bool(false));
        assert_eq!(eval(r#"is_digit("123")"#), Value::Bool(true));
        assert_eq!(eval(r#"is_upper("Word")"#), Value::Bool(true));
        assert_eq!(eval(r#"is_upper("word")"#), Value::Bool(false));
        assert_eq!(eval(r#"is_upper("")"#), Value::Bool(false));
    }

    #[test]
    fn similarity_builtins() {
        assert_eq!(eval(r#"levenshtein("kitten", "sitting")"#), Value::Int(3));
        assert!(matches!(eval(r#"jaro_winkler("martha", "marhta")"#), Value::Float(f) if f > 0.9));
        assert!(matches!(eval(r#"jaccard("a b", "a b")"#), Value::Float(f) if f == 1.0));
        assert!(matches!(eval(r#"overlap("a b", "a b c")"#), Value::Float(f) if f == 1.0));
        assert_eq!(
            eval(r#"tokenize("Hello, World!")"#),
            Value::List(vec![Value::Str("hello".into()), Value::Str("world".into())])
        );
    }

    #[test]
    fn numeric_builtins() {
        assert_eq!(eval("abs(-3)"), Value::Int(3));
        assert_eq!(eval("abs(-3.5)"), Value::Float(3.5));
        assert_eq!(eval("min(3, 5)"), Value::Int(3));
        assert_eq!(eval("max(3, 5.0)"), Value::Float(5.0));
        assert_eq!(eval("round(2.5)"), Value::Int(3));
        assert_eq!(eval("floor(2.9)"), Value::Int(2));
        assert_eq!(eval("ceil(2.1)"), Value::Int(3));
        assert_eq!(eval("sqrt(9)"), Value::Float(3.0));
        assert!(matches!(eval_err("sqrt(-1)"), ScriptError::Runtime { .. }));
    }

    #[test]
    fn conversions() {
        assert_eq!(eval(r#"to_int("42")"#), Value::Int(42));
        assert_eq!(eval("to_int(3.9)"), Value::Int(3));
        assert_eq!(eval(r#"to_float("2.5")"#), Value::Float(2.5));
        assert_eq!(eval("to_str(12)"), Value::Str("12".into()));
        assert_eq!(eval(r#"parse_int("nope")"#), Value::Null);
        assert_eq!(eval(r#"parse_float("1.5")"#), Value::Float(1.5));
        assert!(matches!(eval_err(r#"to_int("nope")"#), ScriptError::Runtime { .. }));
    }

    #[test]
    fn list_builtins() {
        assert_eq!(eval("len(range(5))"), Value::Int(5));
        assert_eq!(eval("range(2, 4)"), Value::List(vec![Value::Int(2), Value::Int(3)]));
        assert_eq!(
            eval("sort([3, 1, 2])"),
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval(r#"sort(["b", "a"])"#),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(eval("reverse([1, 2])"), Value::List(vec![Value::Int(2), Value::Int(1)]));
        assert_eq!(eval(r#"reverse("abc")"#), Value::Str("cba".into()));
        assert_eq!(
            eval("slice([1, 2, 3, 4], 1, 3)"),
            Value::List(vec![Value::Int(2), Value::Int(3)])
        );
        assert_eq!(eval("slice([1], 5, 9)"), Value::List(vec![]));
        assert_eq!(eval("len(concat([1], [2, 3]))"), Value::Int(3));
        assert_eq!(
            eval("unique([1, 2, 1, 3, 2])"),
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(eval("sum([1, 2, 3])"), Value::Int(6));
        assert_eq!(eval("sum([1, 2.5])"), Value::Float(3.5));
    }

    #[test]
    fn map_builtins() {
        assert_eq!(
            eval(r#"keys({"b": 1, "a": 2})"#),
            Value::List(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(eval(r#"values({"a": 2})"#), Value::List(vec![Value::Int(2)]));
        assert_eq!(eval(r#"has_key({"a": 1}, "a")"#), Value::Bool(true));
        assert_eq!(eval(r#"get_or({"a": 1}, "b", 9)"#), Value::Int(9));
        assert_eq!(eval(r#"get_or({"a": 1}, "a", 9)"#), Value::Int(1));
    }

    #[test]
    fn typeof_and_is_null() {
        assert_eq!(eval("typeof(1)"), Value::Str("int".into()));
        assert_eq!(eval("typeof([1])"), Value::Str("list".into()));
        assert_eq!(eval("is_null(null)"), Value::Bool(true));
        assert_eq!(eval("is_null(0)"), Value::Bool(false));
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(matches!(eval_err("len()"), ScriptError::Runtime { .. }));
        assert!(matches!(eval_err("len(1)"), ScriptError::Runtime { .. }));
        assert!(matches!(eval_err("lower(1)"), ScriptError::Runtime { .. }));
        assert!(matches!(eval_err("range(1, 2, 3)"), ScriptError::Runtime { .. }));
        assert!(matches!(eval_err("mystery(1)"), ScriptError::Runtime { .. }));
    }

    #[test]
    fn unicode_len_counts_chars() {
        assert_eq!(eval(r#"len("café")"#), Value::Int(4));
        assert_eq!(eval(r#"index_of("café au lait", "au")"#), Value::Int(5));
    }
}
