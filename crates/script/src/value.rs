//! Runtime values.

use std::collections::BTreeMap;
use std::fmt;

/// A MangaScript runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    /// Maps have string keys and preserve key order (sorted).
    Map(BTreeMap<String, Value>),
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Truthiness: `null` and `false` are falsy; everything else truthy.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Null | Value::Bool(false))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Structural equality with numeric Int/Float coercion — the semantics of
    /// the `==` operator.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                self.as_f64() == other.as_f64()
            }
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loose_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        Value::Str(s) => write!(f, "{s:?}")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "{k:?}: {s:?}")?,
                        other => write!(f, "{k:?}: {other}")?,
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy()); // numbers are always truthy
        assert!(Value::Str(String::new()).truthy());
        assert!(Value::List(vec![]).truthy());
    }

    #[test]
    fn loose_eq_coerces_numbers() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.5)));
        assert!(Value::List(vec![Value::Int(1)]).loose_eq(&Value::List(vec![Value::Float(1.0)])));
        assert!(!Value::Str("2".into()).loose_eq(&Value::Int(2)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("x".into())]).to_string(),
            "[1, \"x\"]"
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(1));
        assert_eq!(Value::Map(m).to_string(), "{\"k\": 1}");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Null.as_list(), None);
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
