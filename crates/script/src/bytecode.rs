//! The compact instruction stream the compiler lowers a [`crate::Program`]
//! into and the VM executes.
//!
//! Design (after the Rune/Ketos lineage of Rust bytecode interpreters):
//!
//! * **Constant pool** — literals are materialized once at compile time into
//!   [`CompiledFn::consts`] and pushed by index, instead of being re-built
//!   from the AST on every evaluation.
//! * **Slot-indexed locals** — every identifier a function touches is
//!   resolved to a dense slot index at compile time; the VM indexes a flat
//!   locals array where the tree-walker hashes a `HashMap<String, Value>`
//!   per access. Slots start *undefined* (not `null`), so "unknown variable"
//!   and "assignment to undeclared variable" keep their runtime meaning —
//!   [`CompiledFn::slot_names`] maps back for the error message.
//! * **Explicit call frames** — `Call`/`Ret` push and pop frames on a VM
//!   frame stack instead of recursing on the host stack, so the recursion
//!   trap is a bounds check, not a guard against a host stack overflow.
//! * **Fuel side table** — [`CompiledFn::costs`] carries, per instruction,
//!   the number of interpreter ticks that instruction accounts for. The
//!   compiler attaches each AST node's one-tick charge to the first
//!   instruction emitted for that node, so the VM's fuel accounting is
//!   tick-for-tick identical to the tree-walker's (see `compile.rs` for the
//!   pending-cost discipline and the loop-head flush rule).
//!
//! Instructions use `u32` operands throughout: function and constant indices,
//! jump targets (absolute instruction offsets within the function), and
//! argument counts.

use crate::error::Span;
use crate::vm::VmValue;
use std::collections::HashMap;

/// The mutating special forms (`push`/`pop`/`insert`/`delete`), which operate
/// on an lvalue rather than an evaluated argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    Push,
    Pop,
    Insert,
    Delete,
}

impl MutOp {
    pub fn name(&self) -> &'static str {
        match self {
            MutOp::Push => "push",
            MutOp::Pop => "pop",
            MutOp::Insert => "insert",
            MutOp::Delete => "delete",
        }
    }

    pub fn from_name(name: &str) -> Option<MutOp> {
        match name {
            "push" => Some(MutOp::Push),
            "pop" => Some(MutOp::Pop),
            "insert" => Some(MutOp::Insert),
            "delete" => Some(MutOp::Delete),
            _ => None,
        }
    }
}

/// Binary operator subset the `Bin` instruction dispatches on (`&&`/`||` are
/// compiled to jumps and never reach it).
pub use crate::ast::BinOp;

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push `consts[i]`.
    Const(u32),
    /// Push `locals[slot]`; trap if the slot is still undefined.
    LoadSlot(u32),
    /// Pop into `locals[slot]` (a `let`: declares unconditionally).
    StoreSlot(u32),
    /// Pop into `locals[slot]`, trapping if the slot was never declared
    /// (a bare `name = value` assignment).
    StoreChecked(u32),
    /// Pop and discard (expression statements).
    Pop,
    /// No-op carrying only its fuel cost: emitted when a pending charge must
    /// be flushed before a loop-head label so back-edges do not re-pay it.
    Fuel,
    /// Pop `n` values, push a list of them (in evaluation order).
    MakeList(u32),
    /// Pop `keysets[i].len()` values, push a map pairing them with the keys
    /// (insertion order, later duplicates overwriting — BTreeMap semantics).
    MakeMap(u32),
    /// Pop index, pop base, push `base[index]`.
    ReadIndex,
    /// Pop index, pop value, store into `locals[slot][index]`.
    StoreIndex(u32),
    /// Pop, push arithmetic negation.
    Neg,
    /// Pop, push logical negation of truthiness.
    Not,
    /// Pop, push `Bool(truthy)` — the tail of a short-circuit chain.
    ToBool,
    /// Pop right, pop left, push `left op right`.
    Bin(BinOp),
    /// Unconditional jump to an absolute offset.
    Jump(u32),
    /// Pop; jump if falsy.
    JumpIfFalse(u32),
    /// Pop; if falsy push `false` and jump (short-circuit `&&`).
    AndJump(u32),
    /// Pop; if truthy push `true` and jump (short-circuit `||`).
    OrJump(u32),
    /// Pop the iterable, materialize its items, push an iterator state.
    ForPrep,
    /// Yield the next item into `locals[slot]` (charging one tick per item),
    /// or pop the iterator and jump to `end` when exhausted.
    ForNext { slot: u32, end: u32 },
    /// Pop the innermost iterator (a `break` leaving a `for` loop).
    IterPop,
    /// Call a user function by index with `argc` stack arguments.
    CallUser { func: u32, argc: u32 },
    /// Call a named builtin with `argc` stack arguments (dispatches through
    /// the shared `builtins::call` so semantics cannot diverge).
    Builtin { name: u32, argc: u32 },
    /// `call_llm(...)` through the host bridge.
    HostLlm { argc: u32 },
    /// `call_module(...)` through the host bridge.
    HostModule { argc: u32 },
    /// `call_tool(...)` through the host bridge.
    HostTool { argc: u32 },
    /// `print(...)`: pop `argc` values, append one joined line to the output.
    Print { argc: u32 },
    /// A mutating special form against `locals[slot]`, optionally through one
    /// index level (the index is on top of the stack when `indexed`).
    Mutate { op: MutOp, slot: u32, argc: u32, indexed: bool },
    /// Raise a runtime error with message `strings[i]` (compile-time-known
    /// failures that must still fire *after* argument evaluation).
    Fail(u32),
    /// Pop the return value and the current frame.
    Ret,
}

/// One compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFn {
    pub name: String,
    /// Parameter count; parameters occupy slots `0..params`.
    pub params: usize,
    /// Total local slots (parameters included).
    pub n_slots: usize,
    pub code: Vec<Instr>,
    /// Per-instruction fuel cost (ticks), parallel to `code`.
    pub costs: Vec<u32>,
    /// Per-instruction source span for error reporting, parallel to `code`.
    pub spans: Vec<Span>,
    /// Constant pool.
    pub consts: Vec<VmValue>,
    /// Builtin names and compile-time error messages.
    pub strings: Vec<String>,
    /// Key lists for map literals.
    pub keysets: Vec<Vec<String>>,
    /// Slot index → identifier, for runtime error messages.
    pub slot_names: Vec<String>,
}

/// A whole compiled program: the unit the LLMGC layer caches and shares
/// across invocations (it is `Send + Sync`; values use `Arc` internally).
#[derive(Debug, Clone)]
pub struct CompiledScript {
    pub funcs: Vec<CompiledFn>,
    by_name: HashMap<String, usize>,
}

impl CompiledScript {
    pub(crate) fn new(funcs: Vec<CompiledFn>, by_name: HashMap<String, usize>) -> CompiledScript {
        CompiledScript { funcs, by_name }
    }

    /// Index of a function by name (first declaration wins, matching
    /// [`crate::Program::function`]).
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Total instructions across all functions (bench/introspection).
    pub fn instruction_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
