//! AST → bytecode lowering, plus the process-wide compile cache.
//!
//! ## Fuel parity (the load-bearing invariant)
//!
//! The tree-walking interpreter charges one fuel tick at every `run_stmt`
//! entry, every `eval` entry (i.e. every expression node), once per `while`
//! iteration before the condition, and once per `for` item. The VM must be
//! tick-for-tick identical — `fuel_used()` and the exact trap point are
//! pinned by tests — so the compiler uses a *pending-cost accumulator*:
//!
//! * visiting a node charges one pending tick (pre-order, exactly where the
//!   interpreter's `tick()` sits);
//! * every emitted instruction absorbs the pending ticks into its cost slot,
//!   so consecutive ticks with no observable effect between them (parent
//!   node + first child) merge into one batched fuel check;
//! * before binding any jump-target label the pending count must be zero —
//!   loop heads flush it into an explicit [`Instr::Fuel`] no-op so back
//!   edges do not re-pay the loop statement's own entry tick.
//!
//! Batching is observably equivalent because nothing (no host call, no
//! mutation, no error with a different trap kind) happens between the merged
//! ticks, and a failed batched check zeroes the fuel counter exactly like a
//! failed single tick does.
//!
//! ## Name resolution
//!
//! Calls are resolved at compile time in the interpreter's exact order:
//! mutating special forms first, then user functions (which shadow the host
//! bridge and builtins), then `call_llm`/`call_module`/`call_tool`/`print`,
//! then the builtin table (unknown names fall through to the builtin
//! dispatcher at runtime, which raises the same "unknown function" error the
//! interpreter does). Compile-time-detectable failures — a mutating form
//! with no arguments or a non-lvalue target — are emitted as [`Instr::Fail`]
//! *after* the argument code, preserving evaluation order and host-call
//! sequences on the error path.

use crate::ast::*;
use crate::bytecode::{CompiledFn, CompiledScript, Instr, MutOp};
use crate::error::Span;
use crate::vm::VmValue;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Compile a parsed program. Compilation is total: every name resolves to an
/// instruction (unknown ones to the runtime-failing builtin dispatch), so
/// there is no compile-error surface beyond what `parse` already rejected.
pub fn compile(program: &Program) -> CompiledScript {
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        by_name.entry(f.name.clone()).or_insert(i);
    }
    let funcs =
        program.functions.iter().map(|f| FnCompiler::new(program, &by_name, f).run()).collect();
    CompiledScript::new(funcs, by_name)
}

/// Loop context: where `continue` and `break` jump, and whether `break` must
/// pop an active iterator first.
struct LoopCtx {
    head: usize,
    end: usize,
    is_for: bool,
}

struct FnCompiler<'p> {
    program: &'p Program,
    by_name: &'p HashMap<String, usize>,
    decl: &'p FnDecl,
    code: Vec<Instr>,
    costs: Vec<u32>,
    spans: Vec<Span>,
    pending: u32,
    consts: Vec<VmValue>,
    strings: Vec<String>,
    keysets: Vec<Vec<String>>,
    slot_names: Vec<String>,
    slot_idx: HashMap<String, u32>,
    loops: Vec<LoopCtx>,
    /// Jump sites awaiting a label position: (instruction index, label id).
    patches: Vec<(usize, usize)>,
    labels: Vec<Option<u32>>,
}

impl<'p> FnCompiler<'p> {
    fn new(program: &'p Program, by_name: &'p HashMap<String, usize>, decl: &'p FnDecl) -> Self {
        let mut c = FnCompiler {
            program,
            by_name,
            decl,
            code: Vec::new(),
            costs: Vec::new(),
            spans: Vec::new(),
            pending: 0,
            consts: Vec::new(),
            strings: Vec::new(),
            keysets: Vec::new(),
            slot_names: Vec::new(),
            slot_idx: HashMap::new(),
            loops: Vec::new(),
            patches: Vec::new(),
            labels: Vec::new(),
        };
        for p in &decl.params {
            c.slot(p);
        }
        c
    }

    fn run(mut self) -> CompiledFn {
        // Pre-pass: allocate a slot for every identifier the body touches,
        // so codegen can resolve reads of never-declared names to a slot
        // that is still undefined at runtime (the interpreter's "unknown
        // variable" error).
        for s in &self.decl.body {
            self.collect_stmt_slots(s);
        }
        let body: &[Stmt] = &self.decl.body;
        self.stmts(body);
        // Implicit `return null` — the interpreter charges nothing for it.
        debug_assert_eq!(self.pending, 0, "statements must flush their pending fuel");
        let null = self.const_idx(VmValue::Null);
        self.emit(Instr::Const(null), Span::default());
        self.emit(Instr::Ret, Span::default());
        for (pos, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label].expect("label bound before patch");
            match &mut self.code[pos] {
                Instr::Jump(t)
                | Instr::JumpIfFalse(t)
                | Instr::AndJump(t)
                | Instr::OrJump(t)
                | Instr::ForNext { end: t, .. } => *t = target,
                other => unreachable!("patched a non-jump instruction {other:?}"),
            }
        }
        CompiledFn {
            name: self.decl.name.clone(),
            params: self.decl.params.len(),
            n_slots: self.slot_names.len(),
            code: self.code,
            costs: self.costs,
            spans: self.spans,
            consts: self.consts,
            strings: self.strings,
            keysets: self.keysets,
            slot_names: self.slot_names,
        }
    }

    // -- slot collection ---------------------------------------------------

    fn slot(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.slot_idx.get(name) {
            return i;
        }
        let i = self.slot_names.len() as u32;
        self.slot_names.push(name.to_string());
        self.slot_idx.insert(name.to_string(), i);
        i
    }

    fn collect_stmt_slots(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { name, value, .. } => {
                self.collect_expr_slots(value);
                self.slot(name);
            }
            Stmt::Assign { target, value, .. } => {
                self.collect_expr_slots(value);
                match target {
                    LValue::Var(name) => {
                        self.slot(name);
                    }
                    LValue::Index(name, idx) => {
                        self.collect_expr_slots(idx);
                        self.slot(name);
                    }
                }
            }
            Stmt::Expr(e) => self.collect_expr_slots(e),
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.collect_expr_slots(cond);
                for s in then_branch {
                    self.collect_stmt_slots(s);
                }
                for s in else_branch {
                    self.collect_stmt_slots(s);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.collect_expr_slots(cond);
                for s in body {
                    self.collect_stmt_slots(s);
                }
            }
            Stmt::For { var, iterable, body, .. } => {
                self.collect_expr_slots(iterable);
                self.slot(var);
                for s in body {
                    self.collect_stmt_slots(s);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.collect_expr_slots(e);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
        }
    }

    fn collect_expr_slots(&mut self, e: &Expr) {
        match e {
            Expr::Null(_) | Expr::Bool(..) | Expr::Int(..) | Expr::Float(..) | Expr::Str(..) => {}
            Expr::Var(name, _) => {
                self.slot(name);
            }
            Expr::List(items, _) => {
                for i in items {
                    self.collect_expr_slots(i);
                }
            }
            Expr::Map(pairs, _) => {
                for (_, v) in pairs {
                    self.collect_expr_slots(v);
                }
            }
            Expr::Unary(_, inner, _) => self.collect_expr_slots(inner),
            Expr::Binary(_, l, r, _) => {
                self.collect_expr_slots(l);
                self.collect_expr_slots(r);
            }
            Expr::Call(name, args, _) => {
                if MutOp::from_name(name).is_some() {
                    // The target lvalue's variable gets a slot; its index
                    // expression and the rest arguments are ordinary exprs.
                    let mut args_iter = args.iter();
                    if let Some(target) = args_iter.next() {
                        match target {
                            Expr::Var(v, _) => {
                                self.slot(v);
                            }
                            Expr::Index(base, idx, _) => {
                                if let Expr::Var(v, _) = &**base {
                                    self.slot(v);
                                    self.collect_expr_slots(idx);
                                } else {
                                    // Invalid target: compiled to Fail; its
                                    // subtrees are never evaluated.
                                }
                            }
                            other => self.collect_expr_slots(other),
                        }
                    }
                    for a in args_iter {
                        self.collect_expr_slots(a);
                    }
                } else {
                    for a in args {
                        self.collect_expr_slots(a);
                    }
                }
            }
            Expr::Index(base, idx, _) => {
                self.collect_expr_slots(base);
                self.collect_expr_slots(idx);
            }
        }
    }

    // -- emission helpers --------------------------------------------------

    fn charge(&mut self) {
        self.pending += 1;
    }

    fn emit(&mut self, instr: Instr, span: Span) {
        self.code.push(instr);
        self.costs.push(self.pending);
        self.spans.push(span);
        self.pending = 0;
    }

    /// Flush pending ticks into an explicit `Fuel` no-op. Required before
    /// binding a label a back edge jumps to, so re-entry does not re-charge
    /// ticks that belong to code before the loop.
    fn flush_pending(&mut self) {
        if self.pending > 0 {
            self.emit(Instr::Fuel, Span::default());
        }
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        debug_assert_eq!(self.pending, 0, "flush pending fuel before binding a label");
        self.labels[label] = Some(self.code.len() as u32);
    }

    fn emit_jump(&mut self, make: impl FnOnce(u32) -> Instr, label: usize, span: Span) {
        self.patches.push((self.code.len(), label));
        self.emit(make(u32::MAX), span);
    }

    fn const_idx(&mut self, v: VmValue) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn string_idx(&mut self, s: impl Into<String>) -> u32 {
        self.strings.push(s.into());
        (self.strings.len() - 1) as u32
    }

    // -- statements --------------------------------------------------------

    fn stmts(&mut self, list: &[Stmt]) {
        for s in list {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.charge(); // run_stmt entry tick
        match s {
            Stmt::Let { name, value, .. } => {
                self.expr(value);
                let slot = self.slot(name);
                self.emit(Instr::StoreSlot(slot), Span::default());
            }
            Stmt::Assign { target, value, span } => match target {
                LValue::Var(name) => {
                    self.expr(value);
                    let slot = self.slot(name);
                    self.emit(Instr::StoreChecked(slot), *span);
                }
                LValue::Index(name, idx) => {
                    self.expr(value);
                    self.expr(idx);
                    let slot = self.slot(name);
                    self.emit(Instr::StoreIndex(slot), *span);
                }
            },
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Instr::Pop, Span::default());
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.expr(cond);
                let else_l = self.label();
                let end = self.label();
                self.emit_jump(Instr::JumpIfFalse, else_l, Span::default());
                self.stmts(then_branch);
                self.emit_jump(Instr::Jump, end, Span::default());
                self.bind(else_l);
                self.stmts(else_branch);
                self.bind(end);
            }
            Stmt::While { cond, body, .. } => {
                // The statement's own entry tick must not be re-paid by the
                // back edge: flush it before the loop head.
                self.flush_pending();
                let head_pos = self.code.len();
                let head = self.label();
                self.bind(head);
                self.charge(); // per-iteration tick, absorbed by the cond
                self.expr(cond);
                let end = self.label();
                self.emit_jump(Instr::JumpIfFalse, end, Span::default());
                self.loops.push(LoopCtx { head, end, is_for: false });
                self.stmts(body);
                self.loops.pop();
                self.emit(Instr::Jump(head_pos as u32), Span::default());
                self.bind(end);
            }
            Stmt::For { var, iterable, body, span } => {
                self.expr(iterable);
                self.emit(Instr::ForPrep, *span);
                let head_pos = self.code.len();
                let head = self.label();
                self.bind(head);
                let end = self.label();
                let slot = self.slot(var);
                self.patches.push((self.code.len(), end));
                self.emit(Instr::ForNext { slot, end: u32::MAX }, Span::default());
                self.loops.push(LoopCtx { head, end, is_for: true });
                self.stmts(body);
                self.loops.pop();
                self.emit(Instr::Jump(head_pos as u32), Span::default());
                self.bind(end);
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(e) => self.expr(e),
                    None => {
                        let null = self.const_idx(VmValue::Null);
                        self.emit(Instr::Const(null), Span::default());
                    }
                }
                self.emit(Instr::Ret, Span::default());
            }
            Stmt::Break(_) => match self.loops.last() {
                Some(ctx) => {
                    let (end, is_for) = (ctx.end, ctx.is_for);
                    if is_for {
                        self.emit(Instr::IterPop, Span::default());
                    }
                    self.emit_jump(Instr::Jump, end, Span::default());
                }
                // A top-level `break` falls out of the function: the
                // interpreter's Flow::Break reaches the frame and yields
                // null, exactly like running off the end of the body.
                None => {
                    let null = self.const_idx(VmValue::Null);
                    self.emit(Instr::Const(null), Span::default());
                    self.emit(Instr::Ret, Span::default());
                }
            },
            Stmt::Continue(_) => match self.loops.last() {
                Some(ctx) => {
                    let head = ctx.head;
                    self.emit_jump(Instr::Jump, head, Span::default());
                }
                None => {
                    let null = self.const_idx(VmValue::Null);
                    self.emit(Instr::Const(null), Span::default());
                    self.emit(Instr::Ret, Span::default());
                }
            },
        }
    }

    // -- expressions -------------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        self.charge(); // eval entry tick
        match e {
            Expr::Null(_) => {
                let i = self.const_idx(VmValue::Null);
                self.emit(Instr::Const(i), Span::default());
            }
            Expr::Bool(b, _) => {
                let i = self.const_idx(VmValue::Bool(*b));
                self.emit(Instr::Const(i), Span::default());
            }
            Expr::Int(v, _) => {
                let i = self.const_idx(VmValue::Int(*v));
                self.emit(Instr::Const(i), Span::default());
            }
            Expr::Float(v, _) => {
                let i = self.const_idx(VmValue::Float(*v));
                self.emit(Instr::Const(i), Span::default());
            }
            Expr::Str(s, _) => {
                let i = self.const_idx(VmValue::Str(Arc::from(s.as_str())));
                self.emit(Instr::Const(i), Span::default());
            }
            Expr::Var(name, span) => {
                let slot = self.slot(name);
                self.emit(Instr::LoadSlot(slot), *span);
            }
            Expr::List(items, _) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Instr::MakeList(items.len() as u32), Span::default());
            }
            Expr::Map(pairs, _) => {
                let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
                for (_, v) in pairs {
                    self.expr(v);
                }
                self.keysets.push(keys);
                self.emit(Instr::MakeMap((self.keysets.len() - 1) as u32), Span::default());
            }
            Expr::Unary(op, inner, span) => {
                self.expr(inner);
                match op {
                    UnOp::Neg => self.emit(Instr::Neg, *span),
                    UnOp::Not => self.emit(Instr::Not, *span),
                }
            }
            Expr::Binary(BinOp::And, l, r, _) => {
                self.expr(l);
                let end = self.label();
                self.emit_jump(Instr::AndJump, end, Span::default());
                self.expr(r);
                self.emit(Instr::ToBool, Span::default());
                self.bind(end);
            }
            Expr::Binary(BinOp::Or, l, r, _) => {
                self.expr(l);
                let end = self.label();
                self.emit_jump(Instr::OrJump, end, Span::default());
                self.expr(r);
                self.emit(Instr::ToBool, Span::default());
                self.bind(end);
            }
            Expr::Binary(op, l, r, span) => {
                self.expr(l);
                self.expr(r);
                self.emit(Instr::Bin(*op), *span);
            }
            Expr::Call(name, args, span) => self.call(name, args, *span),
            Expr::Index(base, idx, span) => {
                self.expr(base);
                self.expr(idx);
                self.emit(Instr::ReadIndex, *span);
            }
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span) {
        if let Some(op) = MutOp::from_name(name) {
            return self.mutating_call(op, args, span);
        }
        for a in args {
            self.expr(a);
        }
        // User-defined functions shadow the host bridge and builtins.
        if let Some(&func) = self.by_name.get(name) {
            debug_assert!(self.program.function(name).is_some());
            self.emit(Instr::CallUser { func: func as u32, argc: args.len() as u32 }, span);
            return;
        }
        let argc = args.len() as u32;
        match name {
            "call_llm" => self.emit(Instr::HostLlm { argc }, span),
            "call_module" => self.emit(Instr::HostModule { argc }, span),
            "call_tool" => self.emit(Instr::HostTool { argc }, span),
            "print" => self.emit(Instr::Print { argc }, span),
            // Known and unknown builtins alike dispatch through the shared
            // builtin table at runtime; unknown names raise its exact
            // "unknown function" error there.
            _ => {
                let n = self.string_idx(name);
                self.emit(Instr::Builtin { name: n, argc }, span);
            }
        }
    }

    fn mutating_call(&mut self, op: MutOp, args: &[Expr], span: Span) {
        let Some((target, rest)) = args.split_first() else {
            let m = self.string_idx(format!("{} expects a container argument", op.name()));
            self.emit(Instr::Fail(m), span);
            return;
        };
        // Rest arguments evaluate before the target resolves — including
        // before the "not an lvalue" error fires.
        for a in rest {
            self.expr(a);
        }
        let argc = rest.len() as u32;
        match target {
            Expr::Var(v, _) => {
                let slot = self.slot(v);
                self.emit(Instr::Mutate { op, slot, argc, indexed: false }, span);
            }
            Expr::Index(base, idx, _) => match &**base {
                Expr::Var(v, _) => {
                    self.expr(idx);
                    let slot = self.slot(v);
                    self.emit(Instr::Mutate { op, slot, argc, indexed: true }, span);
                }
                _ => {
                    let m = self.string_idx(format!(
                        "{} target must be a variable or `var[index]`",
                        op.name()
                    ));
                    self.emit(Instr::Fail(m), span);
                }
            },
            _ => {
                let m = self
                    .string_idx(format!("{} target must be a variable or `var[index]`", op.name()));
                self.emit(Instr::Fail(m), span);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

/// FNV-1a fingerprint of a program source — the cache key. The same hash
/// family the rest of the system uses for prompt fingerprints.
pub fn source_fingerprint(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct CacheEntry {
    script: Arc<CompiledScript>,
    compiles: u64,
    hits: u64,
}

/// A shared source-fingerprint → [`CompiledScript`] cache.
///
/// The LLMGC layer keys compilations by generation fingerprint: a candidate
/// program compiles once, the thousands of repeat executions per validator
/// cycle share the `Arc`, and a repaired program (different source) misses
/// and compiles exactly once more. Per-key hit/compile counters let tests
/// pin that contract.
#[derive(Debug, Default)]
pub struct CompileCache {
    inner: Mutex<HashMap<u64, CacheEntry>>,
}

impl CompileCache {
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Fetch the compiled form of `source`, compiling `program` on a miss.
    /// Compilation happens under the lock, so a key compiles at most once.
    pub fn get_or_compile(&self, source: &str, program: &Program) -> Arc<CompiledScript> {
        let key = source_fingerprint(source);
        let mut inner = self.inner.lock().expect("compile cache poisoned");
        match inner.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                Arc::clone(&entry.script)
            }
            None => {
                let script = Arc::new(compile(program));
                inner.insert(key, CacheEntry { script: Arc::clone(&script), compiles: 1, hits: 0 });
                script
            }
        }
    }

    /// `(compiles, hits)` recorded for this source (0, 0 if never seen).
    pub fn stats(&self, source: &str) -> (u64, u64) {
        let key = source_fingerprint(source);
        let inner = self.inner.lock().expect("compile cache poisoned");
        inner.get(&key).map(|e| (e.compiles, e.hits)).unwrap_or((0, 0))
    }

    /// Number of distinct programs ever compiled.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("compile cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
