//! Abstract syntax tree.
//!
//! The AST is public and mutable on purpose: the simulated LLM's code
//! generator builds programs as ASTs, and its bug-injection model mutates
//! them before pretty-printing — see `lingua-llm-sim::codegen`.

use crate::error::Span;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding power (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Null(Span),
    Bool(bool, Span),
    Int(i64, Span),
    Float(f64, Span),
    Str(String, Span),
    Var(String, Span),
    List(Vec<Expr>, Span),
    /// Map literal: ordered `(key, value)` pairs with string keys.
    Map(Vec<(String, Expr)>, Span),
    Unary(UnOp, Box<Expr>, Span),
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Function or builtin call by name.
    Call(String, Vec<Expr>, Span),
    /// Indexing: `base[index]` over lists (int) and maps (str).
    Index(Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::Null(s)
            | Expr::Bool(_, s)
            | Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Str(_, s)
            | Expr::Var(_, s)
            | Expr::List(_, s)
            | Expr::Map(_, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call(_, _, s)
            | Expr::Index(_, _, s) => *s,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x = ...`
    Var(String),
    /// `x[i] = ...` (one level of indexing on a variable).
    Index(String, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        name: String,
        value: Expr,
        span: Span,
    },
    /// `target = expr;`
    Assign {
        target: LValue,
        value: Expr,
        span: Span,
    },
    /// Bare expression (usually a call) followed by `;`.
    Expr(Expr),
    /// `if cond { ... } else { ... }` — `else_branch` may itself contain a
    /// single `If` statement to model `else if` chains.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `for name in iterable { ... }` — iterates lists, maps (keys), and
    /// strings (chars).
    For {
        var: String,
        iterable: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    Return {
        value: Option<Expr>,
        span: Span,
    },
    Break(Span),
    Continue(Span),
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::Break(s) | Stmt::Continue(s) => *s,
        }
    }
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A whole program: a list of function declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub functions: Vec<FnDecl>,
}

impl Program {
    pub fn function(&self, name: &str) -> Option<&FnDecl> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut FnDecl> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// A copy with every span reset to [`Span::default`], so two programs can
    /// be compared structurally — e.g. `parse(pretty(ast)) == ast` holds even
    /// though printing moves everything to fresh source positions.
    pub fn strip_spans(&self) -> Program {
        Program {
            functions: self
                .functions
                .iter()
                .map(|f| FnDecl {
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body: f.body.iter().map(strip_stmt).collect(),
                    span: Span::default(),
                })
                .collect(),
        }
    }
}

fn strip_stmt(stmt: &Stmt) -> Stmt {
    let s = Span::default();
    match stmt {
        Stmt::Let { name, value, .. } => {
            Stmt::Let { name: name.clone(), value: strip_expr(value), span: s }
        }
        Stmt::Assign { target, value, .. } => {
            let target = match target {
                LValue::Var(n) => LValue::Var(n.clone()),
                LValue::Index(n, idx) => LValue::Index(n.clone(), strip_expr(idx)),
            };
            Stmt::Assign { target, value: strip_expr(value), span: s }
        }
        Stmt::Expr(e) => Stmt::Expr(strip_expr(e)),
        Stmt::If { cond, then_branch, else_branch, .. } => Stmt::If {
            cond: strip_expr(cond),
            then_branch: then_branch.iter().map(strip_stmt).collect(),
            else_branch: else_branch.iter().map(strip_stmt).collect(),
            span: s,
        },
        Stmt::While { cond, body, .. } => Stmt::While {
            cond: strip_expr(cond),
            body: body.iter().map(strip_stmt).collect(),
            span: s,
        },
        Stmt::For { var, iterable, body, .. } => Stmt::For {
            var: var.clone(),
            iterable: strip_expr(iterable),
            body: body.iter().map(strip_stmt).collect(),
            span: s,
        },
        Stmt::Return { value, .. } => {
            Stmt::Return { value: value.as_ref().map(strip_expr), span: s }
        }
        Stmt::Break(_) => Stmt::Break(s),
        Stmt::Continue(_) => Stmt::Continue(s),
    }
}

fn strip_expr(expr: &Expr) -> Expr {
    let s = Span::default();
    match expr {
        Expr::Null(_) => Expr::Null(s),
        Expr::Bool(v, _) => Expr::Bool(*v, s),
        Expr::Int(v, _) => Expr::Int(*v, s),
        Expr::Float(v, _) => Expr::Float(*v, s),
        Expr::Str(v, _) => Expr::Str(v.clone(), s),
        Expr::Var(v, _) => Expr::Var(v.clone(), s),
        Expr::List(items, _) => Expr::List(items.iter().map(strip_expr).collect(), s),
        Expr::Map(pairs, _) => {
            Expr::Map(pairs.iter().map(|(k, v)| (k.clone(), strip_expr(v))).collect(), s)
        }
        Expr::Unary(op, inner, _) => Expr::Unary(*op, Box::new(strip_expr(inner)), s),
        Expr::Binary(op, l, r, _) => {
            Expr::Binary(*op, Box::new(strip_expr(l)), Box::new(strip_expr(r)), s)
        }
        Expr::Call(name, args, _) => {
            Expr::Call(name.clone(), args.iter().map(strip_expr).collect(), s)
        }
        Expr::Index(base, idx, _) => {
            Expr::Index(Box::new(strip_expr(base)), Box::new(strip_expr(idx)), s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn program_function_lookup() {
        let f = FnDecl { name: "main".into(), params: vec![], body: vec![], span: Span::default() };
        let mut p = Program { functions: vec![f] };
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
        p.function_mut("main").unwrap().params.push("x".into());
        assert_eq!(p.function("main").unwrap().params, vec!["x"]);
    }
}
