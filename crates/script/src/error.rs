//! Errors and source spans.

use std::fmt;

/// A byte range in the source text, with a 1-based line for messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

impl Span {
    pub fn new(start: usize, end: usize, line: usize) -> Span {
        Span { start, end, line }
    }

    /// A span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Everything that can go wrong while lexing, parsing, or running a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    Lex {
        span: Span,
        message: String,
    },
    Parse {
        span: Span,
        message: String,
    },
    /// A runtime error, e.g. a type error or unknown variable.
    Runtime {
        span: Span,
        message: String,
    },
    /// The fuel budget was exhausted — the Validator's "timeout".
    OutOfFuel,
    /// The call stack exceeded the interpreter's depth limit. Runaway
    /// recursion must trap *inside* the interpreter: letting it recurse on
    /// the host stack would abort the whole process with a stack overflow,
    /// which no supervisor can catch.
    RecursionLimit {
        depth: usize,
    },
    /// A host call (`call_llm` / `call_module` / `call_tool`) failed.
    Host {
        message: String,
    },
}

impl ScriptError {
    pub fn runtime(span: Span, message: impl Into<String>) -> ScriptError {
        ScriptError::Runtime { span, message: message.into() }
    }

    /// Short classification used by failure reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ScriptError::Lex { .. } => "lex",
            ScriptError::Parse { .. } => "parse",
            ScriptError::Runtime { .. } => "runtime",
            ScriptError::OutOfFuel => "timeout",
            ScriptError::RecursionLimit { .. } => "recursion",
            ScriptError::Host { .. } => "host",
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            ScriptError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            ScriptError::Runtime { span, message } => {
                write!(f, "runtime error at {span}: {message}")
            }
            ScriptError::OutOfFuel => write!(f, "execution exceeded its fuel budget"),
            ScriptError::RecursionLimit { depth } => {
                write!(f, "call depth {depth} exceeded the recursion limit")
            }
            ScriptError::Host { message } => write!(f, "host call failed: {message}"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7, 1);
        let b = Span::new(10, 14, 2);
        assert_eq!(a.merge(b), Span::new(3, 14, 1));
        assert_eq!(b.merge(a), Span::new(3, 14, 1));
    }

    #[test]
    fn error_display_includes_line() {
        let err = ScriptError::runtime(Span::new(0, 1, 12), "bad index");
        assert!(err.to_string().contains("line 12"));
        assert!(err.to_string().contains("bad index"));
        assert_eq!(err.kind(), "runtime");
        assert_eq!(ScriptError::OutOfFuel.kind(), "timeout");
    }
}
