//! Errors and source spans.

use std::fmt;

/// A byte range in the source text, with a 1-based line (and, when known, a
/// 1-based character column) for messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: usize,
    /// 1-based character column of `start` on `line`; 0 when unknown (spans
    /// built before the lexer tracked columns, or synthesized ones).
    pub col: usize,
}

impl Span {
    pub fn new(start: usize, end: usize, line: usize) -> Span {
        Span { start, end, line, col: 0 }
    }

    /// [`Span::new`] with the starting column attached.
    pub fn with_col(start: usize, end: usize, line: usize, col: usize) -> Span {
        Span { start, end, line, col }
    }

    /// A span covering both inputs; line and column come from whichever
    /// starts first in the source.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if (self.line, self.start) <= (other.line, other.start) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span { start: self.start.min(other.start), end: self.end.max(other.end), line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}", self.line, self.col)
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

/// Everything that can go wrong while lexing, parsing, or running a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    Lex {
        span: Span,
        message: String,
    },
    Parse {
        span: Span,
        message: String,
    },
    /// A runtime error, e.g. a type error or unknown variable.
    Runtime {
        span: Span,
        message: String,
    },
    /// The fuel budget was exhausted — the Validator's "timeout".
    OutOfFuel,
    /// The call stack exceeded the interpreter's depth limit. Runaway
    /// recursion must trap *inside* the interpreter: letting it recurse on
    /// the host stack would abort the whole process with a stack overflow,
    /// which no supervisor can catch.
    RecursionLimit {
        depth: usize,
    },
    /// A host call (`call_llm` / `call_module` / `call_tool`) failed.
    Host {
        message: String,
    },
}

impl ScriptError {
    pub fn runtime(span: Span, message: impl Into<String>) -> ScriptError {
        ScriptError::Runtime { span, message: message.into() }
    }

    /// Short classification used by failure reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ScriptError::Lex { .. } => "lex",
            ScriptError::Parse { .. } => "parse",
            ScriptError::Runtime { .. } => "runtime",
            ScriptError::OutOfFuel => "timeout",
            ScriptError::RecursionLimit { .. } => "recursion",
            ScriptError::Host { .. } => "host",
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            ScriptError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            ScriptError::Runtime { span, message } => {
                write!(f, "runtime error at {span}: {message}")
            }
            ScriptError::OutOfFuel => write!(f, "execution exceeded its fuel budget"),
            ScriptError::RecursionLimit { depth } => {
                write!(f, "call depth {depth} exceeded the recursion limit")
            }
            ScriptError::Host { message } => write!(f, "host call failed: {message}"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7, 1);
        let b = Span::new(10, 14, 2);
        assert_eq!(a.merge(b), Span::new(3, 14, 1));
        assert_eq!(b.merge(a), Span::new(3, 14, 1));
    }

    #[test]
    fn error_display_includes_line() {
        let err = ScriptError::runtime(Span::new(0, 1, 12), "bad index");
        assert!(err.to_string().contains("line 12"));
        assert!(err.to_string().contains("bad index"));
        assert_eq!(err.kind(), "runtime");
        assert_eq!(ScriptError::OutOfFuel.kind(), "timeout");
    }

    #[test]
    fn error_display_includes_column_when_known() {
        let err = ScriptError::runtime(Span::with_col(0, 1, 12, 7), "bad index");
        assert!(err.to_string().contains("line 12, col 7"), "{err}");
        // Spans without a column keep the old line-only rendering.
        let bare = ScriptError::runtime(Span::new(0, 1, 12), "bad index");
        assert!(!bare.to_string().contains("col"), "{bare}");
    }

    #[test]
    fn merge_takes_line_and_column_from_the_earlier_span() {
        let a = Span::with_col(3, 7, 1, 4);
        let b = Span::with_col(10, 14, 2, 2);
        assert_eq!(a.merge(b), Span::with_col(3, 14, 1, 4));
        assert_eq!(b.merge(a), Span::with_col(3, 14, 1, 4));
    }
}
