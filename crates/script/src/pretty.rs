//! Pretty-printer: render an AST back to MangaScript source.
//!
//! `parse(pretty(program))` reproduces the program (modulo spans) — the
//! property test at the bottom checks this on generated ASTs. The simulated
//! LLM uses this to turn its generated ASTs into the "code" shown to users
//! and re-parsed by the Validator.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        fn_decl(&mut out, f);
    }
    out
}

fn fn_decl(out: &mut String, f: &FnDecl) {
    let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
    block(out, &f.body, 1);
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for stmt in stmts {
        statement(out, stmt, depth);
    }
}

fn statement(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Let { name, value, .. } => {
            let _ = writeln!(out, "let {name} = {};", expr(value));
        }
        Stmt::Assign { target, value, .. } => match target {
            LValue::Var(name) => {
                let _ = writeln!(out, "{name} = {};", expr(value));
            }
            LValue::Index(name, index) => {
                let _ = writeln!(out, "{name}[{}] = {};", expr(index), expr(value));
            }
        },
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e));
        }
        Stmt::If { cond, then_branch, else_branch, .. } => {
            let _ = writeln!(out, "if {} {{", expr(cond));
            block(out, then_branch, depth + 1);
            indent(out, depth);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else if else_branch.len() == 1 && matches!(else_branch[0], Stmt::If { .. }) {
                // `else if` chain: print inline.
                out.push_str("} else ");
                let mut chain = String::new();
                statement(&mut chain, &else_branch[0], depth);
                // Strip the leading indentation the nested call added.
                out.push_str(chain.trim_start());
            } else {
                out.push_str("} else {\n");
                block(out, else_branch, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while {} {{", expr(cond));
            block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For { var, iterable, body, .. } => {
            let _ = writeln!(out, "for {var} in {} {{", expr(iterable));
            block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", expr(v));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
    }
}

/// Render an expression with minimal (but always-correct) parenthesization:
/// child binary expressions are parenthesized when their precedence is not
/// higher than the parent's.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Null(_) => "null".into(),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Int(i, _) => i.to_string(),
        Expr::Float(f, _) => {
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Expr::Str(s, _) => string_literal(s),
        Expr::Var(name, _) => name.clone(),
        Expr::List(items, _) => {
            let inner: Vec<String> = items.iter().map(|i| expr_prec(i, 0)).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Map(pairs, _) => {
            let inner: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", string_literal(k), expr_prec(v, 0)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Unary(op, inner, _) => {
            let symbol = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            // Unary binds tighter than any binary operator.
            format!("{symbol}{}", expr_prec(inner, 7))
        }
        Expr::Binary(op, l, r, _) => {
            let prec = op.precedence();
            let text = format!(
                "{} {} {}",
                expr_prec(l, prec),
                op.symbol(),
                // Right side binds one tighter: `a - b - c` prints correctly
                // as left-associative.
                expr_prec(r, prec + 1)
            );
            if prec < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Call(name, args, _) => {
            let inner: Vec<String> = args.iter().map(|a| expr_prec(a, 0)).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Index(base, index, _) => {
            // Base must be a postfix-safe expression.
            let base_text = match **base {
                Expr::Binary(..) | Expr::Unary(..) => format!("({})", expr_prec(base, 0)),
                _ => expr_prec(base, 7),
            };
            format!("{base_text}[{}]", expr_prec(index, 0))
        }
    }
}

fn string_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = program(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        // Strict structural equality modulo spans: parse(pretty(ast)) == ast.
        assert_eq!(p2.strip_spans(), p1.strip_spans(), "printed:\n{printed}");
    }

    #[test]
    fn negative_literals_roundtrip_exactly() {
        // The printer emits `-5`; the parser folds it back into `Int(-5)`
        // rather than `Neg(Int(5))`, so strict AST equality holds.
        roundtrip(r#"fn f() { return -5 + -2.5; }"#);
        roundtrip(r#"fn f() { return [-1, -0.125, {"k": -9}]; }"#);
    }

    #[test]
    fn roundtrips_statements() {
        roundtrip(
            r#"
            fn demo(items, m) {
                let total = 0;
                for item in items {
                    if item > 10 { total = total + item; }
                    else if item < 0 { continue; }
                    else { break; }
                }
                while total > 100 { total = total - 1; }
                m["c"] = 3;
                print(total);
                return total;
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_expressions() {
        roundtrip(r#"fn f(a, b) { return (a + b) * 2 - -a; }"#);
        roundtrip(r#"fn f(a, b) { return a > 1 && b < 2 || !(a == b); }"#);
        roundtrip(r#"fn f(m) { return m["k"][0] + [1, 2][1]; }"#);
        roundtrip(r#"fn f() { return {"a": 1, "b": [2, {"c": null}]}; }"#);
        roundtrip(r#"fn f() { return "quote \" backslash \\ newline \n"; }"#);
        roundtrip(r#"fn f(a) { return a - 1 - 2; }"#);
        roundtrip(r#"fn f(a) { return a - (1 - 2); }"#);
    }

    #[test]
    fn left_associativity_preserved() {
        let p = parse("fn f(a) { return a - 1 - 2; }").unwrap();
        let printed = program(&p);
        assert!(printed.contains("a - 1 - 2"), "{printed}");
        let p = parse("fn f(a) { return a - (1 - 2); }").unwrap();
        let printed = program(&p);
        assert!(printed.contains("a - (1 - 2)"), "{printed}");
    }

    #[test]
    fn precedence_parens_only_when_needed() {
        let p = parse("fn f(a, b) { return (a + b) * 2; }").unwrap();
        let printed = program(&p);
        assert!(printed.contains("(a + b) * 2"), "{printed}");
        let p = parse("fn f(a, b) { return a + b * 2; }").unwrap();
        let printed = program(&p);
        assert!(printed.contains("a + b * 2"), "{printed}");
        assert!(!printed.contains("(b * 2)"), "{printed}");
    }

    #[test]
    fn else_if_chain_prints_flat() {
        let p = parse(
            "fn f(x) { if x > 1 { return 1; } else if x > 0 { return 0; } else { return -1; } }",
        )
        .unwrap();
        let printed = program(&p);
        assert!(printed.contains("} else if x > 0 {"), "{printed}");
        roundtrip(&printed);
    }

    #[test]
    fn semantics_preserved_through_roundtrip() {
        use crate::interp::{Interpreter, NoHost};
        use crate::value::Value;
        let src = r#"
            fn main() {
                let out = [];
                for x in range(6) {
                    if x % 2 == 0 { push(out, x * x); }
                }
                return sum(out);
            }
        "#;
        let p1 = parse(src).unwrap();
        let p2 = parse(&program(&p1)).unwrap();
        let r1 = Interpreter::new(&p1).call(&mut NoHost, "main", vec![]).unwrap();
        let r2 = Interpreter::new(&p2).call(&mut NoHost, "main", vec![]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, Value::Int(20));
    }
}
