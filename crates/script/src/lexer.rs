//! Hand-written lexer.

use crate::error::{ScriptError, Span};
use crate::token::{Token, TokenKind};

/// Lex source text into tokens (terminated by an `Eof` token).
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    /// 1-based character column of the next char on the current line.
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, chars: src.char_indices().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars.get(self.pos).map(|&(i, _)| i).unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
        c
    }

    fn error(&self, start: usize, message: impl Into<String>) -> ScriptError {
        ScriptError::Lex {
            span: Span::with_col(start, self.byte_offset(), self.line, self.col),
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, ScriptError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.byte_offset();
            let line = self.line;
            let col = self.col;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::with_col(start, start, line, col),
                });
                return Ok(tokens);
            };
            let kind = match c {
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                '[' => self.single(TokenKind::LBracket),
                ']' => self.single(TokenKind::RBracket),
                ',' => self.single(TokenKind::Comma),
                ';' => self.single(TokenKind::Semicolon),
                ':' => self.single(TokenKind::Colon),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '*' => self.single(TokenKind::Star),
                '/' => self.single(TokenKind::Slash),
                '%' => self.single(TokenKind::Percent),
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Eq
                    } else {
                        TokenKind::Assign
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        TokenKind::Bang
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        TokenKind::AndAnd
                    } else {
                        return Err(self.error(start, "expected `&&`"));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        TokenKind::OrOr
                    } else {
                        return Err(self.error(start, "expected `||`"));
                    }
                }
                '"' => self.string(start)?,
                c if c.is_ascii_digit() => self.number(start)?,
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => return Err(self.error(start, format!("unexpected character `{other}`"))),
            };
            let end = self.byte_offset();
            tokens.push(Token { kind, span: Span::with_col(start, end, line, col) });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                // `//` line comments and `#` line comments.
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn string(&mut self, start: usize) -> Result<TokenKind, ScriptError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(start, "unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(out)),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some(other) => return Err(self.error(start, format!("bad escape `\\{other}`"))),
                    None => return Err(self.error(start, "unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<TokenKind, ScriptError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.error(start, format!("bad float: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.error(start, format!("bad integer: {e}")))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_function() {
        let toks = kinds("fn add(a, b) { return a + b; }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Fn,
                TokenKind::Ident("add".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::Return,
                TokenKind::Ident("a".into()),
                TokenKind::Plus,
                TokenKind::Ident("b".into()),
                TokenKind::Semicolon,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5), TokenKind::Eof]);
        // `1.` is Int then error-free only if followed by non-digit: `1 .` is
        // not valid syntax later, but the lexer treats `1.x` as Int(1) + ...
        assert_eq!(kinds("1")[0], TokenKind::Int(1));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""he\tsaid \"hi\"\n""#)[0], TokenKind::Str("he\tsaid \"hi\"\n".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"oops"), Err(ScriptError::Lex { .. })));
        assert!(matches!(lex(r#""bad \q escape""#), Err(ScriptError::Lex { .. })));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("// comment\nlet x = 1; # other\nx");
        assert_eq!(toks[0], TokenKind::Let);
        assert!(toks.contains(&TokenKind::Ident("x".into())));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || ! < >"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn single_ampersand_is_an_error() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("let a = 1;\nlet b = 2;").unwrap();
        let b_tok = toks.iter().find(|t| t.kind == TokenKind::Ident("b".into())).unwrap();
        assert_eq!(b_tok.span.line, 2);
    }

    #[test]
    fn columns_track_within_and_across_lines() {
        let toks = lex("let a = 1;\n    let bee = 22;").unwrap();
        let find = |kind: &TokenKind| toks.iter().find(|t| &t.kind == kind).unwrap().span;
        assert_eq!(find(&TokenKind::Ident("a".into())).col, 5);
        assert_eq!(find(&TokenKind::Int(1)).col, 9);
        // Second line restarts the count; indentation is counted in chars.
        let bee = find(&TokenKind::Ident("bee".into()));
        assert_eq!((bee.line, bee.col), (2, 9));
        assert_eq!(find(&TokenKind::Int(22)).col, 15);
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // `é` is two bytes but one column.
        let toks = lex("café + x").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Plus);
        assert_eq!(toks[1].span.col, 6);
    }

    #[test]
    fn unicode_identifiers() {
        // Alphabetic unicode is allowed in identifiers.
        let toks = kinds("café");
        assert_eq!(toks[0], TokenKind::Ident("café".into()));
    }

    #[test]
    fn unexpected_character() {
        assert!(matches!(lex("let x = @"), Err(ScriptError::Lex { .. })));
    }
}
