//! Tokens.

use crate::error::Span;

/// The kinds of token MangaScript knows.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals & identifiers
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),

    // Keywords
    Fn,
    Let,
    If,
    Else,
    While,
    For,
    In,
    Return,
    Break,
    Continue,
    True,
    False,
    Null,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,

    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,

    Eof,
}

impl TokenKind {
    /// Keyword lookup for identifiers.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            _ => return None,
        })
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("fn"), Some(TokenKind::Fn));
        assert_eq!(TokenKind::keyword("return"), Some(TokenKind::Return));
        assert_eq!(TokenKind::keyword("banana"), None);
    }
}
