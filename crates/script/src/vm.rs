//! The bytecode VM: a register-style (slot-indexed) execution engine over
//! [`CompiledScript`], behaviourally identical to the tree-walking
//! interpreter — same results, same error messages, same trap kinds, same
//! fuel accounting, same host-call order (differential-tested).
//!
//! The performance story versus the tree-walker:
//!
//! * values are an inline-primitive [`VmValue`] — unit/bool/int/float
//!   unboxed, strings/lists/maps behind `Arc` with copy-on-write mutation,
//!   so variable loads are an `Arc` bump instead of a deep clone;
//! * locals are dense slots resolved at compile time instead of per-access
//!   `HashMap<String, Value>` lookups;
//! * calls push explicit frames on a VM-owned stack instead of recursing on
//!   the host stack (and no longer clone the callee's entire body AST, which
//!   the tree-walker does on every single call);
//! * fuel is charged per instruction from a precomputed cost table instead
//!   of a branch per AST node.

use crate::ast::BinOp;
use crate::builtins;
use crate::bytecode::{CompiledFn, CompiledScript, Instr, MutOp};
use crate::error::{ScriptError, Span};
use crate::interp::{Host, DEFAULT_FUEL, DEFAULT_MAX_DEPTH};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The VM's value representation. Scalars are unboxed; containers are
/// `Arc`-shared with copy-on-write mutation, which preserves the language's
/// pass-by-value semantics (a callee mutating its argument never affects the
/// caller) while making loads and argument passing O(1).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum VmValue {
    /// Internal sentinel for a slot that has not been assigned yet. Never
    /// escapes the VM: loading one raises "unknown variable".
    #[default]
    Undefined,
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    List(Arc<Vec<VmValue>>),
    Map(Arc<BTreeMap<String, VmValue>>),
}

impl VmValue {
    pub fn from_value(v: Value) -> VmValue {
        match v {
            Value::Null => VmValue::Null,
            Value::Bool(b) => VmValue::Bool(b),
            Value::Int(i) => VmValue::Int(i),
            Value::Float(f) => VmValue::Float(f),
            Value::Str(s) => VmValue::Str(Arc::from(s.as_str())),
            Value::List(items) => {
                VmValue::List(Arc::new(items.into_iter().map(VmValue::from_value).collect()))
            }
            Value::Map(map) => VmValue::Map(Arc::new(
                map.into_iter().map(|(k, v)| (k, VmValue::from_value(v))).collect(),
            )),
        }
    }

    pub fn to_value(&self) -> Value {
        match self {
            VmValue::Undefined => Value::Null,
            VmValue::Null => Value::Null,
            VmValue::Bool(b) => Value::Bool(*b),
            VmValue::Int(i) => Value::Int(*i),
            VmValue::Float(f) => Value::Float(*f),
            VmValue::Str(s) => Value::Str(s.to_string()),
            VmValue::List(items) => Value::List(items.iter().map(VmValue::to_value).collect()),
            VmValue::Map(map) => {
                Value::Map(map.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
            }
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            VmValue::Undefined => "undefined",
            VmValue::Null => "null",
            VmValue::Bool(_) => "bool",
            VmValue::Int(_) => "int",
            VmValue::Float(_) => "float",
            VmValue::Str(_) => "str",
            VmValue::List(_) => "list",
            VmValue::Map(_) => "map",
        }
    }

    pub fn truthy(&self) -> bool {
        !matches!(self, VmValue::Null | VmValue::Bool(false))
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            VmValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            VmValue::Int(i) => Some(*i as f64),
            VmValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// `==` semantics, mirroring `Value::loose_eq`.
    fn loose_eq(&self, other: &VmValue) -> bool {
        match (self, other) {
            (VmValue::Int(_) | VmValue::Float(_), VmValue::Int(_) | VmValue::Float(_)) => {
                self.as_f64() == other.as_f64()
            }
            (VmValue::List(a), VmValue::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.loose_eq(y))
            }
            (VmValue::Map(a), VmValue::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            _ => self == other,
        }
    }
}

/// Mirrors `Value`'s Display exactly (strings bare at top level, quoted
/// inside containers, whole floats with one decimal).
impl fmt::Display for VmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmValue::Undefined => write!(f, "undefined"),
            VmValue::Null => write!(f, "null"),
            VmValue::Bool(b) => write!(f, "{b}"),
            VmValue::Int(i) => write!(f, "{i}"),
            VmValue::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            VmValue::Str(s) => write!(f, "{s}"),
            VmValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        VmValue::Str(s) => write!(f, "{:?}", &**s)?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            VmValue::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        VmValue::Str(s) => write!(f, "{k:?}: {:?}", &**s)?,
                        other => write!(f, "{k:?}: {other}")?,
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

/// One call frame: which function, where in it, and where this frame's
/// locals, operand stack and iterators start.
struct Frame {
    func: usize,
    pc: usize,
    base: usize,
    floor: usize,
    iter_base: usize,
}

/// A (re-usable) VM over one compiled program. The API mirrors
/// [`crate::Interpreter`]: `with_fuel`, `with_max_depth`, `fuel_used`,
/// `output`, and `call` taking/returning the public [`Value`].
pub struct Vm {
    script: Arc<CompiledScript>,
    fuel_budget: u64,
    fuel: u64,
    max_depth: usize,
    /// Lines produced by `print(...)` during the last call.
    pub output: Vec<String>,
}

impl Vm {
    pub fn new(script: Arc<CompiledScript>) -> Vm {
        Vm {
            script,
            fuel_budget: DEFAULT_FUEL,
            fuel: DEFAULT_FUEL,
            max_depth: DEFAULT_MAX_DEPTH,
            output: Vec::new(),
        }
    }

    /// Override the fuel budget (per `call`).
    pub fn with_fuel(mut self, fuel: u64) -> Vm {
        self.fuel_budget = fuel;
        self
    }

    /// Override the call-depth limit (per `call`).
    pub fn with_max_depth(mut self, max_depth: usize) -> Vm {
        self.max_depth = max_depth.max(1);
        self
    }

    /// Fuel consumed by the last `call`.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_budget - self.fuel
    }

    /// Invoke a top-level function by name.
    pub fn call(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, ScriptError> {
        self.fuel = self.fuel_budget;
        self.output.clear();
        let script = Arc::clone(&self.script);
        let span = Span::default();
        let Some(entry) = script.function_index(name) else {
            return Err(ScriptError::runtime(span, format!("unknown function `{name}`")));
        };
        let func = &script.funcs[entry];
        if func.params != args.len() {
            return Err(ScriptError::runtime(
                span,
                format!(
                    "function `{name}` expects {} argument(s), got {}",
                    func.params,
                    args.len()
                ),
            ));
        }
        let vm_args: Vec<VmValue> = args.into_iter().map(VmValue::from_value).collect();
        self.run(host, &script, entry, vm_args)
    }

    fn charge(&mut self, cost: u32) -> Result<(), ScriptError> {
        let cost = u64::from(cost);
        if self.fuel < cost {
            // Mirror the interpreter: a failed tick leaves fuel at zero, so
            // fuel_used() reports the full budget after an OutOfFuel trap.
            self.fuel = 0;
            return Err(ScriptError::OutOfFuel);
        }
        self.fuel -= cost;
        Ok(())
    }

    fn run(
        &mut self,
        host: &mut dyn Host,
        script: &CompiledScript,
        entry: usize,
        args: Vec<VmValue>,
    ) -> Result<Value, ScriptError> {
        let mut stack: Vec<VmValue> = Vec::with_capacity(16);
        let mut locals: Vec<VmValue> = Vec::with_capacity(16);
        let mut iters: Vec<(Vec<VmValue>, usize)> = Vec::new();
        // Suspended callers only; the running frame lives in the locals
        // below so the dispatch loop never re-indexes the frame stack.
        let mut frames: Vec<Frame> = Vec::with_capacity(8);
        let mut fidx = entry;
        let mut func: &CompiledFn = &script.funcs[entry];
        let mut pc: usize = 0;
        let mut base: usize = 0;
        let mut floor: usize = 0;
        let mut iter_base: usize = 0;

        locals.resize(func.n_slots, VmValue::Undefined);
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }

        loop {
            let ip = pc;
            pc += 1;
            let cost = func.costs[ip];
            if cost != 0 {
                self.charge(cost)?;
            }
            match &func.code[ip] {
                Instr::Const(i) => stack.push(func.consts[*i as usize].clone()),
                Instr::LoadSlot(s) => {
                    let v = &locals[base + *s as usize];
                    if matches!(v, VmValue::Undefined) {
                        return Err(ScriptError::runtime(
                            func.spans[ip],
                            format!("unknown variable `{}`", func.slot_names[*s as usize]),
                        ));
                    }
                    stack.push(v.clone());
                }
                Instr::StoreSlot(s) => {
                    let v = stack.pop().expect("store with empty stack");
                    locals[base + *s as usize] = v;
                }
                Instr::StoreChecked(s) => {
                    let v = stack.pop().expect("store with empty stack");
                    let slot = &mut locals[base + *s as usize];
                    if matches!(slot, VmValue::Undefined) {
                        return Err(ScriptError::runtime(
                            func.spans[ip],
                            format!(
                                "assignment to undeclared variable `{}`",
                                func.slot_names[*s as usize]
                            ),
                        ));
                    }
                    *slot = v;
                }
                Instr::Pop => {
                    stack.pop();
                }
                Instr::Fuel => {}
                Instr::MakeList(n) => {
                    let items = stack.split_off(stack.len() - *n as usize);
                    stack.push(VmValue::List(Arc::new(items)));
                }
                Instr::MakeMap(k) => {
                    let keys = &func.keysets[*k as usize];
                    let values = stack.split_off(stack.len() - keys.len());
                    let mut map = BTreeMap::new();
                    for (key, value) in keys.iter().zip(values) {
                        map.insert(key.clone(), value);
                    }
                    stack.push(VmValue::Map(Arc::new(map)));
                }
                Instr::ReadIndex => {
                    let i = stack.pop().expect("index with empty stack");
                    let b = stack.pop().expect("index with empty stack");
                    stack.push(read_index(&b, &i, func.spans[ip])?);
                }
                Instr::StoreIndex(s) => {
                    let span = func.spans[ip];
                    let index = stack.pop().expect("store-index with empty stack");
                    let value = stack.pop().expect("store-index with empty stack");
                    let container = &mut locals[base + *s as usize];
                    if matches!(container, VmValue::Undefined) {
                        return Err(ScriptError::runtime(
                            span,
                            format!("unknown variable `{}`", func.slot_names[*s as usize]),
                        ));
                    }
                    assign_index(container, &index, value, span)?;
                }
                Instr::Neg => {
                    let v = stack.pop().expect("neg with empty stack");
                    match v {
                        VmValue::Int(i) => stack.push(VmValue::Int(-i)),
                        VmValue::Float(f) => stack.push(VmValue::Float(-f)),
                        other => {
                            return Err(ScriptError::runtime(
                                func.spans[ip],
                                format!("cannot negate a {}", other.type_name()),
                            ))
                        }
                    }
                }
                Instr::Not => {
                    let v = stack.pop().expect("not with empty stack");
                    stack.push(VmValue::Bool(!v.truthy()));
                }
                Instr::ToBool => {
                    let v = stack.pop().expect("tobool with empty stack");
                    stack.push(VmValue::Bool(v.truthy()));
                }
                Instr::Bin(op) => {
                    let r = stack.pop().expect("binop with empty stack");
                    let l = stack.pop().expect("binop with empty stack");
                    let span = func.spans[ip];
                    let out = match op {
                        BinOp::Eq => VmValue::Bool(l.loose_eq(&r)),
                        BinOp::Ne => VmValue::Bool(!l.loose_eq(&r)),
                        BinOp::Add => add_values(&l, &r, span)?,
                        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                            arith(*op, &l, &r, span)?
                        }
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                            compare(*op, &l, &r, span)?
                        }
                        BinOp::And | BinOp::Or => unreachable!("logical ops compile to jumps"),
                    };
                    stack.push(out);
                }
                Instr::Jump(t) => pc = *t as usize,
                Instr::JumpIfFalse(t) => {
                    let v = stack.pop().expect("jump with empty stack");
                    if !v.truthy() {
                        pc = *t as usize;
                    }
                }
                Instr::AndJump(t) => {
                    let v = stack.pop().expect("jump with empty stack");
                    if !v.truthy() {
                        stack.push(VmValue::Bool(false));
                        pc = *t as usize;
                    }
                }
                Instr::OrJump(t) => {
                    let v = stack.pop().expect("jump with empty stack");
                    if v.truthy() {
                        stack.push(VmValue::Bool(true));
                        pc = *t as usize;
                    }
                }
                Instr::ForPrep => {
                    let iterable = stack.pop().expect("for with empty stack");
                    let items: Vec<VmValue> = match iterable {
                        VmValue::List(items) => {
                            Arc::try_unwrap(items).unwrap_or_else(|a| (*a).clone())
                        }
                        VmValue::Map(map) => {
                            map.keys().map(|k| VmValue::Str(Arc::from(k.as_str()))).collect()
                        }
                        VmValue::Str(s) => s
                            .chars()
                            .map(|c| VmValue::Str(Arc::from(c.to_string().as_str())))
                            .collect(),
                        other => {
                            return Err(ScriptError::runtime(
                                func.spans[ip],
                                format!("cannot iterate a {}", other.type_name()),
                            ))
                        }
                    };
                    iters.push((items, 0));
                }
                Instr::ForNext { slot, end } => {
                    let (items, next) = iters.last_mut().expect("for-next without iterator");
                    if *next < items.len() {
                        // One tick per yielded item, exactly where the
                        // interpreter ticks before binding the loop var.
                        self.charge(1)?;
                        let item = std::mem::take(&mut items[*next]);
                        *next += 1;
                        locals[base + *slot as usize] = item;
                    } else {
                        iters.pop();
                        pc = *end as usize;
                    }
                }
                Instr::IterPop => {
                    iters.pop();
                }
                Instr::CallUser { func: callee, argc } => {
                    // Depth check before the arity check, like the
                    // interpreter's call_function -> call_function_frame.
                    if frames.len() + 1 >= self.max_depth {
                        return Err(ScriptError::RecursionLimit { depth: frames.len() + 1 });
                    }
                    let callee_fn = &script.funcs[*callee as usize];
                    let argc = *argc as usize;
                    if callee_fn.params != argc {
                        return Err(ScriptError::runtime(
                            func.spans[ip],
                            format!(
                                "function `{}` expects {} argument(s), got {}",
                                callee_fn.name, callee_fn.params, argc
                            ),
                        ));
                    }
                    let new_base = locals.len();
                    locals.resize(new_base + callee_fn.n_slots, VmValue::Undefined);
                    for i in (0..argc).rev() {
                        locals[new_base + i] = stack.pop().expect("call with missing args");
                    }
                    frames.push(Frame { func: fidx, pc, base, floor, iter_base });
                    fidx = *callee as usize;
                    func = callee_fn;
                    pc = 0;
                    base = new_base;
                    floor = stack.len();
                    iter_base = iters.len();
                }
                Instr::Builtin { name, argc } => {
                    let name = func.strings[*name as usize].as_str();
                    if *argc == 1 {
                        let v = stack.pop().expect("builtin with empty stack");
                        match fast_builtin1(name, &v) {
                            Some(out) => stack.push(out),
                            None => {
                                let args = [v.to_value()];
                                let out = builtins::call(name, &args, func.spans[ip])?;
                                stack.push(VmValue::from_value(out));
                            }
                        }
                    } else {
                        let vm_args = stack.split_off(stack.len() - *argc as usize);
                        let args: Vec<Value> = vm_args.iter().map(VmValue::to_value).collect();
                        let out = builtins::call(name, &args, func.spans[ip])?;
                        stack.push(VmValue::from_value(out));
                    }
                }
                Instr::HostLlm { argc } => {
                    let span = func.spans[ip];
                    let values = stack.split_off(stack.len() - *argc as usize);
                    let prompt = values.first().and_then(|v| v.as_str()).ok_or_else(|| {
                        ScriptError::runtime(span, "call_llm expects a string prompt")
                    })?;
                    let response =
                        host.call_llm(prompt).map_err(|message| ScriptError::Host { message })?;
                    stack.push(VmValue::Str(Arc::from(response.as_str())));
                }
                Instr::HostModule { argc } => {
                    let span = func.spans[ip];
                    let values = stack.split_off(stack.len() - *argc as usize);
                    if values.len() != 2 {
                        return Err(ScriptError::runtime(
                            span,
                            "call_module expects (name, input)",
                        ));
                    }
                    let module = values[0]
                        .as_str()
                        .ok_or_else(|| ScriptError::runtime(span, "module name must be a string"))?
                        .to_string();
                    let out = host
                        .call_module(&module, values[1].to_value())
                        .map_err(|message| ScriptError::Host { message })?;
                    stack.push(VmValue::from_value(out));
                }
                Instr::HostTool { argc } => {
                    let span = func.spans[ip];
                    let values = stack.split_off(stack.len() - *argc as usize);
                    let tool = values
                        .first()
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| ScriptError::runtime(span, "call_tool expects a tool name"))?
                        .to_string();
                    let rest: Vec<Value> = values[1..].iter().map(VmValue::to_value).collect();
                    let out = host
                        .call_tool(&tool, &rest)
                        .map_err(|message| ScriptError::Host { message })?;
                    stack.push(VmValue::from_value(out));
                }
                Instr::Print { argc } => {
                    let values = stack.split_off(stack.len() - *argc as usize);
                    let line = values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
                    self.output.push(line);
                    stack.push(VmValue::Null);
                }
                Instr::Mutate { op, slot, argc, indexed } => {
                    let span = func.spans[ip];
                    let index = if *indexed {
                        Some(stack.pop().expect("mutate with empty stack"))
                    } else {
                        None
                    };
                    let rest = stack.split_off(stack.len() - *argc as usize);
                    let container = &mut locals[base + *slot as usize];
                    if matches!(container, VmValue::Undefined) {
                        return Err(ScriptError::runtime(
                            span,
                            format!("unknown variable `{}`", func.slot_names[*slot as usize]),
                        ));
                    }
                    let target: &mut VmValue = match &index {
                        None => container,
                        Some(i) => index_mut(container, i, span)?,
                    };
                    stack.push(mutate(*op, target, &rest, span)?);
                }
                Instr::Fail(m) => {
                    return Err(ScriptError::runtime(
                        func.spans[ip],
                        func.strings[*m as usize].clone(),
                    ));
                }
                Instr::Ret => {
                    let value = stack.pop().expect("return with empty stack");
                    locals.truncate(base);
                    stack.truncate(floor);
                    iters.truncate(iter_base);
                    match frames.pop() {
                        None => return Ok(value.to_value()),
                        Some(parent) => {
                            fidx = parent.func;
                            func = &script.funcs[fidx];
                            pc = parent.pc;
                            base = parent.base;
                            floor = parent.floor;
                            iter_base = parent.iter_base;
                            stack.push(value);
                        }
                    }
                }
            }
        }
    }
}

/// Allocation-light native paths for the hottest single-argument builtins.
/// Returns `None` on any type the shared `builtins::call` would reject (or
/// any name not covered), so error messages and edge semantics come from the
/// one canonical implementation.
fn fast_builtin1(name: &str, v: &VmValue) -> Option<VmValue> {
    match (name, v) {
        ("typeof", _) => Some(VmValue::Str(Arc::from(v.type_name()))),
        ("is_null", _) => Some(VmValue::Bool(matches!(v, VmValue::Null))),
        ("len", VmValue::Str(s)) => Some(VmValue::Int(s.chars().count() as i64)),
        ("len", VmValue::List(items)) => Some(VmValue::Int(items.len() as i64)),
        ("len", VmValue::Map(map)) => Some(VmValue::Int(map.len() as i64)),
        ("trim", VmValue::Str(s)) => Some(VmValue::Str(Arc::from(s.trim()))),
        ("lower", VmValue::Str(s)) => Some(VmValue::Str(Arc::from(s.to_lowercase().as_str()))),
        ("upper", VmValue::Str(s)) => Some(VmValue::Str(Arc::from(s.to_uppercase().as_str()))),
        ("to_str", _) => Some(VmValue::Str(Arc::from(v.to_string().as_str()))),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Operator semantics: byte-for-byte mirrors of the interpreter's helpers,
// lifted onto VmValue with Arc copy-on-write for the mutating paths.
// ---------------------------------------------------------------------------

fn mutate(
    op: MutOp,
    target: &mut VmValue,
    rest: &[VmValue],
    span: Span,
) -> Result<VmValue, ScriptError> {
    match (op, target) {
        (MutOp::Push, VmValue::List(items)) => {
            let v = rest
                .first()
                .cloned()
                .ok_or_else(|| ScriptError::runtime(span, "push expects (list, value)"))?;
            Arc::make_mut(items).push(v);
            Ok(VmValue::Null)
        }
        (MutOp::Pop, VmValue::List(items)) => {
            Ok(Arc::make_mut(items).pop().unwrap_or(VmValue::Null))
        }
        (MutOp::Insert, VmValue::Map(map)) => {
            let [k, v] = rest else {
                return Err(ScriptError::runtime(span, "insert expects (map, key, value)"));
            };
            let key =
                k.as_str().ok_or_else(|| ScriptError::runtime(span, "map keys must be strings"))?;
            Arc::make_mut(map).insert(key.to_string(), v.clone());
            Ok(VmValue::Null)
        }
        (MutOp::Delete, VmValue::Map(map)) => {
            let k = rest
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| ScriptError::runtime(span, "delete expects (map, key)"))?
                .to_string();
            Ok(Arc::make_mut(map).remove(&k).unwrap_or(VmValue::Null))
        }
        (op, other) => Err(ScriptError::runtime(
            span,
            format!("{} cannot operate on a {}", op.name(), other.type_name()),
        )),
    }
}

fn read_index(base: &VmValue, index: &VmValue, span: Span) -> Result<VmValue, ScriptError> {
    match (base, index) {
        (VmValue::List(items), VmValue::Int(i)) => {
            let idx = normalize_index(*i, items.len());
            idx.and_then(|i| items.get(i))
                .cloned()
                .ok_or_else(|| ScriptError::runtime(span, format!("list index {i} out of bounds")))
        }
        (VmValue::Map(map), VmValue::Str(k)) => Ok(map.get(&**k).cloned().unwrap_or(VmValue::Null)),
        (VmValue::Str(s), VmValue::Int(i)) => {
            let chars: Vec<char> = s.chars().collect();
            let idx = normalize_index(*i, chars.len());
            idx.and_then(|i| chars.get(i))
                .map(|c| VmValue::Str(Arc::from(c.to_string().as_str())))
                .ok_or_else(|| {
                    ScriptError::runtime(span, format!("string index {i} out of bounds"))
                })
        }
        (b, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

fn index_mut<'v>(
    base: &'v mut VmValue,
    index: &VmValue,
    span: Span,
) -> Result<&'v mut VmValue, ScriptError> {
    match (base, index) {
        (VmValue::List(items), VmValue::Int(i)) => {
            let items = Arc::make_mut(items);
            let len = items.len();
            normalize_index(*i, len)
                .and_then(move |idx| items.get_mut(idx))
                .ok_or_else(|| ScriptError::runtime(span, format!("list index {i} out of bounds")))
        }
        (VmValue::Map(map), VmValue::Str(k)) => Arc::make_mut(map)
            .get_mut(&**k)
            .ok_or_else(|| ScriptError::runtime(span, format!("missing map key `{k}`"))),
        (b, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index {} with {}", b.type_name(), i.type_name()),
        )),
    }
}

fn assign_index(
    container: &mut VmValue,
    index: &VmValue,
    value: VmValue,
    span: Span,
) -> Result<(), ScriptError> {
    match (container, index) {
        (VmValue::List(items), VmValue::Int(i)) => {
            let items = Arc::make_mut(items);
            let len = items.len();
            let idx = normalize_index(*i, len).ok_or_else(|| {
                ScriptError::runtime(span, format!("list index {i} out of bounds"))
            })?;
            items[idx] = value;
            Ok(())
        }
        (VmValue::Map(map), VmValue::Str(k)) => {
            Arc::make_mut(map).insert(k.to_string(), value);
            Ok(())
        }
        (c, i) => Err(ScriptError::runtime(
            span,
            format!("cannot index-assign {} with {}", c.type_name(), i.type_name()),
        )),
    }
}

fn normalize_index(i: i64, len: usize) -> Option<usize> {
    if i >= 0 {
        let idx = i as usize;
        (idx < len).then_some(idx)
    } else {
        let back = (-i) as usize;
        (back <= len).then(|| len - back)
    }
}

fn add_values(l: &VmValue, r: &VmValue, span: Span) -> Result<VmValue, ScriptError> {
    match (l, r) {
        (VmValue::Int(a), VmValue::Int(b)) => Ok(VmValue::Int(a.wrapping_add(*b))),
        (VmValue::Str(a), VmValue::Str(b)) => {
            Ok(VmValue::Str(Arc::from(format!("{a}{b}").as_str())))
        }
        (VmValue::Str(a), b) => Ok(VmValue::Str(Arc::from(format!("{a}{b}").as_str()))),
        (a, VmValue::Str(b)) => Ok(VmValue::Str(Arc::from(format!("{a}{b}").as_str()))),
        (VmValue::List(a), VmValue::List(b)) => {
            let mut out = (**a).clone();
            out.extend(b.iter().cloned());
            Ok(VmValue::List(Arc::new(out)))
        }
        (a, b) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(VmValue::Float(x + y)),
            _ => Err(ScriptError::runtime(
                span,
                format!("cannot add {} and {}", a.type_name(), b.type_name()),
            )),
        },
    }
}

fn arith(op: BinOp, l: &VmValue, r: &VmValue, span: Span) -> Result<VmValue, ScriptError> {
    if let (VmValue::Int(a), VmValue::Int(b)) = (l, r) {
        return match op {
            BinOp::Sub => Ok(VmValue::Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(VmValue::Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(ScriptError::runtime(span, "division by zero"))
                } else {
                    Ok(VmValue::Int(a.wrapping_div(*b)))
                }
            }
            BinOp::Rem => {
                if *b == 0 {
                    Err(ScriptError::runtime(span, "remainder by zero"))
                } else {
                    Ok(VmValue::Int(a.wrapping_rem(*b)))
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => match op {
            BinOp::Sub => Ok(VmValue::Float(x - y)),
            BinOp::Mul => Ok(VmValue::Float(x * y)),
            BinOp::Div => {
                if y == 0.0 {
                    Err(ScriptError::runtime(span, "division by zero"))
                } else {
                    Ok(VmValue::Float(x / y))
                }
            }
            BinOp::Rem => Ok(VmValue::Float(x % y)),
            _ => unreachable!(),
        },
        _ => Err(ScriptError::runtime(
            span,
            format!("cannot apply `{}` to {} and {}", op.symbol(), l.type_name(), r.type_name()),
        )),
    }
}

fn compare(op: BinOp, l: &VmValue, r: &VmValue, span: Span) -> Result<VmValue, ScriptError> {
    let ord = match (l, r) {
        (VmValue::Str(a), VmValue::Str(b)) => a.cmp(b),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(x), Some(y)) => {
                x.partial_cmp(&y).ok_or_else(|| ScriptError::runtime(span, "cannot compare NaN"))?
            }
            _ => {
                return Err(ScriptError::runtime(
                    span,
                    format!(
                        "cannot compare {} and {} with `{}`",
                        l.type_name(),
                        r.type_name(),
                        op.symbol()
                    ),
                ))
            }
        },
    };
    let result = match op {
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    Ok(VmValue::Bool(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp::{Interpreter, NoHost};
    use crate::parse;

    fn compile_src(src: &str) -> Arc<CompiledScript> {
        Arc::new(compile(&parse(src).unwrap()))
    }

    fn run(src: &str, func: &str, args: Vec<Value>) -> Result<Value, ScriptError> {
        Vm::new(compile_src(src)).call(&mut NoHost, func, args)
    }

    fn run1(src: &str) -> Value {
        run(src, "main", vec![]).unwrap()
    }

    /// Run one program through interpreter and VM and require identical
    /// results, errors, fuel use, and print output.
    fn assert_parity(src: &str) {
        let program = parse(src).unwrap();
        let mut interp = Interpreter::new(&program);
        let i = interp.call(&mut NoHost, "main", vec![]);
        let mut vm = Vm::new(Arc::new(compile(&program)));
        let v = vm.call(&mut NoHost, "main", vec![]);
        assert_eq!(i, v, "result parity for {src:?}");
        assert_eq!(interp.fuel_used(), vm.fuel_used(), "fuel parity for {src:?}");
        assert_eq!(interp.output, vm.output, "output parity for {src:?}");
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run1("fn main() { return 1 + 2 * 3; }"), Value::Int(7));
        assert_eq!(run1("fn main() { return (1 + 2) * 3; }"), Value::Int(9));
        assert_eq!(run1("fn main() { return 7 / 2; }"), Value::Int(3));
        assert_eq!(run1("fn main() { return 7.0 / 2; }"), Value::Float(3.5));
        assert_eq!(run1("fn main() { return 7 % 3; }"), Value::Int(1));
        assert_eq!(run1("fn main() { return -3 + 1; }"), Value::Int(-2));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(run("fn main() { return 1 / 0; }", "main", vec![]).is_err());
        assert!(run("fn main() { return 1 % 0; }", "main", vec![]).is_err());
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(run1(r#"fn main() { return "a" + "b" + 1; }"#), Value::Str("ab1".into()));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run1("fn main() { return 1 < 2 && 2 <= 2; }"), Value::Bool(true));
        assert_eq!(run1(r#"fn main() { return "a" < "b"; }"#), Value::Bool(true));
        assert_eq!(run1("fn main() { return !(1 == 1.0); }"), Value::Bool(false));
        assert_eq!(run1("fn main() { return 1 > 2 || 3 > 2; }"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        assert_eq!(run1("fn main() { return false && 1 / 0 == 1; }"), Value::Bool(false));
        assert_eq!(run1("fn main() { return true || 1 / 0 == 1; }"), Value::Bool(true));
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run1("fn main() { let x = 1; x = x + 5; return x; }"), Value::Int(6));
        assert!(run("fn main() { y = 3; return y; }", "main", vec![]).is_err());
    }

    #[test]
    fn lists_and_maps() {
        assert_eq!(
            run1("fn main() { let xs = [1, 2, 3]; xs[1] = 9; return xs[1] + xs[-1]; }"),
            Value::Int(12)
        );
        assert_eq!(
            run1(r#"fn main() { let m = {"a": 1}; m["b"] = 2; return m["a"] + m["b"]; }"#),
            Value::Int(3)
        );
        assert_eq!(run1(r#"fn main() { let m = {}; return m["nope"]; }"#), Value::Null);
        assert!(run("fn main() { let xs = [1]; return xs[5]; }", "main", vec![]).is_err());
    }

    #[test]
    fn push_pop_insert_delete() {
        assert_eq!(
            run1("fn main() { let xs = []; push(xs, 1); push(xs, 2); let last = pop(xs); return last + len(xs); }"),
            Value::Int(3)
        );
        assert_eq!(
            run1(
                r#"fn main() { let m = {}; insert(m, "k", 5); let v = delete(m, "k"); return v + len(m); }"#
            ),
            Value::Int(5)
        );
        assert_eq!(
            run1(r#"fn main() { let m = {"xs": []}; push(m["xs"], 7); return m["xs"][0]; }"#),
            Value::Int(7)
        );
        assert!(run("fn main() { push([1], 2); return 0; }", "main", vec![]).is_err());
    }

    #[test]
    fn loops_and_control_flow() {
        assert_eq!(
            run1("fn main() { let s = 0; for x in [1, 2, 3, 4] { if x == 3 { continue; } s = s + x; } return s; }"),
            Value::Int(7)
        );
        assert_eq!(
            run1("fn main() { let s = 0; let i = 0; while true { i = i + 1; if i > 4 { break; } s = s + i; } return s; }"),
            Value::Int(10)
        );
        assert_eq!(
            run1(
                r#"fn main() { let ks = ""; for k in {"b": 1, "a": 2} { ks = ks + k; } return ks; }"#
            ),
            Value::Str("ab".into())
        );
        assert_eq!(
            run1(r#"fn main() { let n = 0; for c in "hey" { n = n + 1; } return n; }"#),
            Value::Int(3)
        );
    }

    #[test]
    fn break_leaves_a_for_loop_cleanly() {
        // A `break` inside `for` must pop the iterator so an enclosing loop's
        // iteration state is untouched.
        assert_eq!(
            run1(
                "fn main() { let s = 0; for x in [1, 2] { for y in [10, 20, 30] { if y == 20 { break; } s = s + y; } s = s + x; } return s; }"
            ),
            Value::Int(23)
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        let src = r#"
            fn fib(n) {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(10); }
        "#;
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(55));
    }

    #[test]
    fn arity_mismatch_errors() {
        let err = run("fn f(a, b) { return a; } fn main() { return f(1); }", "main", vec![]);
        assert!(matches!(err, Err(ScriptError::Runtime { .. })));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let script = compile_src("fn main() { while true { } return 1; }");
        let mut vm = Vm::new(script).with_fuel(10_000);
        let err = vm.call(&mut NoHost, "main", vec![]);
        assert_eq!(err, Err(ScriptError::OutOfFuel));
        // Tick-exact with the tree-walker: the full budget reads as used.
        assert_eq!(vm.fuel_used(), 10_000);
    }

    #[test]
    fn unbounded_recursion_traps_instead_of_overflowing_the_stack() {
        let script = compile_src("fn f(n) { return f(n + 1); } fn main() { return f(0); }");
        let mut vm = Vm::new(script);
        let err = vm.call(&mut NoHost, "main", vec![]);
        assert_eq!(err, Err(ScriptError::RecursionLimit { depth: DEFAULT_MAX_DEPTH }));
        assert_eq!(err.unwrap_err().kind(), "recursion");
    }

    #[test]
    fn depth_resets_between_calls_and_legal_recursion_fits() {
        let src = r#"
            fn down(n) { if n == 0 { return 0; } return down(n - 1); }
            fn main() { return down(40); }
        "#;
        let script = compile_src(src);
        let mut vm = Vm::new(Arc::clone(&script));
        for _ in 0..5 {
            assert_eq!(vm.call(&mut NoHost, "main", vec![]).unwrap(), Value::Int(0));
        }
        let mut tight = Vm::new(script).with_max_depth(16);
        assert_eq!(
            tight.call(&mut NoHost, "main", vec![]),
            Err(ScriptError::RecursionLimit { depth: 16 })
        );
    }

    #[test]
    fn fuel_resets_between_calls() {
        let script = compile_src("fn main() { return 1; }");
        let mut vm = Vm::new(script).with_fuel(100);
        for _ in 0..10 {
            assert_eq!(vm.call(&mut NoHost, "main", vec![]).unwrap(), Value::Int(1));
        }
    }

    #[test]
    fn print_collects_output() {
        let script = compile_src(r#"fn main() { print("x =", 1); print([2]); return null; }"#);
        let mut vm = Vm::new(script);
        vm.call(&mut NoHost, "main", vec![]).unwrap();
        assert_eq!(vm.output, vec!["x = 1", "[2]"]);
    }

    #[test]
    fn host_calls_reach_the_host() {
        struct EchoHost;
        impl Host for EchoHost {
            fn call_llm(&mut self, prompt: &str) -> Result<String, String> {
                Ok(format!("echo:{prompt}"))
            }
            fn call_module(&mut self, name: &str, input: Value) -> Result<Value, String> {
                Ok(Value::Str(format!("{name}<{input}>")))
            }
            fn call_tool(&mut self, _name: &str, args: &[Value]) -> Result<Value, String> {
                Ok(Value::Int(args.len() as i64))
            }
        }
        let src = r#"
            fn main() {
                let a = call_llm("hi");
                let b = call_module("upper", "x");
                let c = call_tool("count", 1, 2, 3);
                return a + "|" + b + "|" + c;
            }
        "#;
        let result = Vm::new(compile_src(src)).call(&mut EchoHost, "main", vec![]).unwrap();
        assert_eq!(result, Value::Str("echo:hi|upper<x>|3".into()));
    }

    #[test]
    fn no_host_rejects_host_calls() {
        let err = run(r#"fn main() { return call_llm("hi"); }"#, "main", vec![]);
        assert!(matches!(err, Err(ScriptError::Host { .. })));
    }

    #[test]
    fn unknown_function_and_variable_errors() {
        assert!(run("fn main() { return nope(); }", "main", vec![]).is_err());
        assert!(run("fn main() { return nope; }", "main", vec![]).is_err());
    }

    #[test]
    fn user_functions_shadow_builtins() {
        let src = "fn len(x) { return 42; } fn main() { return len([1]); }";
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(42));
    }

    #[test]
    fn arguments_are_passed_by_value() {
        let src = r#"
            fn mutate(xs) { push(xs, 99); return xs; }
            fn main() { let a = [1]; mutate(a); return len(a); }
        "#;
        assert_eq!(run(src, "main", vec![]).unwrap(), Value::Int(1));
    }

    #[test]
    fn fuel_accounting_matches_the_interpreter_tick_for_tick() {
        for src in [
            "fn main() { return 1 + 2 * 3; }",
            "fn main() { let s = 0; let i = 0; while i < 50 { i = i + 1; s = s + i; } return s; }",
            "fn main() { let s = 0; for x in [1, 2, 3, 4, 5] { s = s + x; } return s; }",
            "fn main() { let s = 0; for x in [1, 2, 3] { if x == 2 { continue; } s = s + x; } return s; }",
            "fn main() { for x in [1, 2, 3] { if x == 2 { break; } } return 0; }",
            "fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } fn main() { return fib(12); }",
            r#"fn main() { let m = {"a": 1, "b": 2}; let out = []; for k in m { push(out, m[k]); } return out; }"#,
            "fn main() { return false && 1 / 0 == 1; }",
            "fn main() { return true || 1 / 0 == 1; }",
            r#"fn main() { print("a", 1); print([1, 2.0, "x"]); return null; }"#,
            "fn main() { let xs = [5, 3, 1]; return join(sort(xs), \"-\"); }",
            "fn main() { return 1 / 0; }",
            "fn main() { let xs = [1]; return xs[9]; }",
            "fn main() { while true { } return 0; }",
            "fn f(n) { return f(n + 1); } fn main() { return f(0); }",
        ] {
            let program = parse(src).unwrap();
            let mut interp = Interpreter::new(&program).with_fuel(5_000);
            let i = interp.call(&mut NoHost, "main", vec![]);
            let mut vm = Vm::new(Arc::new(compile(&program))).with_fuel(5_000);
            let v = vm.call(&mut NoHost, "main", vec![]);
            assert_eq!(i, v, "result parity for {src:?}");
            assert_eq!(interp.fuel_used(), vm.fuel_used(), "fuel parity for {src:?}");
            assert_eq!(interp.output, vm.output, "output parity for {src:?}");
        }
    }

    #[test]
    fn error_messages_match_the_interpreter() {
        for src in [
            "fn main() { return 1 / 0; }",
            "fn main() { return nope; }",
            "fn main() { return nope(); }",
            "fn main() { y = 3; return 0; }",
            "fn main() { return -\"x\"; }",
            "fn main() { return 1 < \"a\"; }",
            "fn main() { return [1] - 2; }",
            "fn main() { return {} + 1; }",
            "fn main() { let xs = [1]; return xs[5]; }",
            "fn main() { let s = \"ab\"; return s[7]; }",
            "fn main() { return 3[0]; }",
            "fn main() { let m = {}; push(m, 1); return 0; }",
            "fn main() { let xs = []; insert(xs, \"k\", 1); return 0; }",
            "fn main() { push([1], 2); return 0; }",
            "fn main() { let m = {}; push(m[\"k\"], 1); return 0; }",
            "fn main() { let xs = []; push(xs); return 0; }",
            "fn main() { for x in 3 { } return 0; }",
            "fn main() { let m = {}; m[0] = 1; return 0; }",
            "fn f(a, b) { return a; } fn main() { return f(1); }",
            "fn main() { return len(); }",
            "fn main() { return call_module(\"m\"); }",
            "fn main() { return call_llm(1); }",
            "fn main() { return call_tool(1); }",
        ] {
            let program = parse(src).unwrap();
            let i = Interpreter::new(&program).call(&mut NoHost, "main", vec![]);
            let v = Vm::new(Arc::new(compile(&program))).call(&mut NoHost, "main", vec![]);
            let ie = i.expect_err("interpreter should error");
            let ve = v.expect_err("vm should error");
            assert_eq!(ie.to_string(), ve.to_string(), "message parity for {src:?}");
        }
    }

    #[test]
    fn value_display_matches_across_representations() {
        let samples = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.0),
            Value::Float(2.5),
            Value::Str("hi".into()),
            Value::List(vec![Value::Str("a".into()), Value::Int(1), Value::Float(3.0)]),
            Value::Map(
                [("k".to_string(), Value::Str("v".into())), ("n".to_string(), Value::Int(2))]
                    .into_iter()
                    .collect(),
            ),
        ];
        for v in samples {
            let vm = VmValue::from_value(v.clone());
            assert_eq!(v.to_string(), vm.to_string());
            assert_eq!(vm.to_value(), v);
        }
    }

    #[test]
    fn parity_on_structured_workloads() {
        assert_parity(
            r#"
            fn clean(rec) {
                let out = {};
                for k in rec {
                    let v = rec[k];
                    if typeof(v) == "str" { insert(out, k, trim(v)); }
                    if typeof(v) != "str" { insert(out, k, v); }
                }
                return out;
            }
            fn main() {
                let recs = [{"name": "  a  ", "n": 1}, {"name": "b ", "n": 2}];
                let cleaned = [];
                for r in recs { push(cleaned, clean(r)); }
                return cleaned;
            }
            "#,
        );
        assert_parity(
            r#"
            fn main() {
                let acc = [];
                let i = 0;
                while i < 20 {
                    if i % 3 == 0 { push(acc, i * i); }
                    i = i + 1;
                }
                return join(acc, ",");
            }
            "#,
        );
    }
}
