//! The serving engine: a bounded two-lane job queue, a worker pool over
//! per-worker pipeline instances, request deduplication, and graceful
//! shutdown.
//!
//! Life of a request:
//!
//! 1. [`PipelineServer::submit`] fingerprints the inputs. A result-cache hit
//!    returns a completed handle immediately; a duplicate of an in-flight
//!    job attaches to that job's completion cell; otherwise the job enters
//!    the bounded queue — or is rejected with [`ServeError::Full`].
//! 2. A worker dequeues (high-priority lane first), replicates the compiled
//!    pipeline if its cached instance is stale, and executes it on a fresh
//!    [`ExecContext`] whose LLM is a per-job [`UsageMeter`].
//! 3. Completion wakes every attached waiter, updates the dedup tables, and
//!    records metrics.

use crate::error::ServeError;
use crate::fingerprint::{fingerprint_inputs, job_key};
use crate::job::{JobCore, JobHandle, JobId, JobOutput};
use crate::metrics::{Metrics, MetricsSnapshot, UsageMeter};
use crate::registry::PipelineRegistry;
use crate::supervisor::{supervisor_loop, EscapePanic, SupervisePolicy, Supervision, WorkerGuard};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use lingua_core::{Compiler, ContextFactory, CoreError, Data, Executor, PhysicalPipeline};
use lingua_durable::{
    FinishedJob, Journal, JournalTuning, PendingJob, RecoverySnapshot, StreamCheckpoint,
};
use lingua_gateway::{BatchConfig, Batcher, Gateway};
use lingua_llm_sim::hotpath::DEFAULT_SHARDS;
use lingua_llm_sim::{CancelReason, CancelScope, CancelToken, LlmService, ShardedLru, Usage};
use lingua_trace::{ManualSpan, SpanKind};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing pipelines. `None` sizes the pool to
    /// [`std::thread::available_parallelism`]; the resolved count is surfaced
    /// in [`MetricsSnapshot::workers`].
    pub workers: Option<usize>,
    /// Bounded capacity of each queue lane; submissions beyond it are
    /// rejected with [`ServeError::Full`].
    pub queue_capacity: usize,
    /// Coalesce identical in-flight submissions onto one execution.
    pub dedup_inflight: bool,
    /// Completed results cached in a sharded LRU keyed by
    /// `job_key(pipeline, input fingerprint)`, capped at this many entries.
    /// `0` disables the result cache.
    pub result_cache_capacity: usize,
    /// Default queue timeout applied to jobs that don't set their own.
    pub default_timeout: Option<Duration>,
    /// Times the supervisor will restart any one crashed worker slot before
    /// abandoning it (see `DESIGN.md` §"Supervised execution").
    pub max_worker_restarts: u32,
    /// Base delay before a crashed worker is restarted; doubles per restart
    /// of that slot.
    pub restart_backoff: Duration,
    /// Supervisor tick interval (watchdog + restart passes).
    pub supervisor_tick: Duration,
    /// A job is "stuck" once it has run this many times its deadline budget
    /// without heartbeat progress; the watchdog then nudges it with a
    /// cooperative cancel. Jobs without a deadline are never flagged.
    pub stuck_multiplier: u32,
    /// Streaming-engine knobs, when this server backs a `lingua-stream`
    /// engine. Validated here so a misconfigured stream fails at `start()`
    /// with a typed [`InvalidConfig`] instead of silently stalling (a window
    /// that never closes looks exactly like a slow stream from the outside).
    pub stream: Option<StreamTuning>,
    /// Continuous micro-batching knobs. When set, `start()` wraps the
    /// factory's LLM service in a [`Batcher`] so completions from
    /// concurrent jobs share batched backend calls; its counters surface
    /// in [`MetricsSnapshot::batch`]. `None` leaves the LLM path
    /// untouched.
    pub batch: Option<BatchTuning>,
    /// Write-ahead journaling (`lingua-durable`). When set, `start()`
    /// replays the journal — restoring finished results into the result
    /// cache, the billed ledger into the LLM service, and queued-but-
    /// unfinished jobs for [`PipelineServer::resume_recovered`] — and every
    /// job lifecycle event is journaled before its effect becomes
    /// observable. `None` keeps the server purely in-memory.
    pub journal: Option<JournalTuning>,
}

/// Event-time knobs for a windowed streaming engine riding this server.
///
/// All quantities are in *event-time ticks* — the logical timestamps stamped
/// on stream records — not wall time, so a seeded replay closes the same
/// windows at the same points regardless of host speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTuning {
    /// Window length in event-time ticks.
    pub window: u64,
    /// Slide between consecutive window starts; `slide == window` makes the
    /// windows tumbling, `slide < window` sliding (records land in
    /// `window / slide` windows). Must not exceed `window`.
    pub slide: u64,
    /// Ingests between watermark recomputations. `1` re-derives the
    /// watermark on every record; larger values batch the (cheap) window
    /// close scan.
    pub watermark_interval: u64,
}

impl Default for StreamTuning {
    fn default() -> Self {
        StreamTuning { window: 64, slide: 32, watermark_interval: 8 }
    }
}

impl StreamTuning {
    /// Check the streaming knobs (see [`ServeConfig::validate`]).
    pub fn validate(&self) -> Result<(), ServeError> {
        use crate::error::InvalidConfig;
        if self.window == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroWindow));
        }
        if self.slide == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroSlide));
        }
        if self.slide > self.window {
            return Err(ServeError::InvalidConfig(InvalidConfig::SlideExceedsWindow {
                slide: self.slide,
                window: self.window,
            }));
        }
        if self.watermark_interval == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroWatermarkInterval));
        }
        Ok(())
    }
}

/// Micro-batching knobs for the continuous batcher riding this server.
///
/// These mirror [`BatchConfig`] one field for one field; the serving layer
/// keeps its own copy so a [`ServeConfig`] stays a plain value describing
/// *intent*, validated here with typed [`InvalidConfig`] reasons before any
/// batcher exists. Unlike the gateway-layer batcher — which tolerates a zero
/// window by degenerating to per-call flushing — the serving layer rejects
/// zero knobs outright: asking for batching and configuring it to never
/// batch is a bug worth failing `start()` over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTuning {
    /// Flush a batch as soon as this many members are pending.
    pub max_batch_size: usize,
    /// Flush when the oldest pending member has waited this long.
    pub max_wait: Duration,
}

impl Default for BatchTuning {
    fn default() -> Self {
        BatchTuning { max_batch_size: 8, max_wait: Duration::from_millis(2) }
    }
}

impl BatchTuning {
    /// Check the batching knobs (see [`ServeConfig::validate`]).
    pub fn validate(&self) -> Result<(), ServeError> {
        use crate::error::InvalidConfig;
        if self.max_batch_size == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroBatchSize));
        }
        if self.max_wait.is_zero() {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroBatchWindow));
        }
        Ok(())
    }

    /// The gateway-layer batcher configuration this tuning resolves to.
    pub fn to_config(&self) -> BatchConfig {
        BatchConfig { max_batch_size: self.max_batch_size, max_wait: self.max_wait }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: None,
            queue_capacity: 256,
            dedup_inflight: true,
            result_cache_capacity: 1024,
            default_timeout: None,
            max_worker_restarts: 8,
            restart_backoff: Duration::from_millis(2),
            supervisor_tick: Duration::from_millis(2),
            stuck_multiplier: 4,
            stream: None,
            batch: None,
            journal: None,
        }
    }
}

impl ServeConfig {
    /// The worker-pool size this config resolves to: the explicit setting,
    /// else the machine's available parallelism.
    pub fn resolved_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(4))
    }

    /// Reject unusable configurations up front: zero workers would hang
    /// every job, a zero-capacity queue would reject every submission, a
    /// zero default deadline would time every job out before it ran, and
    /// broken streaming knobs would stall a stream forever. Each rejection
    /// is a typed [`InvalidConfig`] naming the knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        use crate::error::InvalidConfig;
        if self.workers == Some(0) {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroWorkers));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroQueueCapacity));
        }
        if self.default_timeout == Some(Duration::ZERO) {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroDefaultTimeout));
        }
        if self.supervisor_tick.is_zero() {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroSupervisorTick));
        }
        if self.stuck_multiplier == 0 {
            return Err(ServeError::InvalidConfig(InvalidConfig::ZeroStuckMultiplier));
        }
        if let Some(stream) = &self.stream {
            stream.validate()?;
        }
        if let Some(batch) = &self.batch {
            batch.validate()?;
        }
        if let Some(journal) = &self.journal {
            if journal.checkpoint_interval == 0 {
                return Err(ServeError::InvalidConfig(InvalidConfig::ZeroCheckpointInterval));
            }
        }
        Ok(())
    }

    fn supervise_policy(&self) -> SupervisePolicy {
        SupervisePolicy {
            max_worker_restarts: self.max_worker_restarts,
            restart_backoff: self.restart_backoff,
            tick: self.supervisor_tick,
            stuck_multiplier: self.stuck_multiplier,
        }
    }
}

/// Queue lane selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    #[default]
    Normal,
    /// Drained before any normal-priority work.
    High,
}

/// A pipeline-execution request.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Registry id of the pipeline to run.
    pub pipeline: String,
    /// Initial variable environment for the run.
    pub inputs: BTreeMap<String, Data>,
    pub priority: Priority,
    /// Maximum time the job may wait in the queue (overrides the config
    /// default). Exceeding it fails the job with [`ServeError::Timeout`].
    pub timeout: Option<Duration>,
}

impl SubmitRequest {
    pub fn new(pipeline: impl Into<String>) -> SubmitRequest {
        SubmitRequest {
            pipeline: pipeline.into(),
            inputs: BTreeMap::new(),
            priority: Priority::Normal,
            timeout: None,
        }
    }

    pub fn input(mut self, name: impl Into<String>, value: Data) -> SubmitRequest {
        self.inputs.insert(name.into(), value);
        self
    }

    pub fn priority(mut self, priority: Priority) -> SubmitRequest {
        self.priority = priority;
        self
    }

    pub fn timeout(mut self, timeout: Duration) -> SubmitRequest {
        self.timeout = Some(timeout);
        self
    }
}

/// State shared between the submitter and every worker.
struct Shared {
    factory: ContextFactory,
    registry: Arc<PipelineRegistry>,
    metrics: Arc<Metrics>,
    /// Jobs admitted but not yet finished, keyed by the exact
    /// `(pipeline id, input fingerprint)` pair — the pipeline string is kept
    /// verbatim so a fingerprint collision across pipelines can never attach
    /// a submission to the wrong in-flight job. Later identical submissions
    /// attach to the same completion cell.
    in_flight: Mutex<HashMap<(String, u64), Arc<JobCore>>>,
    /// Completed outputs: the same lock-striped sharded LRU as the LLM hot
    /// path, keyed by the combined 64-bit `job_key(pipeline, fingerprint)` —
    /// hits never touch the in-flight mutex. The u64 key accepts a
    /// birthday-bound (~2^-64 per pair) collision risk in exchange for the
    /// compact sharded layout; the input fingerprint itself is already a
    /// 64-bit hash, so the cache key adds no new failure mode beyond it.
    results: ShardedLru<Arc<JobOutput>>,
    config: ServeConfig,
    /// Gateway backing the factory's LLM service, when one is attached; its
    /// resilience counters are folded into [`MetricsSnapshot`].
    gateway: Mutex<Option<Arc<Gateway>>>,
    /// Micro-batcher wrapped around the LLM service, when batching is on;
    /// its counters are folded into [`MetricsSnapshot`].
    batcher: Mutex<Option<Arc<Batcher>>>,
    /// Write-ahead journal, when durability is configured. Every lifecycle
    /// event is appended here *before* its effect becomes observable.
    journal: Option<Arc<Journal>>,
    /// What `start()` recovered from the journal and how resubmission of it
    /// is going; surfaced in [`MetricsSnapshot::recovery`].
    recovery: Mutex<RecoveryState>,
}

/// Recovery bookkeeping shared between `start()`, `submit()`, and
/// `resume_recovered()`.
#[derive(Default)]
struct RecoveryState {
    /// Operator-visible counters; `Some` exactly when a journal replay ran.
    snapshot: Option<RecoverySnapshot>,
    /// Journaled-but-unfinished jobs awaiting [`PipelineServer::resume_recovered`].
    pending: Vec<PendingJob>,
    /// Result-cache keys restored from journaled finished jobs; a cache hit
    /// on one of these is a crash-retry answered without re-execution and
    /// counts toward `skipped_duplicates`.
    restored: HashSet<u64>,
    /// Stream-engine state recovered from the journal, for a
    /// `lingua-stream` engine attaching to this server.
    stream: StreamCheckpoint,
}

struct QueueItem {
    core: Arc<JobCore>,
    pipeline: String,
    inputs: BTreeMap<String, Data>,
    /// Input fingerprint, when dedup/result caching is on; combined with
    /// `pipeline` it addresses both the in-flight table and the result cache.
    fingerprint: Option<u64>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// The job's `serve_job` span, begun at submission; the worker (or the
    /// timeout path) closes it with the path the job actually took.
    span: Option<ManualSpan>,
}

/// The embedded pipeline-serving engine.
pub struct PipelineServer {
    shared: Arc<Shared>,
    high_tx: Option<Sender<QueueItem>>,
    normal_tx: Option<Sender<QueueItem>>,
    /// Receiver clones kept for the shutdown drain: if the whole pool died
    /// (every slot crashed past its restart budget), leftover queue items
    /// are failed here instead of hanging their waiters.
    high_rx: Receiver<QueueItem>,
    normal_rx: Receiver<QueueItem>,
    supervision: Arc<Supervision>,
    supervisor: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

/// Spawn the worker thread for `index`. Used for the initial pool and by the
/// supervisor for restarts; failures surface as [`ServeError::Spawn`].
fn spawn_worker(
    shared: &Arc<Shared>,
    supervision: &Arc<Supervision>,
    high_rx: &Receiver<QueueItem>,
    normal_rx: &Receiver<QueueItem>,
    index: usize,
) -> Result<JoinHandle<()>, ServeError> {
    let shared = Arc::clone(shared);
    let supervision = Arc::clone(supervision);
    let high_rx = high_rx.clone();
    let normal_rx = normal_rx.clone();
    std::thread::Builder::new()
        .name(format!("lingua-serve-{index}"))
        .spawn(move || worker_loop(&shared, &supervision, index, &high_rx, &normal_rx))
        .map_err(|err| ServeError::Spawn { reason: err.to_string() })
}

impl PipelineServer {
    /// Start the worker pool. `factory` supplies the shared LLM service and
    /// tool registry every job runs against. The configuration is validated
    /// first; see [`ServeConfig::validate`].
    pub fn start(
        factory: ContextFactory,
        config: ServeConfig,
    ) -> Result<PipelineServer, ServeError> {
        config.validate()?;
        // Open (and replay) the journal before anything else: recovery must
        // finish restoring the result cache and the ledger before the first
        // submission can race it.
        let opened = match &config.journal {
            Some(tuning) => {
                let (journal, recovered) = Journal::open(tuning.clone())
                    .map_err(|err| ServeError::Journal { reason: err.to_string() })?;
                Some((Arc::new(journal), recovered))
            }
            None => None,
        };
        // Batching wraps the factory's LLM *before* the factory is stored:
        // every per-job UsageMeter then sits on top of the batcher, so jobs
        // meter their own usage while their completions join shared
        // micro-batches underneath.
        let (factory, batcher) = match &config.batch {
            Some(tuning) => {
                let tracer = factory.tracer().clone();
                let batcher =
                    Arc::new(Batcher::new(factory.llm(), tuning.to_config()).with_tracer(tracer));
                let wrapped =
                    factory.with_llm(Arc::clone(&batcher) as Arc<dyn lingua_llm_sim::LlmService>);
                (wrapped, Some(batcher))
            }
            None => (factory, None),
        };
        let registry = Arc::new(PipelineRegistry::new());
        let metrics = Arc::new(Metrics::new());
        let shared = Arc::new(Shared {
            factory,
            registry,
            metrics,
            in_flight: Mutex::new(HashMap::new()),
            results: ShardedLru::new(config.result_cache_capacity, DEFAULT_SHARDS),
            config: config.clone(),
            gateway: Mutex::new(None),
            batcher: Mutex::new(batcher),
            journal: opened.as_ref().map(|(journal, _)| Arc::clone(journal)),
            recovery: Mutex::new(RecoveryState::default()),
        });
        if let Some((_, recovered)) = opened {
            let tracer = shared.factory.tracer();
            let span = tracer.begin(SpanKind::Recovery, "journal_replay", || {
                vec![("replayed".into(), recovered.replayed.to_string())]
            });
            // Finished jobs re-enter the result cache, so a crash retry (or
            // a recovered resubmission) is answered from the journal instead
            // of re-executing — the exactly-once guard.
            let mut restored = HashSet::new();
            for job in &recovered.finished {
                let key = job_key(&job.pipeline, job.fingerprint);
                shared.results.insert(
                    key,
                    Arc::new(JobOutput {
                        env: job.env.clone(),
                        llm: job.llm,
                        wall: Duration::from_micros(job.wall_us),
                    }),
                );
                restored.insert(key);
            }
            // The journaled lifetime bill re-enters the shared ledger (a
            // no-op for services without one), so billing reconciles across
            // the crash: ledger == recovered bill + post-restart bill.
            shared.factory.llm().restore_usage(&recovered.cumulative);
            tracer.end(span, || {
                vec![
                    ("finished_restored".into(), recovered.finished.len().to_string()),
                    ("pending".into(), recovered.pending.len().to_string()),
                    (
                        "corrupt_records_skipped".into(),
                        recovered.corrupt_records_skipped.to_string(),
                    ),
                ]
            });
            *shared.recovery.lock() = RecoveryState {
                snapshot: Some(RecoverySnapshot {
                    replayed: recovered.replayed,
                    resumed_jobs: 0,
                    skipped_duplicates: 0,
                    corrupt_records_skipped: recovered.corrupt_records_skipped,
                }),
                pending: recovered.pending,
                restored,
                stream: recovered.stream,
            };
        }
        let (high_tx, high_rx) = bounded(config.queue_capacity);
        let (normal_tx, normal_rx) = bounded(config.queue_capacity);
        let workers = config.resolved_workers();
        let supervision = Arc::new(Supervision::new(workers));
        // If any spawn fails, unwind what was started: stop the supervisor
        // loop from ever restarting anything, close the queues, and join the
        // workers already running — then report the failure instead of
        // panicking with a half-built pool.
        let abort = |supervision: &Arc<Supervision>, err: ServeError| {
            supervision.shutdown.store(true, Ordering::Release);
            for handle in supervision.take_handles() {
                let _ = handle.join();
            }
            Err(err)
        };
        let mut spawn_err = None;
        for index in 0..workers {
            match spawn_worker(&shared, &supervision, &high_rx, &normal_rx, index) {
                Ok(handle) => supervision.install(index, handle),
                Err(err) => {
                    spawn_err = Some(err);
                    break;
                }
            }
        }
        if let Some(err) = spawn_err {
            drop(high_tx);
            drop(normal_tx);
            return abort(&supervision, err);
        }
        let supervisor = {
            let shared_sup = Arc::clone(&shared);
            let supervision_sup = Arc::clone(&supervision);
            let high_rx_sup = high_rx.clone();
            let normal_rx_sup = normal_rx.clone();
            let policy = config.supervise_policy();
            let tracer = shared.factory.tracer().clone();
            let metrics = Arc::clone(&shared.metrics);
            std::thread::Builder::new().name("lingua-serve-supervisor".into()).spawn(move || {
                supervisor_loop(&supervision_sup, &metrics, &tracer, policy, |index| {
                    spawn_worker(&shared_sup, &supervision_sup, &high_rx_sup, &normal_rx_sup, index)
                })
            })
        };
        let supervisor = match supervisor {
            Ok(handle) => handle,
            Err(err) => {
                drop(high_tx);
                drop(normal_tx);
                return abort(&supervision, ServeError::Spawn { reason: err.to_string() });
            }
        };
        Ok(PipelineServer {
            shared,
            high_tx: Some(high_tx),
            normal_tx: Some(normal_tx),
            high_rx,
            normal_rx,
            supervision,
            supervisor: Some(supervisor),
            next_id: AtomicU64::new(1),
        })
    }

    /// Start with default configuration.
    pub fn with_defaults(factory: ContextFactory) -> PipelineServer {
        // Invariant: `start` only fails on invalid config knobs or a journal
        // I/O error; the defaults validate and configure no journal.
        PipelineServer::start(factory, ServeConfig::default())
            .expect("the default configuration is valid")
    }

    /// Surface a [`Gateway`]'s resilience metrics in this server's
    /// [`MetricsSnapshot`]. Call it with the gateway the context factory's
    /// LLM service is (or wraps); attaching does not change routing — the
    /// factory already decides what the workers call.
    pub fn attach_gateway(&self, gateway: Arc<Gateway>) {
        *self.shared.gateway.lock() = Some(gateway);
    }

    /// Surface a [`Batcher`]'s counters in this server's
    /// [`MetricsSnapshot`]. `start()` attaches one automatically when
    /// [`ServeConfig::batch`] is set; call this only when the factory's LLM
    /// already wraps a batcher you built yourself. Attaching does not
    /// change routing.
    pub fn attach_batcher(&self, batcher: Arc<Batcher>) {
        *self.shared.batcher.lock() = Some(batcher);
    }

    /// The micro-batcher wrapped around the LLM service, when batching is
    /// configured (or attached).
    pub fn batcher(&self) -> Option<Arc<Batcher>> {
        self.shared.batcher.lock().clone()
    }

    /// The write-ahead journal, when durability is configured.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.shared.journal.clone()
    }

    /// What `start()` recovered from the journal (`None` without one), with
    /// resumption counters updated as resubmissions land.
    pub fn recovery(&self) -> Option<RecoverySnapshot> {
        self.shared.recovery.lock().snapshot
    }

    /// Stream-engine state recovered from the journal, for a
    /// `lingua-stream` engine attaching to this server. Default (empty)
    /// state when no journal is configured or the log held no stream
    /// records.
    pub fn recovered_stream(&self) -> StreamCheckpoint {
        self.shared.recovery.lock().stream.clone()
    }

    /// Resubmit every journaled-but-unfinished job recovered at `start()`.
    ///
    /// Call after registering the pipelines those jobs referenced. Jobs
    /// whose results were restored into the cache are skipped (counted as
    /// `skipped_duplicates`); the rest re-enter the queue through the
    /// normal admission path (counted as `resumed_jobs`). Jobs naming an
    /// unregistered pipeline, or bounced by a full queue, stay pending for
    /// a later call (and remain journaled for the next recovery).
    pub fn resume_recovered(&self) -> Result<Vec<JobHandle>, ServeError> {
        let pending = std::mem::take(&mut self.shared.recovery.lock().pending);
        let mut handles = Vec::new();
        let mut stranded = Vec::new();
        let (mut resumed, mut skipped) = (0u64, 0u64);
        for job in pending {
            if !self.shared.registry.contains(&job.pipeline) {
                stranded.push(job);
                continue;
            }
            if self.shared.results.get(job_key(&job.pipeline, job.fingerprint)).is_some() {
                skipped += 1;
                continue;
            }
            let request = SubmitRequest {
                pipeline: job.pipeline.clone(),
                inputs: job.inputs.clone(),
                priority: Priority::Normal,
                timeout: None,
            };
            match self.submit(request) {
                Ok(handle) => {
                    resumed += 1;
                    handles.push(handle);
                }
                Err(ServeError::Full { .. }) => stranded.push(job),
                Err(err) => return Err(err),
            }
        }
        let mut recovery = self.shared.recovery.lock();
        recovery.pending = stranded;
        if let Some(snapshot) = recovery.snapshot.as_mut() {
            snapshot.resumed_jobs += resumed;
            snapshot.skipped_duplicates += skipped;
        }
        Ok(handles)
    }

    /// The pipeline registry (register/unregister/list).
    pub fn registry(&self) -> &PipelineRegistry {
        &self.shared.registry
    }

    /// Register a compiled pipeline under `id`.
    pub fn register_pipeline(
        &self,
        id: impl Into<String>,
        pipeline: PhysicalPipeline,
    ) -> Result<(), ServeError> {
        self.shared.registry.register(id, pipeline)
    }

    /// Compile DSL source (once, against the shared services) and register
    /// it under `id`.
    pub fn register_dsl(
        &self,
        id: impl Into<String>,
        source: &str,
        compiler: &Compiler,
    ) -> Result<(), ServeError> {
        let mut ctx = self.shared.factory.build();
        self.shared.registry.register_dsl(id, source, compiler, &mut ctx)
    }

    /// Size of the worker pool (slots, whether currently alive or not; see
    /// [`MetricsSnapshot::health`] for liveness).
    pub fn worker_count(&self) -> usize {
        self.supervision.slot_count()
    }

    /// Workers currently alive and serving.
    pub fn live_worker_count(&self) -> usize {
        self.supervision.live_workers()
    }

    /// Point-in-time serving metrics (including gateway resilience counters
    /// when a gateway is attached, and worker-pool health).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.shared.metrics.snapshot();
        snapshot.workers = self.supervision.slot_count();
        snapshot.health.live_workers = self.supervision.live_workers();
        snapshot.health.workers_gave_up = self.supervision.gave_up_count();
        if let Some(gateway) = self.shared.gateway.lock().as_ref() {
            let gw = gateway.snapshot();
            snapshot.health.breaker_states = gw
                .backends
                .iter()
                .map(|backend| (backend.name.clone(), backend.breaker_state.to_string()))
                .collect();
            snapshot.gateway = Some(gw);
        }
        if let Some(batcher) = self.shared.batcher.lock().as_ref() {
            snapshot.batch = Some(batcher.snapshot());
        }
        snapshot.recovery = self.shared.recovery.lock().snapshot;
        snapshot.trace = self.shared.factory.tracer().summary();
        snapshot
    }

    /// Submit a job. Returns immediately with a handle; poll or
    /// [`JobHandle::wait`] for the result.
    pub fn submit(&self, request: SubmitRequest) -> Result<JobHandle, ServeError> {
        let metrics = &self.shared.metrics;
        if !self.shared.registry.contains(&request.pipeline) {
            return Err(ServeError::UnknownPipeline(request.pipeline));
        }
        let (high_tx, normal_tx) = match (&self.high_tx, &self.normal_tx) {
            (Some(h), Some(n)) => (h, n),
            _ => return Err(ServeError::Shutdown),
        };
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // A journal needs the fingerprint even with dedup off: it is the
        // durable identity that recovery and the exactly-once guard key on.
        let dedup_enabled = self.shared.config.dedup_inflight
            || self.shared.config.result_cache_capacity > 0
            || self.shared.journal.is_some();
        // Fingerprint the inputs once; the result cache hashes it with the
        // pipeline id into a compact u64 job key, while the in-flight table
        // keeps the pipeline id exact.
        let fp = dedup_enabled.then(|| fingerprint_inputs(&request.inputs));

        let now = Instant::now();
        let timeout = request.timeout.or(self.shared.config.default_timeout);
        let deadline = timeout.map(|t| now + t);
        // The job's cancel token carries the same deadline the queue enforces,
        // so once execution starts the executor, gateway, and script fuel cap
        // all race the identical instant.
        let new_core = || {
            JobCore::with_cancel(match deadline {
                Some(at) => CancelToken::with_deadline(at),
                None => CancelToken::unbounded(),
            })
        };
        let tracer = self.shared.factory.tracer();
        let item =
            |core: Arc<JobCore>, fingerprint: Option<u64>, span: Option<ManualSpan>| QueueItem {
                core,
                pipeline: request.pipeline.clone(),
                inputs: request.inputs.clone(),
                fingerprint,
                enqueued: now,
                deadline,
                span,
            };
        let lane = match request.priority {
            Priority::High => high_tx,
            Priority::Normal => normal_tx,
        };

        if let Some(fp) = fp {
            // Result-cache hits resolve against the sharded LRU without ever
            // touching the in-flight mutex.
            let key = job_key(&request.pipeline, fp);
            if let Some(output) = self.shared.results.get(key) {
                let core = JobCore::finished(Ok(output));
                metrics.cache_hit();
                // A hit served from a journal-restored output is a crash
                // retry the exactly-once guard answered without
                // re-execution; count it for the recovery snapshot.
                if self.shared.journal.is_some() {
                    let mut recovery = self.shared.recovery.lock();
                    if recovery.restored.contains(&key) {
                        if let Some(snapshot) = recovery.snapshot.as_mut() {
                            snapshot.skipped_duplicates += 1;
                        }
                    }
                }
                let span =
                    tracer.begin(SpanKind::ServeJob, &request.pipeline, || job_attrs(id, Some(fp)));
                tracer.end(span, || vec![("path".into(), "cache_hit".into())]);
                return Ok(JobHandle::new(id, core));
            }
            // The in-flight lock is held across the (non-blocking) try_send
            // so that reservation + admission are atomic: workers can't
            // complete-and-remove a key between our lookup and our
            // reservation. (A job finishing between the cache probe above and
            // this lock re-executes at worst — the result cache is fed before
            // the reservation is released, so the window is the probe itself.)
            let flight_key = (request.pipeline.clone(), fp);
            let mut in_flight = self.shared.in_flight.lock();
            if self.shared.config.dedup_inflight {
                if let Some(core) = in_flight.get(&flight_key) {
                    metrics.coalesce();
                    let span = tracer
                        .begin(SpanKind::ServeJob, &request.pipeline, || job_attrs(id, Some(fp)));
                    tracer.end(span, || vec![("path".into(), "dedup_hit".into())]);
                    return Ok(JobHandle::new(id, Arc::clone(core)));
                }
            }
            let core = new_core();
            let span =
                tracer.begin(SpanKind::ServeJob, &request.pipeline, || job_attrs(id, Some(fp)));
            tracer.instant_under(Some(span.id()), SpanKind::ServeJob, "queued", Vec::new);
            // WAL ordering: the accept is durable *before* the job can be
            // observed queued, so a crash at any later instant recovers it.
            // A storage failure refuses the submission — a silently
            // non-durable server would be worse than a rejected job.
            if let Some(journal) = &self.shared.journal {
                journal
                    .record_job_accepted(&request.pipeline, fp, &request.inputs)
                    .map_err(|err| ServeError::Journal { reason: err.to_string() })?;
            }
            // queue_depth is incremented *before* the send: a worker can pop
            // and dequeue() the item the instant try_send returns, and with a
            // saturating decrement an enqueue() landing after it would leave
            // the depth stuck one too high. Rejections undo the increment.
            metrics.enqueue();
            match lane.try_send(item(Arc::clone(&core), Some(fp), Some(span))) {
                Ok(()) => {
                    if self.shared.config.dedup_inflight {
                        in_flight.insert(flight_key, Arc::clone(&core));
                    }
                    metrics.accept();
                    Ok(JobHandle::new(id, core))
                }
                Err(err) => {
                    metrics.dequeue();
                    metrics.reject();
                    // Balance the journal: the accepted record is already
                    // durable, and without this the next recovery would
                    // resurrect a job the caller was told is rejected.
                    if let Some(journal) = &self.shared.journal {
                        let _ = journal.record_job_failed(
                            &request.pipeline,
                            fp,
                            Usage::default(),
                            "rejected_full",
                        );
                    }
                    let (TrySendError::Full(returned) | TrySendError::Disconnected(returned)) = err;
                    if let Some(span) = returned.span {
                        tracer.end(span, || vec![("path".into(), "rejected_full".into())]);
                    }
                    Err(ServeError::Full { capacity: self.shared.config.queue_capacity })
                }
            }
        } else {
            let core = new_core();
            let span = tracer.begin(SpanKind::ServeJob, &request.pipeline, || job_attrs(id, None));
            tracer.instant_under(Some(span.id()), SpanKind::ServeJob, "queued", Vec::new);
            // Same ordering as the fingerprinted branch: enqueue before the
            // send so a racing worker's dequeue can never precede it.
            metrics.enqueue();
            match lane.try_send(item(Arc::clone(&core), None, Some(span))) {
                Ok(()) => {
                    metrics.accept();
                    Ok(JobHandle::new(id, core))
                }
                Err(err) => {
                    metrics.dequeue();
                    metrics.reject();
                    let (TrySendError::Full(returned) | TrySendError::Disconnected(returned)) = err;
                    if let Some(span) = returned.span {
                        tracer.end(span, || vec![("path".into(), "rejected_full".into())]);
                    }
                    Err(ServeError::Full { capacity: self.shared.config.queue_capacity })
                }
            }
        }
    }

    /// Submit and block for the result.
    pub fn run(&self, request: SubmitRequest) -> Result<Arc<JobOutput>, ServeError> {
        self.submit(request)?.wait()
    }

    /// Graceful shutdown: stop admitting, stop the supervisor (no restarts
    /// during teardown), drain queued jobs, join workers. Any job still
    /// queued after the pool exits — possible only if every worker crashed
    /// past its restart budget — is failed with a typed
    /// [`ServeError::ShuttingDown`] rather than left hanging or silently
    /// dropped; with a journal attached those jobs stay journaled as
    /// pending, so the next incarnation resurrects them. Idempotent; also
    /// invoked on drop.
    pub fn shutdown(&mut self) {
        self.supervision.shutdown.store(true, Ordering::Release);
        self.high_tx.take();
        self.normal_tx.take();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Join with the slots lock released — a dying worker's guard takes it.
        for worker in self.supervision.take_handles() {
            let _ = worker.join();
        }
        // Durability before the drain: compact and flush everything the
        // journal holds — including still-queued jobs as pending — so even a
        // crash *during* this teardown loses nothing.
        if let Some(journal) = &self.shared.journal {
            let _ = journal.checkpoint_now();
            let _ = journal.flush();
        }
        let tracer = self.shared.factory.tracer();
        let drain = |rx: &Receiver<QueueItem>| {
            while let Ok(mut item) = rx.try_recv() {
                self.shared.metrics.dequeue();
                self.shared.metrics.fail(Usage::default());
                if let Some(span) = item.span.take() {
                    tracer.end(span, || vec![("path".into(), "shutdown".into())]);
                }
                finish(&self.shared, &item, Err(ServeError::ShuttingDown));
            }
        };
        drain(&self.high_rx);
        drain(&self.normal_rx);
    }
}

impl Drop for PipelineServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Begin-edge attributes for a `serve_job` span.
fn job_attrs(id: JobId, fingerprint: Option<u64>) -> Vec<(String, String)> {
    let mut attrs = vec![("job".to_string(), id.0.to_string())];
    if let Some(fp) = fingerprint {
        attrs.push(("fingerprint".to_string(), format!("{fp:016x}")));
    }
    attrs
}

/// Blocking dequeue honouring priority: the high lane is drained before the
/// normal lane is consulted. Returns `None` once both lanes are closed and
/// empty (shutdown).
fn next_item(high: &Receiver<QueueItem>, normal: &Receiver<QueueItem>) -> Option<QueueItem> {
    loop {
        let mut high_closed = false;
        let mut normal_closed = false;
        match high.try_recv() {
            Ok(item) => return Some(item),
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => high_closed = true,
        }
        match normal.try_recv() {
            Ok(item) => return Some(item),
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => normal_closed = true,
        }
        if high_closed && normal_closed {
            return None;
        }
        // Both lanes empty: block until either produces. Between wake-ups
        // the loop re-checks the high lane first, so priority inversion is
        // bounded to the single message `select!` hands us.
        crossbeam::select! {
            recv(high) -> msg => {
                if let Ok(item) = msg {
                    return Some(item);
                }
            }
            recv(normal) -> msg => {
                if let Ok(item) = msg {
                    return Some(item);
                }
            }
        }
    }
}

fn worker_loop(
    shared: &Arc<Shared>,
    supervision: &Arc<Supervision>,
    index: usize,
    high: &Receiver<QueueItem>,
    normal: &Receiver<QueueItem>,
) {
    // Dropped on every exit — clean drain or escaping panic — marking the
    // slot dead for the supervisor and failing any orphaned job.
    let _guard = WorkerGuard::new(Arc::clone(supervision), Arc::clone(&shared.metrics), index);
    // Per-worker instance cache: (generation, executable pipeline copy).
    let mut instances: HashMap<String, (u64, PhysicalPipeline)> = HashMap::new();
    while let Some(item) = next_item(high, normal) {
        shared.metrics.dequeue();
        process(shared, supervision, index, &mut instances, item);
    }
}

/// Render a caught panic payload for [`ServeError::Panicked`].
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else if let Some(text) = payload.downcast_ref::<&'static str>() {
        (*text).to_string()
    } else if payload.downcast_ref::<EscapePanic>().is_some() {
        "EscapePanic (deliberate worker-kill sentinel)".into()
    } else {
        "opaque panic payload".into()
    }
}

fn process(
    shared: &Shared,
    supervision: &Supervision,
    worker: usize,
    instances: &mut HashMap<String, (u64, PhysicalPipeline)>,
    mut item: QueueItem,
) {
    let tracer = shared.factory.tracer();
    let end_span = |item: &mut QueueItem, path: &str| {
        if let Some(span) = item.span.take() {
            tracer.end(span, || vec![("path".into(), path.to_string())]);
        }
    };
    if let Some(deadline) = item.deadline {
        if Instant::now() > deadline {
            shared.metrics.time_out();
            end_span(&mut item, "timeout");
            journal_failure(shared, &item, "timeout", Usage::default());
            finish(shared, &item, Err(ServeError::Timeout { waited: item.enqueued.elapsed() }));
            return;
        }
    }
    // Cancelled while queued: fail it before spending any execution.
    if item.core.cancel.explicitly_cancelled() {
        shared.metrics.cancel_job(Usage::default());
        end_span(&mut item, "cancelled");
        journal_failure(shared, &item, "cancelled", Usage::default());
        finish(shared, &item, Err(ServeError::Cancelled));
        return;
    }
    item.core.set_running();
    if let (Some(journal), Some(fp)) = (&shared.journal, item.fingerprint) {
        // Diagnostic only (recovery treats started exactly like queued), so
        // best-effort: a failed append must not fail the job.
        let _ = journal.record_job_started(&item.pipeline, fp);
    }

    // Refresh the cached instance if missing or stale.
    let current = shared.registry.generation(&item.pipeline);
    let cached = instances.get(&item.pipeline).map(|(generation, _)| *generation);
    if current.is_none() || cached != current {
        instances.remove(&item.pipeline);
        match shared.registry.instantiate(&item.pipeline) {
            Ok((generation, instance)) => {
                instances.insert(item.pipeline.clone(), (generation, instance));
            }
            Err(err) => {
                shared.metrics.fail(Usage::default());
                end_span(&mut item, "failed");
                journal_failure(shared, &item, "instantiate_failed", Usage::default());
                finish(shared, &item, Err(err));
                return;
            }
        }
    }
    let (_, pipeline) = match instances.get_mut(&item.pipeline) {
        Some(entry) => entry,
        None => {
            // Unreachable after a successful refresh; fail the job rather
            // than unwind the worker on a broken internal assumption.
            shared.metrics.fail(Usage::default());
            end_span(&mut item, "failed");
            journal_failure(shared, &item, "internal", Usage::default());
            finish(
                shared,
                &item,
                Err(ServeError::Internal {
                    reason: format!(
                        "worker {worker} holds no instance of `{}` after refreshing it",
                        item.pipeline
                    ),
                }),
            );
            return;
        }
    };

    // Fresh context per run: shared LLM + tools behind a per-job meter, the
    // job's cancel token threaded in so the executor, `parallel_map`, the
    // script fuel cap, and the LLM layers all observe the same deadline.
    let meter = Arc::new(UsageMeter::new(shared.factory.llm()));
    let token = item.core.cancel.clone();
    let mut ctx = shared
        .factory
        .build_with_llm(Arc::clone(&meter) as Arc<dyn lingua_llm_sim::LlmService>)
        .with_cancel(token.clone());
    // Nest the execution under the job span begun at submission.
    let enter = item.span.as_ref().map(|span| {
        tracer.instant_under(Some(span.id()), SpanKind::ServeJob, "dequeued", Vec::new);
        tracer.enter(span)
    });
    supervision.begin_job(worker, &item.core, &item.pipeline, token.remaining());
    let start = Instant::now();
    // Contain pipeline panics at the job boundary: the job fails, the worker
    // survives. The context and pipeline instance are only touched inside;
    // both are discarded on unwind (the instance cache entry explicitly), so
    // no torn state is observed afterwards and AssertUnwindSafe is sound.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _scope = CancelScope::enter(&token);
        Executor::run(pipeline, &mut ctx, item.inputs.clone())
    }));
    let wall = start.elapsed();
    supervision.end_job(worker);
    drop(enter);
    match result {
        Ok(Ok(report)) => {
            let output = Arc::new(JobOutput { env: report.env, llm: meter.usage(), wall });
            shared.metrics.complete(item.enqueued.elapsed(), output.llm);
            end_span(&mut item, "executed");
            finish(shared, &item, Ok(output));
        }
        Ok(Err(CoreError::Cancelled { reason: CancelReason::DeadlineExceeded })) => {
            // Partial usage was billed before the deadline fired; route it to
            // the `llm_partial` meter so ledgers still reconcile to the cent.
            shared.metrics.deadline_exceed(meter.usage());
            end_span(&mut item, "deadline_exceeded");
            journal_failure(shared, &item, "deadline_exceeded", meter.usage());
            finish(shared, &item, Err(ServeError::DeadlineExceeded { elapsed: wall }));
        }
        Ok(Err(CoreError::Cancelled { reason: CancelReason::Cancelled })) => {
            shared.metrics.cancel_job(meter.usage());
            end_span(&mut item, "cancelled");
            journal_failure(shared, &item, "cancelled", meter.usage());
            finish(shared, &item, Err(ServeError::Cancelled));
        }
        Ok(Err(err)) => {
            if let CoreError::Trap { trap, .. } = &err {
                shared.metrics.trap(*trap);
            }
            shared.metrics.fail(meter.usage());
            end_span(&mut item, "failed");
            journal_failure(shared, &item, "failed", meter.usage());
            finish(shared, &item, Err(ServeError::Core(err)));
        }
        Err(payload) => {
            // The instance may be poisoned mid-mutation: discard it so the
            // next job replicates a fresh copy from the registry.
            instances.remove(&item.pipeline);
            shared.metrics.panic_job(meter.usage());
            end_span(&mut item, "panicked");
            journal_failure(shared, &item, "panicked", meter.usage());
            tracer.instant(SpanKind::Supervisor, "job_panicked", || {
                vec![
                    ("worker".into(), worker.to_string()),
                    ("pipeline".into(), item.pipeline.clone()),
                ]
            });
            finish(
                shared,
                &item,
                Err(ServeError::Panicked {
                    pipeline: item.pipeline.clone(),
                    payload: panic_text(payload.as_ref()),
                }),
            );
            // The kill sentinel escapes containment on purpose — after the
            // job is failed and counted — to exercise worker resurrection.
            if payload.downcast_ref::<EscapePanic>().is_some() {
                resume_unwind(payload);
            }
        }
    }
}

/// Journal a terminal failure before its result is published (WAL
/// ordering). Best-effort: the job already failed, and a storage error must
/// not unwind the worker. Shutdown-drained jobs are deliberately *not*
/// routed here — they stay journaled as pending so the next incarnation
/// resurrects them.
fn journal_failure(shared: &Shared, item: &QueueItem, reason: &str, llm: Usage) {
    if let (Some(journal), Some(fp)) = (&shared.journal, item.fingerprint) {
        let _ = journal.record_job_failed(&item.pipeline, fp, llm, reason);
    }
}

/// Completion bookkeeping: feed the result cache, release the in-flight
/// reservation, wake every waiter. The cache is fed *before* the reservation
/// is dropped so a concurrent duplicate always finds the job in one of the
/// two tables.
fn finish(shared: &Shared, item: &QueueItem, result: Result<Arc<JobOutput>, ServeError>) {
    if let Some(fp) = item.fingerprint {
        if let Ok(output) = &result {
            // WAL ordering: the finish is durable before the result becomes
            // observable through the cache or any waiter, so a recovered
            // journal can never claim a job finished that no caller saw.
            if let Some(journal) = &shared.journal {
                let _ = journal.record_job_finished(FinishedJob {
                    pipeline: item.pipeline.clone(),
                    fingerprint: fp,
                    env: output.env.clone(),
                    llm: output.llm,
                    wall_us: output.wall.as_micros() as u64,
                });
            }
            shared.results.insert(job_key(&item.pipeline, fp), Arc::clone(output));
        }
        shared.in_flight.lock().remove(&(item.pipeline.clone(), fp));
    }
    item.core.finish(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn factory() -> ContextFactory {
        let world = WorldSpec::generate(21);
        ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 21)))
    }

    fn summarize_server(config: ServeConfig) -> PipelineServer {
        let server = PipelineServer::start(factory(), config).unwrap();
        server
            .register_dsl(
                "summ",
                r#"pipeline summ {
                    out = summarize(text) using llm with { desc: "summarize the following document" };
                }"#,
                &Compiler::with_builtins(),
            )
            .unwrap();
        server
    }

    #[test]
    fn submit_wait_roundtrip() {
        let server = summarize_server(ServeConfig { workers: Some(2), ..Default::default() });
        let request = SubmitRequest::new("summ")
            .input("text", Data::Str("a quick brown fox jumps over the lazy dog".into()));
        let output = server.run(request).unwrap();
        assert!(output.get("out").is_ok());
        assert!(output.llm.calls >= 1, "the summarize op billed the LLM");
        let snap = server.metrics();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn unknown_pipeline_is_rejected_at_submit() {
        let server = summarize_server(ServeConfig { workers: Some(1), ..Default::default() });
        let err = server.submit(SubmitRequest::new("ghost")).unwrap_err();
        assert!(matches!(err, ServeError::UnknownPipeline(id) if id == "ghost"));
    }

    #[test]
    fn result_cache_serves_repeats_without_llm_calls() {
        let mut server = summarize_server(ServeConfig { workers: Some(1), ..Default::default() });
        let request = SubmitRequest::new("summ")
            .input("text", Data::Str("the same document every time".into()));
        let first = server.run(request.clone()).unwrap();
        let second = server.run(request).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second run came from the result cache");
        let snap = server.metrics();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.completed, 1, "only one real execution");
        server.shutdown();
    }

    #[test]
    fn distinct_inputs_do_not_dedup() {
        let server = summarize_server(ServeConfig { workers: Some(2), ..Default::default() });
        let a = server
            .run(SubmitRequest::new("summ").input("text", Data::Str("first text".into())))
            .unwrap();
        let b = server
            .run(SubmitRequest::new("summ").input("text", Data::Str("second text".into())))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let snap = server.metrics();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.deduped(), 0);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let mut server = summarize_server(ServeConfig { workers: Some(1), ..Default::default() });
        server.shutdown();
        let err = server
            .submit(SubmitRequest::new("summ").input("text", Data::Str("late".into())))
            .unwrap_err();
        assert!(matches!(err, ServeError::Shutdown));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut server = summarize_server(ServeConfig {
            workers: Some(1),
            dedup_inflight: false,
            result_cache_capacity: 0,
            ..Default::default()
        });
        let handles: Vec<JobHandle> = (0..8)
            .map(|i| {
                server
                    .submit(
                        SubmitRequest::new("summ")
                            .input("text", Data::Str(format!("document number {i}"))),
                    )
                    .unwrap()
            })
            .collect();
        server.shutdown();
        for handle in handles {
            assert!(handle.wait().is_ok(), "queued work completed before shutdown");
        }
        assert_eq!(server.metrics().completed, 8);
    }

    #[test]
    fn unusable_configurations_are_rejected_at_start() {
        use crate::error::InvalidConfig;
        let start_err =
            |config: ServeConfig| PipelineServer::start(factory(), config).map(|_| ()).unwrap_err();
        let err = start_err(ServeConfig { workers: Some(0), ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroWorkers));

        let err = start_err(ServeConfig { queue_capacity: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroQueueCapacity));

        let err =
            start_err(ServeConfig { default_timeout: Some(Duration::ZERO), ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroDefaultTimeout));

        let err = start_err(ServeConfig { supervisor_tick: Duration::ZERO, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroSupervisorTick));

        let err = start_err(ServeConfig { stuck_multiplier: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroStuckMultiplier));

        // A nonzero deadline is fine.
        let ok =
            ServeConfig { default_timeout: Some(Duration::from_secs(30)), ..Default::default() };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn broken_streaming_knobs_are_rejected_at_start() {
        use crate::error::InvalidConfig;
        let start_err = |tuning: StreamTuning| {
            let config = ServeConfig { stream: Some(tuning), ..Default::default() };
            PipelineServer::start(factory(), config).map(|_| ()).unwrap_err()
        };
        let err = start_err(StreamTuning { window: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroWindow));

        let err = start_err(StreamTuning { slide: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroSlide));

        let err = start_err(StreamTuning { window: 16, slide: 48, watermark_interval: 1 });
        assert_eq!(
            err,
            ServeError::InvalidConfig(InvalidConfig::SlideExceedsWindow { slide: 48, window: 16 })
        );

        let err = start_err(StreamTuning { watermark_interval: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroWatermarkInterval));

        // Tumbling (slide == window) and sliding (slide < window) both pass.
        assert!(StreamTuning { window: 16, slide: 16, watermark_interval: 1 }.validate().is_ok());
        assert!(StreamTuning::default().validate().is_ok());
        let mut server = summarize_server(ServeConfig {
            workers: Some(1),
            stream: Some(StreamTuning::default()),
            ..Default::default()
        });
        server.shutdown();
    }

    #[test]
    fn broken_batching_knobs_are_rejected_at_start() {
        use crate::error::InvalidConfig;
        let start_err = |tuning: BatchTuning| {
            let config = ServeConfig { batch: Some(tuning), ..Default::default() };
            PipelineServer::start(factory(), config).map(|_| ()).unwrap_err()
        };
        let err = start_err(BatchTuning { max_batch_size: 0, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroBatchSize));

        let err = start_err(BatchTuning { max_wait: Duration::ZERO, ..Default::default() });
        assert_eq!(err, ServeError::InvalidConfig(InvalidConfig::ZeroBatchWindow));

        assert!(BatchTuning::default().validate().is_ok());
        let resolved = BatchTuning::default().to_config();
        assert_eq!(resolved.max_batch_size, 8);
        assert_eq!(resolved.max_wait, Duration::from_millis(2));
    }

    #[test]
    fn batching_config_wraps_the_llm_and_surfaces_counters() {
        let mut server = summarize_server(ServeConfig {
            workers: Some(2),
            dedup_inflight: false,
            result_cache_capacity: 0,
            batch: Some(BatchTuning { max_batch_size: 4, max_wait: Duration::from_millis(1) }),
            ..Default::default()
        });
        assert!(server.batcher().is_some(), "start() wrapped the LLM in a batcher");
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                server
                    .submit(
                        SubmitRequest::new("summ")
                            .input("text", Data::Str(format!("batched document number {i}"))),
                    )
                    .unwrap()
            })
            .collect();
        for handle in handles {
            let output = handle.wait().unwrap();
            assert!(output.llm.calls >= 1, "each job metered its own usage over the batcher");
        }
        let snap = server.metrics();
        assert_eq!(snap.completed, 6);
        let batch = snap.batch.as_ref().expect("batch counters attached");
        assert!(batch.members >= 6, "every job's completion went through the batcher");
        assert!(batch.batches >= 1);
        assert!(batch.batches <= batch.members, "batching never inflates the flush count");
        assert!(snap.report().contains("batcher metrics"), "report folds in the batcher section");
        server.shutdown();
    }

    #[test]
    fn unset_workers_default_to_available_parallelism() {
        let expected = std::thread::available_parallelism().map(usize::from).unwrap_or(4);
        assert_eq!(ServeConfig::default().resolved_workers(), expected);
        assert_eq!(ServeConfig { workers: Some(3), ..Default::default() }.resolved_workers(), 3);

        let server = summarize_server(ServeConfig::default());
        assert_eq!(server.worker_count(), expected);
        assert_eq!(server.metrics().workers, expected, "resolved pool size surfaces in snapshots");
        assert!(server.metrics().report().contains("workers"));

        let sized = summarize_server(ServeConfig { workers: Some(2), ..Default::default() });
        assert_eq!(sized.metrics().workers, 2);
    }

    #[test]
    fn attached_gateway_metrics_surface_in_snapshot() {
        let world = WorldSpec::generate(33);
        let sim = Arc::new(SimLlm::with_seed(&world, 33));
        let transport =
            lingua_gateway::ServiceTransport::new("sim", Arc::clone(&sim) as Arc<dyn LlmService>);
        let gateway =
            Arc::new(Gateway::over(Arc::new(transport) as Arc<dyn lingua_gateway::LlmTransport>));
        let factory = ContextFactory::new(Arc::clone(&gateway) as Arc<dyn LlmService>);
        let server =
            PipelineServer::start(factory, ServeConfig { workers: Some(1), ..Default::default() })
                .unwrap();
        server
            .register_dsl(
                "summ",
                r#"pipeline summ {
                    out = summarize(text) using llm with { desc: "summarize the following document" };
                }"#,
                &Compiler::with_builtins(),
            )
            .unwrap();
        assert!(server.metrics().gateway.is_none(), "no gateway attached yet");
        server.attach_gateway(Arc::clone(&gateway));
        server
            .run(
                SubmitRequest::new("summ").input("text", Data::Str("route through gateway".into())),
            )
            .unwrap();
        let snap = server.metrics();
        let gw = snap.gateway.as_ref().expect("gateway counters attached");
        assert!(gw.requests >= 1, "the summarize call went through the gateway");
        assert_eq!(gw.faults(), 0, "a clean backend injects nothing");
        assert_eq!(gw.backends.len(), 1);
        assert_eq!(gw.backends[0].breaker_state, "closed");
        assert!(snap.report().contains("gateway"), "report folds in the gateway section");
    }

    #[test]
    fn run_reports_execution_errors() {
        let server = PipelineServer::start(
            factory(),
            ServeConfig { workers: Some(1), ..Default::default() },
        )
        .unwrap();
        // `load_csv` on a nonexistent path fails inside the worker.
        let mut ctx = server.shared.factory.build();
        server
            .shared
            .registry
            .register_dsl(
                "bad",
                r#"pipeline bad { t = load_csv() with { path: "/nonexistent/x.csv" }; }"#,
                &Compiler::with_builtins(),
                &mut ctx,
            )
            .unwrap();
        let err = server.run(SubmitRequest::new("bad")).unwrap_err();
        assert!(matches!(err, ServeError::Core(_)));
        assert_eq!(server.metrics().failed, 1);
    }
}
