//! Worker-pool supervision: liveness tracking, crash resurrection with a
//! budgeted exponential backoff, and a stuck-job watchdog.
//!
//! The worker pool's failure story has three tiers:
//!
//! 1. **Contained panics** — a pipeline that panics inside a worker is caught
//!    at the job boundary (`catch_unwind` in `server::process`). The job
//!    fails with `ServeError::Panicked`, the worker discards its possibly
//!    poisoned pipeline instance, and the *thread keeps serving*.
//! 2. **Worker death** — a panic that escapes containment (serving-layer
//!    bookkeeping bugs, or the [`EscapePanic`] test sentinel) kills the
//!    thread. A drop guard ([`WorkerGuard`]) marks the slot dead and fails
//!    any job the thread died holding, so no waiter ever hangs. The
//!    supervisor thread notices the dead slot and restarts it — up to
//!    `ServeConfig::max_worker_restarts` times per slot, with exponential
//!    backoff — restoring the pool to full strength.
//! 3. **Stuck jobs** — a job that stops making heartbeat progress after
//!    running `ServeConfig::stuck_multiplier` times its deadline budget is
//!    flagged and nudged with a cooperative cancel. (A module wedged in
//!    foreign code cannot be killed — threads are not processes — but the
//!    nudge stops every cancellation-aware layer under it from doing further
//!    work, and the flag makes the wedge visible in `HealthSnapshot`.)

use crate::error::ServeError;
use crate::job::JobCore;
use crate::metrics::Metrics;
use lingua_trace::{SpanKind, Tracer};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Panic payload that deliberately escapes the worker's per-job containment.
///
/// `server::process` re-raises a panic carrying this payload *after* failing
/// the job and recording metrics, killing the worker thread. Chaos tests
/// panic with `std::panic::panic_any(EscapePanic)` to prove the supervisor
/// restores the pool; production modules have no reason to use it.
pub struct EscapePanic;

/// What a worker is executing right now, as the watchdog sees it.
pub(crate) struct ActiveJob {
    pub(crate) core: Arc<JobCore>,
    pub(crate) pipeline: String,
    pub(crate) started: Instant,
    /// Deadline budget at execution start (`None` = unbounded job; the
    /// watchdog has no scale to judge it against and leaves it alone).
    pub(crate) budget: Option<Duration>,
    /// Heartbeat reading at the last watchdog tick.
    pub(crate) last_progress: u64,
    pub(crate) stuck_flagged: bool,
}

/// One worker thread's supervision record.
pub(crate) struct WorkerSlot {
    pub(crate) handle: Option<JoinHandle<()>>,
    pub(crate) alive: bool,
    pub(crate) gave_up: bool,
    /// Completed restarts of this slot.
    pub(crate) restarts: u32,
    /// Earliest instant the next restart attempt may run (backoff).
    pub(crate) next_restart_at: Option<Instant>,
    pub(crate) current: Option<ActiveJob>,
}

impl WorkerSlot {
    fn empty() -> WorkerSlot {
        WorkerSlot {
            handle: None,
            alive: false,
            gave_up: false,
            restarts: 0,
            next_restart_at: None,
            current: None,
        }
    }
}

/// Shared supervision state: one slot per worker, plus the shutdown latch.
pub(crate) struct Supervision {
    pub(crate) slots: Mutex<Vec<WorkerSlot>>,
    pub(crate) shutdown: AtomicBool,
}

impl Supervision {
    pub(crate) fn new(workers: usize) -> Supervision {
        Supervision {
            slots: Mutex::new((0..workers).map(|_| WorkerSlot::empty()).collect()),
            shutdown: AtomicBool::new(false),
        }
    }

    pub(crate) fn install(&self, index: usize, handle: JoinHandle<()>) {
        let mut slots = self.slots.lock();
        slots[index].handle = Some(handle);
        slots[index].alive = true;
    }

    /// Record the job `worker` is about to execute.
    pub(crate) fn begin_job(
        &self,
        worker: usize,
        core: &Arc<JobCore>,
        pipeline: &str,
        budget: Option<Duration>,
    ) {
        self.slots.lock()[worker].current = Some(ActiveJob {
            core: Arc::clone(core),
            pipeline: pipeline.to_string(),
            started: Instant::now(),
            budget,
            last_progress: core.cancel.progress(),
            stuck_flagged: false,
        });
    }

    pub(crate) fn end_job(&self, worker: usize) {
        self.slots.lock()[worker].current = None;
    }

    pub(crate) fn slot_count(&self) -> usize {
        self.slots.lock().len()
    }

    pub(crate) fn live_workers(&self) -> usize {
        self.slots.lock().iter().filter(|slot| slot.alive).count()
    }

    pub(crate) fn gave_up_count(&self) -> usize {
        self.slots.lock().iter().filter(|slot| slot.gave_up).count()
    }

    /// Take every worker join handle (for shutdown). Joining MUST happen
    /// with the slots lock released: a dying worker's [`WorkerGuard`] takes
    /// the same lock on its way out, so joining under the lock deadlocks.
    pub(crate) fn take_handles(&self) -> Vec<JoinHandle<()>> {
        self.slots.lock().iter_mut().filter_map(|slot| slot.handle.take()).collect()
    }
}

/// Drop guard a worker thread holds for its whole life. Runs on every exit —
/// clean drain or panic unwind — and (a) marks the slot dead so the
/// supervisor can see it, (b) fails any job the thread died holding so no
/// waiter blocks forever.
pub(crate) struct WorkerGuard {
    supervision: Arc<Supervision>,
    metrics: Arc<Metrics>,
    index: usize,
}

impl WorkerGuard {
    pub(crate) fn new(
        supervision: Arc<Supervision>,
        metrics: Arc<Metrics>,
        index: usize,
    ) -> WorkerGuard {
        WorkerGuard { supervision, metrics, index }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let orphan = {
            let mut slots = self.supervision.slots.lock();
            let slot = &mut slots[self.index];
            slot.alive = false;
            slot.current.take()
        };
        // Normally `process` publishes a result before any panic can escape;
        // this path only fires if the thread died in serving-layer
        // bookkeeping outside the per-job containment.
        if let Some(active) = orphan {
            if !active.core.is_finished() {
                self.metrics.panic_job(lingua_llm_sim::Usage::default());
                active.core.finish(Err(ServeError::Panicked {
                    pipeline: active.pipeline,
                    payload: "worker thread died outside the execution guard".into(),
                }));
            }
        }
    }
}

/// Supervisor tuning, extracted from `ServeConfig` at server start.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisePolicy {
    pub(crate) max_worker_restarts: u32,
    pub(crate) restart_backoff: Duration,
    pub(crate) tick: Duration,
    pub(crate) stuck_multiplier: u32,
}

impl SupervisePolicy {
    /// Exponential backoff before restart number `restarts + 1`, capped so
    /// the shift cannot overflow.
    fn backoff(&self, restarts: u32) -> Duration {
        self.restart_backoff.saturating_mul(1u32 << restarts.min(10))
    }
}

/// The supervisor thread body: tick until shutdown, running the watchdog
/// pass and the restart pass on every tick. `spawn` re-creates the worker
/// thread for a slot index (it is the same routine `PipelineServer::start`
/// used for the original pool).
pub(crate) fn supervisor_loop(
    supervision: &Arc<Supervision>,
    metrics: &Arc<Metrics>,
    tracer: &Tracer,
    policy: SupervisePolicy,
    spawn: impl Fn(usize) -> Result<JoinHandle<()>, ServeError>,
) {
    while !supervision.shutdown.load(Ordering::Acquire) {
        watchdog_pass(supervision, metrics, tracer, policy);
        restart_pass(supervision, metrics, tracer, policy, &spawn);
        std::thread::sleep(policy.tick);
    }
}

/// Flag jobs that blew through `stuck_multiplier ×` their deadline budget
/// without heartbeat progress, and nudge them with a cooperative cancel.
fn watchdog_pass(
    supervision: &Arc<Supervision>,
    metrics: &Arc<Metrics>,
    tracer: &Tracer,
    policy: SupervisePolicy,
) {
    let mut stuck: Vec<(usize, String)> = Vec::new();
    {
        let mut slots = supervision.slots.lock();
        for (index, slot) in slots.iter_mut().enumerate() {
            let Some(active) = &mut slot.current else { continue };
            let Some(budget) = active.budget else { continue };
            if active.stuck_flagged {
                continue;
            }
            let allowed = budget.saturating_mul(policy.stuck_multiplier);
            if active.started.elapsed() <= allowed {
                continue;
            }
            let progress = active.core.cancel.progress();
            if progress != active.last_progress {
                // Slow but advancing: the deadline check inside the executor
                // will stop it at the next cooperative check-in.
                active.last_progress = progress;
                continue;
            }
            active.stuck_flagged = true;
            active.core.cancel.cancel();
            stuck.push((index, active.pipeline.clone()));
        }
    }
    for (index, pipeline) in stuck {
        metrics.stuck_job();
        tracer.instant(SpanKind::Supervisor, "stuck_job", || {
            vec![("worker".into(), index.to_string()), ("pipeline".into(), pipeline.clone())]
        });
    }
}

/// Restart dead worker slots within their budgets. Joins and spawns happen
/// with the slots lock released (see [`Supervision::take_handles`]).
fn restart_pass(
    supervision: &Arc<Supervision>,
    metrics: &Arc<Metrics>,
    tracer: &Tracer,
    policy: SupervisePolicy,
    spawn: &impl Fn(usize) -> Result<JoinHandle<()>, ServeError>,
) {
    let now = Instant::now();
    // Phase 1 (under the lock): classify dead slots, claim the ones due for
    // a restart by taking their stale handles.
    let mut due: Vec<(usize, Option<JoinHandle<()>>)> = Vec::new();
    let mut exhausted: Vec<usize> = Vec::new();
    {
        let mut slots = supervision.slots.lock();
        for (index, slot) in slots.iter_mut().enumerate() {
            if slot.alive || slot.gave_up {
                continue;
            }
            if slot.restarts >= policy.max_worker_restarts {
                slot.gave_up = true;
                exhausted.push(index);
                continue;
            }
            match slot.next_restart_at {
                None => {
                    // Just noticed the death: arm the backoff timer.
                    slot.next_restart_at = Some(now + policy.backoff(slot.restarts));
                }
                Some(at) if now >= at => due.push((index, slot.handle.take())),
                Some(_) => {}
            }
        }
    }
    for index in exhausted {
        tracer.instant(SpanKind::Supervisor, "worker_gave_up", || {
            vec![("worker".into(), index.to_string())]
        });
    }
    // Phase 2 (lock released): reap the corpse, spawn the replacement.
    for (index, stale) in due {
        if let Some(handle) = stale {
            let _ = handle.join();
        }
        match spawn(index) {
            Ok(handle) => {
                {
                    let mut slots = supervision.slots.lock();
                    let slot = &mut slots[index];
                    slot.handle = Some(handle);
                    slot.alive = true;
                    slot.restarts += 1;
                    slot.next_restart_at = None;
                }
                metrics.worker_restarted();
                tracer.instant(SpanKind::Supervisor, "worker_restarted", || {
                    vec![("worker".into(), index.to_string())]
                });
            }
            Err(err) => {
                // Spawn failure burns a restart attempt and backs off again.
                let mut slots = supervision.slots.lock();
                let slot = &mut slots[index];
                slot.restarts += 1;
                slot.next_restart_at = Some(Instant::now() + policy.backoff(slot.restarts));
                drop(slots);
                tracer.instant(SpanKind::Supervisor, "worker_respawn_failed", || {
                    vec![("worker".into(), index.to_string()), ("error".into(), err.to_string())]
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHandle;
    use crate::job::JobId;

    #[test]
    fn worker_guard_fails_an_orphaned_job_on_drop() {
        let supervision = Arc::new(Supervision::new(1));
        let metrics = Arc::new(Metrics::new());
        let core = JobCore::new();
        supervision.begin_job(0, &core, "pipe", None);
        {
            let slots = supervision.slots.lock();
            assert!(slots[0].current.is_some());
        }
        drop(WorkerGuard::new(Arc::clone(&supervision), Arc::clone(&metrics), 0));
        let handle = JobHandle::new(JobId(1), core);
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ServeError::Panicked { .. }));
        assert_eq!(metrics.snapshot().panicked, 1);
        assert_eq!(supervision.live_workers(), 0);
    }

    #[test]
    fn worker_guard_leaves_finished_jobs_alone() {
        let supervision = Arc::new(Supervision::new(1));
        let metrics = Arc::new(Metrics::new());
        let core = JobCore::new();
        supervision.begin_job(0, &core, "pipe", None);
        core.finish(Err(ServeError::Shutdown));
        drop(WorkerGuard::new(Arc::clone(&supervision), Arc::clone(&metrics), 0));
        let handle = JobHandle::new(JobId(1), core);
        assert!(matches!(handle.wait().unwrap_err(), ServeError::Shutdown));
        assert_eq!(metrics.snapshot().panicked, 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let policy = SupervisePolicy {
            max_worker_restarts: 8,
            restart_backoff: Duration::from_millis(2),
            tick: Duration::from_millis(1),
            stuck_multiplier: 4,
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(2));
        assert_eq!(policy.backoff(1), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(16));
        // The shift is capped; huge restart counts must not overflow.
        assert_eq!(policy.backoff(40), Duration::from_millis(2 * 1024));
    }

    #[test]
    fn watchdog_flags_only_stalled_over_budget_jobs() {
        let supervision = Arc::new(Supervision::new(2));
        let metrics = Arc::new(Metrics::new());
        let tracer = Tracer::disabled();
        let policy = SupervisePolicy {
            max_worker_restarts: 8,
            restart_backoff: Duration::from_millis(1),
            tick: Duration::from_millis(1),
            stuck_multiplier: 2,
        };
        // Worker 0: over budget and stalled — must be flagged and nudged.
        let stalled = JobCore::new();
        supervision.begin_job(0, &stalled, "stalled", Some(Duration::from_millis(1)));
        // Worker 1: no deadline — the watchdog has no budget to judge by.
        let unbounded = JobCore::new();
        supervision.begin_job(1, &unbounded, "unbounded", None);
        std::thread::sleep(Duration::from_millis(5));

        // First pass: stalled job is over 2×1ms with an unchanged heartbeat.
        watchdog_pass(&supervision, &metrics, &tracer, policy);
        assert!(stalled.cancel.explicitly_cancelled(), "watchdog nudges the stuck job");
        assert!(!unbounded.cancel.explicitly_cancelled());
        assert_eq!(metrics.snapshot().health.stuck_jobs, 1);

        // Second pass: already flagged — not double-counted.
        watchdog_pass(&supervision, &metrics, &tracer, policy);
        assert_eq!(metrics.snapshot().health.stuck_jobs, 1);
    }

    #[test]
    fn watchdog_spares_a_job_whose_heartbeat_advances() {
        let supervision = Arc::new(Supervision::new(1));
        let metrics = Arc::new(Metrics::new());
        let tracer = Tracer::disabled();
        let policy = SupervisePolicy {
            max_worker_restarts: 8,
            restart_backoff: Duration::from_millis(1),
            tick: Duration::from_millis(1),
            stuck_multiplier: 2,
        };
        let core = JobCore::new();
        supervision.begin_job(0, &core, "slow-but-alive", Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        core.cancel.touch();
        watchdog_pass(&supervision, &metrics, &tracer, policy);
        assert!(!core.cancel.explicitly_cancelled(), "progress since the last tick spares it");
        // Once the heartbeat stalls, the next pass flags it.
        watchdog_pass(&supervision, &metrics, &tracer, policy);
        assert!(core.cancel.explicitly_cancelled());
        assert_eq!(metrics.snapshot().health.stuck_jobs, 1);
    }
}
