//! The serving-layer error type.

use lingua_core::CoreError;
use std::fmt;
use std::time::Duration;

/// Errors from submitting to or running jobs on a [`crate::PipelineServer`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server configuration is unusable (zero workers, zero queue
    /// capacity, zero deadline); rejected at construction instead of
    /// panicking or hanging later.
    InvalidConfig { reason: String },
    /// Admission control rejected the submission: the job queue is at
    /// capacity. Callers should back off and retry.
    Full { capacity: usize },
    /// The job spent longer than its timeout waiting in the queue and was
    /// cancelled before execution.
    Timeout { waited: Duration },
    /// No pipeline is registered under the requested id.
    UnknownPipeline(String),
    /// Compilation or execution failed inside the core system.
    Core(CoreError),
    /// The server has been shut down; no further submissions are accepted.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serve configuration: {reason}")
            }
            ServeError::Full { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); back off and retry")
            }
            ServeError::Timeout { waited } => {
                write!(f, "job timed out after waiting {waited:?} in the queue")
            }
            ServeError::UnknownPipeline(id) => write!(f, "no pipeline registered as `{id}`"),
            ServeError::Core(err) => write!(f, "pipeline error: {err}"),
            ServeError::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        ServeError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::InvalidConfig { reason: "workers must be > 0".into() }
            .to_string()
            .contains("workers"));
        assert!(ServeError::Full { capacity: 8 }.to_string().contains('8'));
        assert!(ServeError::UnknownPipeline("er".into()).to_string().contains("er"));
        let err: ServeError = CoreError::Compile("bad op".into()).into();
        assert!(err.to_string().contains("bad op"));
        assert!(ServeError::Timeout { waited: Duration::from_millis(5) }
            .to_string()
            .contains("timed out"));
    }

    #[test]
    fn core_errors_keep_their_source() {
        use std::error::Error;
        let err: ServeError = CoreError::NotReplicable { module: "m".into() }.into();
        assert!(err.source().is_some());
        assert!(ServeError::Shutdown.source().is_none());
    }
}
