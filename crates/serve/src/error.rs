//! The serving-layer error type.

use lingua_core::CoreError;
use std::fmt;
use std::time::Duration;

/// Machine-readable reasons a [`crate::ServeConfig`] is unusable.
///
/// Typed (rather than a free-form string) so callers — the streaming engine
/// in particular — can branch on *which* knob is broken: a zero window and a
/// slide wider than its window are both configuration bugs, but only the
/// latter carries the two durations a caller needs to print a useful
/// diagnostic or clamp the knob programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidConfig {
    /// `workers == Some(0)`: no worker would ever dequeue a job.
    ZeroWorkers,
    /// `queue_capacity == 0`: every submission would be rejected.
    ZeroQueueCapacity,
    /// `default_timeout == Some(ZERO)`: every job would expire in the queue.
    ZeroDefaultTimeout,
    /// `supervisor_tick == ZERO`: the supervisor would spin.
    ZeroSupervisorTick,
    /// `stuck_multiplier == 0`: every deadlined job would be flagged stuck
    /// immediately.
    ZeroStuckMultiplier,
    /// Streaming: `window == 0` event-time ticks — no record could ever land
    /// in a window, so the stream would ingest forever and emit nothing.
    ZeroWindow,
    /// Streaming: `slide == 0` — window assignment divides event time by the
    /// slide, and a zero slide would put every record in unboundedly many
    /// windows.
    ZeroSlide,
    /// Streaming: the slide is wider than the window, leaving event-time
    /// gaps that silently drop every record falling between windows.
    SlideExceedsWindow { slide: u64, window: u64 },
    /// Streaming: `watermark_interval == 0` — the watermark would never
    /// advance, so no window would ever close.
    ZeroWatermarkInterval,
    /// Batching: `max_batch_size == 0` — no batch could ever admit a
    /// member, so every completion would block on a flush that never
    /// comes. (The gateway-layer batcher clamps this to 1 defensively;
    /// the serving layer rejects it outright as a configuration bug.)
    ZeroBatchSize,
    /// Batching: `max_wait == ZERO` — the micro-batch window would close
    /// the instant it opened, so no second member could ever share a
    /// call and the batcher would add lock traffic for nothing.
    ZeroBatchWindow,
    /// Durability: `checkpoint_interval == 0` — the journal would compact
    /// after every append, turning the O(1) write path into a full-state
    /// serialization per record.
    ZeroCheckpointInterval,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidConfig::ZeroWorkers => {
                write!(f, "workers must be > 0 (no worker would ever dequeue a job)")
            }
            InvalidConfig::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be > 0 (every submission would be rejected)")
            }
            InvalidConfig::ZeroDefaultTimeout => {
                write!(f, "default_timeout must be nonzero (every job would expire in the queue)")
            }
            InvalidConfig::ZeroSupervisorTick => {
                write!(f, "supervisor_tick must be nonzero (the supervisor would spin)")
            }
            InvalidConfig::ZeroStuckMultiplier => {
                write!(
                    f,
                    "stuck_multiplier must be > 0 (every deadlined job would be \
                     flagged stuck immediately)"
                )
            }
            InvalidConfig::ZeroWindow => {
                write!(f, "stream window must be > 0 ticks (no record could land in a window)")
            }
            InvalidConfig::ZeroSlide => {
                write!(f, "stream slide must be > 0 ticks (window assignment would not terminate)")
            }
            InvalidConfig::SlideExceedsWindow { slide, window } => {
                write!(
                    f,
                    "stream slide ({slide} ticks) exceeds the window ({window} ticks); \
                     records falling in the gaps would be dropped silently"
                )
            }
            InvalidConfig::ZeroWatermarkInterval => {
                write!(f, "stream watermark_interval must be > 0 (no window would ever close)")
            }
            InvalidConfig::ZeroBatchSize => {
                write!(f, "batch max_batch_size must be > 0 (no batch could admit a member)")
            }
            InvalidConfig::ZeroBatchWindow => {
                write!(
                    f,
                    "batch max_wait must be nonzero (the window would close before a \
                     second member could ever share a call)"
                )
            }
            InvalidConfig::ZeroCheckpointInterval => {
                write!(
                    f,
                    "journal checkpoint_interval must be > 0 (every append would \
                     rewrite the whole compacted state)"
                )
            }
        }
    }
}

/// Errors from submitting to or running jobs on a [`crate::PipelineServer`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server configuration is unusable (zero workers, zero queue
    /// capacity, zero deadline, broken streaming knobs); rejected at
    /// construction instead of panicking or hanging later. The payload says
    /// exactly which knob.
    InvalidConfig(InvalidConfig),
    /// Admission control rejected the submission: the job queue is at
    /// capacity. Callers should back off and retry.
    Full { capacity: usize },
    /// The job spent longer than its timeout waiting in the queue and was
    /// cancelled before execution.
    Timeout { waited: Duration },
    /// The job started executing but its deadline passed before it finished.
    /// Distinct from [`ServeError::Timeout`] (which never ran): partial LLM
    /// usage was billed and is reconciled into the server's `llm_partial`
    /// meter.
    DeadlineExceeded { elapsed: Duration },
    /// The job was cancelled — by its [`crate::JobHandle`], or by the
    /// watchdog nudging a stuck job.
    Cancelled,
    /// The pipeline panicked inside a worker. The panic was isolated: the
    /// worker discarded its (possibly poisoned) pipeline instance, other
    /// in-flight jobs were unaffected, and the payload is preserved here.
    Panicked { pipeline: String, payload: String },
    /// No pipeline is registered under the requested id.
    UnknownPipeline(String),
    /// Compilation or execution failed inside the core system.
    Core(CoreError),
    /// A worker (or supervisor) thread could not be spawned.
    Spawn { reason: String },
    /// A serving-layer invariant was violated. Jobs fail with this instead
    /// of unwinding the worker on a broken internal assumption.
    Internal { reason: String },
    /// The server has been shut down; no further submissions are accepted.
    Shutdown,
    /// The job was still queued when shutdown began and the worker pool
    /// could no longer run it. Distinct from [`ServeError::Shutdown`]
    /// (refused at the door): this job *was* admitted, and when a journal
    /// is attached it stays journaled as pending so the next incarnation
    /// resurrects it.
    ShuttingDown,
    /// The write-ahead journal could not record a durable event (storage
    /// failure). Surfaced instead of silently degrading to a non-durable
    /// server.
    Journal { reason: String },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(which) => {
                write!(f, "invalid serve configuration: {which}")
            }
            ServeError::Full { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); back off and retry")
            }
            ServeError::Timeout { waited } => {
                write!(f, "job timed out after waiting {waited:?} in the queue")
            }
            ServeError::DeadlineExceeded { elapsed } => {
                write!(f, "job exceeded its deadline after {elapsed:?} of execution")
            }
            ServeError::Cancelled => write!(f, "job was cancelled"),
            ServeError::Panicked { pipeline, payload } => {
                write!(f, "pipeline `{pipeline}` panicked in a worker: {payload}")
            }
            ServeError::UnknownPipeline(id) => write!(f, "no pipeline registered as `{id}`"),
            ServeError::Core(err) => write!(f, "pipeline error: {err}"),
            ServeError::Spawn { reason } => write!(f, "could not spawn a server thread: {reason}"),
            ServeError::Internal { reason } => {
                write!(f, "internal serving invariant violated: {reason}")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::ShuttingDown => {
                write!(f, "server began shutting down while the job was still queued")
            }
            ServeError::Journal { reason } => {
                write!(f, "write-ahead journal failure: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        ServeError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_names_the_knob() {
        // Every variant's message names the offending knob, so `start()`
        // failures stay actionable even when only the string is logged.
        let cases: [(InvalidConfig, &str); 12] = [
            (InvalidConfig::ZeroWorkers, "workers"),
            (InvalidConfig::ZeroQueueCapacity, "queue_capacity"),
            (InvalidConfig::ZeroDefaultTimeout, "default_timeout"),
            (InvalidConfig::ZeroSupervisorTick, "supervisor_tick"),
            (InvalidConfig::ZeroStuckMultiplier, "stuck_multiplier"),
            (InvalidConfig::ZeroWindow, "window"),
            (InvalidConfig::ZeroSlide, "slide"),
            (InvalidConfig::SlideExceedsWindow { slide: 9, window: 4 }, "slide"),
            (InvalidConfig::ZeroWatermarkInterval, "watermark_interval"),
            (InvalidConfig::ZeroBatchSize, "max_batch_size"),
            (InvalidConfig::ZeroBatchWindow, "max_wait"),
            (InvalidConfig::ZeroCheckpointInterval, "checkpoint_interval"),
        ];
        for (which, knob) in cases {
            assert!(which.to_string().contains(knob), "{which:?} should mention {knob}");
            assert!(ServeError::InvalidConfig(which).to_string().contains(knob));
        }
        let gap = InvalidConfig::SlideExceedsWindow { slide: 9, window: 4 }.to_string();
        assert!(gap.contains('9') && gap.contains('4'), "carries both durations: {gap}");
    }

    #[test]
    fn display_is_informative() {
        assert!(ServeError::InvalidConfig(InvalidConfig::ZeroWorkers)
            .to_string()
            .contains("workers"));
        assert!(ServeError::Full { capacity: 8 }.to_string().contains('8'));
        assert!(ServeError::UnknownPipeline("er".into()).to_string().contains("er"));
        let err: ServeError = CoreError::Compile("bad op".into()).into();
        assert!(err.to_string().contains("bad op"));
        assert!(ServeError::Timeout { waited: Duration::from_millis(5) }
            .to_string()
            .contains("timed out"));
        assert!(ServeError::DeadlineExceeded { elapsed: Duration::from_millis(51) }
            .to_string()
            .contains("deadline"));
        let panic = ServeError::Panicked { pipeline: "p".into(), payload: "boom".into() };
        assert!(panic.to_string().contains("boom"));
        assert!(ServeError::Spawn { reason: "EAGAIN".into() }.to_string().contains("EAGAIN"));
        assert!(ServeError::Internal { reason: "no instance".into() }
            .to_string()
            .contains("no instance"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::Journal { reason: "disk gone".into() }
            .to_string()
            .contains("disk gone"));
    }

    #[test]
    fn core_errors_keep_their_source() {
        use std::error::Error;
        let err: ServeError = CoreError::NotReplicable { module: "m".into() }.into();
        assert!(err.source().is_some());
        assert!(ServeError::Shutdown.source().is_none());
    }
}
