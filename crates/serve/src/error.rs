//! The serving-layer error type.

use lingua_core::CoreError;
use std::fmt;
use std::time::Duration;

/// Errors from submitting to or running jobs on a [`crate::PipelineServer`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server configuration is unusable (zero workers, zero queue
    /// capacity, zero deadline); rejected at construction instead of
    /// panicking or hanging later.
    InvalidConfig { reason: String },
    /// Admission control rejected the submission: the job queue is at
    /// capacity. Callers should back off and retry.
    Full { capacity: usize },
    /// The job spent longer than its timeout waiting in the queue and was
    /// cancelled before execution.
    Timeout { waited: Duration },
    /// The job started executing but its deadline passed before it finished.
    /// Distinct from [`ServeError::Timeout`] (which never ran): partial LLM
    /// usage was billed and is reconciled into the server's `llm_partial`
    /// meter.
    DeadlineExceeded { elapsed: Duration },
    /// The job was cancelled — by its [`crate::JobHandle`], or by the
    /// watchdog nudging a stuck job.
    Cancelled,
    /// The pipeline panicked inside a worker. The panic was isolated: the
    /// worker discarded its (possibly poisoned) pipeline instance, other
    /// in-flight jobs were unaffected, and the payload is preserved here.
    Panicked { pipeline: String, payload: String },
    /// No pipeline is registered under the requested id.
    UnknownPipeline(String),
    /// Compilation or execution failed inside the core system.
    Core(CoreError),
    /// A worker (or supervisor) thread could not be spawned.
    Spawn { reason: String },
    /// A serving-layer invariant was violated. Jobs fail with this instead
    /// of unwinding the worker on a broken internal assumption.
    Internal { reason: String },
    /// The server has been shut down; no further submissions are accepted.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serve configuration: {reason}")
            }
            ServeError::Full { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); back off and retry")
            }
            ServeError::Timeout { waited } => {
                write!(f, "job timed out after waiting {waited:?} in the queue")
            }
            ServeError::DeadlineExceeded { elapsed } => {
                write!(f, "job exceeded its deadline after {elapsed:?} of execution")
            }
            ServeError::Cancelled => write!(f, "job was cancelled"),
            ServeError::Panicked { pipeline, payload } => {
                write!(f, "pipeline `{pipeline}` panicked in a worker: {payload}")
            }
            ServeError::UnknownPipeline(id) => write!(f, "no pipeline registered as `{id}`"),
            ServeError::Core(err) => write!(f, "pipeline error: {err}"),
            ServeError::Spawn { reason } => write!(f, "could not spawn a server thread: {reason}"),
            ServeError::Internal { reason } => {
                write!(f, "internal serving invariant violated: {reason}")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        ServeError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::InvalidConfig { reason: "workers must be > 0".into() }
            .to_string()
            .contains("workers"));
        assert!(ServeError::Full { capacity: 8 }.to_string().contains('8'));
        assert!(ServeError::UnknownPipeline("er".into()).to_string().contains("er"));
        let err: ServeError = CoreError::Compile("bad op".into()).into();
        assert!(err.to_string().contains("bad op"));
        assert!(ServeError::Timeout { waited: Duration::from_millis(5) }
            .to_string()
            .contains("timed out"));
        assert!(ServeError::DeadlineExceeded { elapsed: Duration::from_millis(51) }
            .to_string()
            .contains("deadline"));
        let panic = ServeError::Panicked { pipeline: "p".into(), payload: "boom".into() };
        assert!(panic.to_string().contains("boom"));
        assert!(ServeError::Spawn { reason: "EAGAIN".into() }.to_string().contains("EAGAIN"));
        assert!(ServeError::Internal { reason: "no instance".into() }
            .to_string()
            .contains("no instance"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn core_errors_keep_their_source() {
        use std::error::Error;
        let err: ServeError = CoreError::NotReplicable { module: "m".into() }.into();
        assert!(err.source().is_some());
        assert!(ServeError::Shutdown.source().is_none());
    }
}
