//! Input fingerprinting for request deduplication.
//!
//! Two submissions are duplicates when they target the same pipeline id and
//! their input environments fingerprint identically. The fingerprint is a
//! 64-bit FNV-1a hash over a *canonical, type-tagged* encoding of the input
//! map, so `Data::Int(1)` and `Data::Str("1")` never collide by rendering
//! alike, and map/list structure is hashed, not just flattened text.

use lingua_core::Data;
use std::collections::BTreeMap;

/// The workspace-wide incremental FNV-1a 64 hasher, re-exported from the LLM
/// hot path so serve, gateway, and the simulator agree on one fingerprint
/// function (see `lingua_llm_sim::hotpath`).
pub use lingua_llm_sim::Fnv1a;

/// Combine a pipeline id and an input fingerprint into the single `u64` key
/// the sharded result cache is addressed by. Length-prefixing the id keeps
/// `("ab", fp)` and `("a", fp)` from aliasing.
pub fn job_key(pipeline: &str, fingerprint: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(pipeline);
    h.write_u64(fingerprint);
    h.finish()
}

/// Fingerprint a job's input environment.
pub fn fingerprint_inputs(inputs: &BTreeMap<String, Data>) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(inputs.len() as u64);
    for (key, value) in inputs {
        h.write_str(key);
        hash_data(&mut h, value);
    }
    h.finish()
}

fn hash_data(h: &mut Fnv1a, data: &Data) {
    // Type tag first, so values of different types never alias.
    h.write_str(data.type_name());
    match data {
        Data::Null => {}
        Data::Bool(b) => h.write(&[u8::from(*b)]),
        Data::Int(i) => h.write_u64(*i as u64),
        Data::Float(f) => h.write_u64(f.to_bits()),
        Data::Str(s) => h.write_str(s),
        Data::List(items) => {
            h.write_u64(items.len() as u64);
            for item in items {
                hash_data(h, item);
            }
        }
        Data::Map(map) => {
            h.write_u64(map.len() as u64);
            for (k, v) in map {
                h.write_str(k);
                hash_data(h, v);
            }
        }
        Data::Table(table) => {
            h.write_str(table.name());
            let schema = table.schema();
            h.write_u64(schema.len() as u64);
            for name in schema.names() {
                h.write_str(name);
            }
            h.write_u64(table.len() as u64);
            for row in table.rows() {
                for cell in row.iter() {
                    h.write_str(cell.type_name());
                    h.write_str(&cell.to_string());
                }
            }
        }
        Data::Record { schema, record } => {
            h.write_u64(schema.len() as u64);
            for name in schema.names() {
                h.write_str(name);
            }
            for cell in record.iter() {
                h.write_str(cell.type_name());
                h.write_str(&cell.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, Data)]) -> BTreeMap<String, Data> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn identical_inputs_fingerprint_identically() {
        let a = env(&[("x", Data::Str("hello".into())), ("n", Data::Int(3))]);
        let b = env(&[("n", Data::Int(3)), ("x", Data::Str("hello".into()))]);
        // BTreeMap ordering makes insertion order irrelevant.
        assert_eq!(fingerprint_inputs(&a), fingerprint_inputs(&b));
    }

    #[test]
    fn different_values_fingerprint_differently() {
        let a = env(&[("x", Data::Str("hello".into()))]);
        let b = env(&[("x", Data::Str("world".into()))]);
        assert_ne!(fingerprint_inputs(&a), fingerprint_inputs(&b));
    }

    #[test]
    fn type_tags_prevent_cross_type_collisions() {
        let int = env(&[("x", Data::Int(1))]);
        let text = env(&[("x", Data::Str("1".into()))]);
        let float = env(&[("x", Data::Float(1.0))]);
        assert_ne!(fingerprint_inputs(&int), fingerprint_inputs(&text));
        assert_ne!(fingerprint_inputs(&int), fingerprint_inputs(&float));
        // Null vs empty string vs empty list all differ.
        let null = env(&[("x", Data::Null)]);
        let empty = env(&[("x", Data::Str(String::new()))]);
        let list = env(&[("x", Data::List(vec![]))]);
        assert_ne!(fingerprint_inputs(&null), fingerprint_inputs(&empty));
        assert_ne!(fingerprint_inputs(&null), fingerprint_inputs(&list));
    }

    #[test]
    fn length_prefixing_prevents_concatenation_aliasing() {
        let a = env(&[("ab", Data::Str("c".into()))]);
        let b = env(&[("a", Data::Str("bc".into()))]);
        assert_ne!(fingerprint_inputs(&a), fingerprint_inputs(&b));
    }

    #[test]
    fn job_keys_separate_pipelines_and_fingerprints() {
        let fp = fingerprint_inputs(&env(&[("x", Data::Int(1))]));
        assert_eq!(job_key("summ", fp), job_key("summ", fp));
        assert_ne!(job_key("summ", fp), job_key("other", fp));
        assert_ne!(job_key("summ", fp), job_key("summ", fp ^ 1));
        // Length-prefixing: moving a byte across the id/fp boundary changes
        // the hash input, not just its framing.
        assert_ne!(job_key("ab", fp), job_key("a", fp));
    }

    #[test]
    fn nested_structure_is_hashed() {
        let a = env(&[(
            "m",
            Data::map([("k".to_string(), Data::List(vec![Data::Int(1), Data::Int(2)]))]),
        )]);
        let b = env(&[(
            "m",
            Data::map([("k".to_string(), Data::List(vec![Data::Int(2), Data::Int(1)]))]),
        )]);
        assert_ne!(fingerprint_inputs(&a), fingerprint_inputs(&b));
    }
}
