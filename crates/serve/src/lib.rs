//! # lingua-serve — embedded pipeline serving for Lingua Manga
//!
//! The paper presents Lingua Manga as an interactive curation *system*;
//! this crate is the production-shaped serving layer on top of the core:
//! compile a curation pipeline once, then serve many concurrent requests
//! against it from a worker pool.
//!
//! Architecture (see `DESIGN.md` §"Serving architecture"):
//!
//! ```text
//!  submit ──► admission control ──► bounded queue (high │ normal lane)
//!                │    │                       │
//!                │    └─ Full{capacity}       ▼
//!                │                      worker pool (N threads)
//!                ├─ result cache hit      │  per-worker pipeline instances
//!                │   (no execution)       │  per-job UsageMeter over the
//!                └─ in-flight dedup       │  shared LlmService
//!                    (attach to leader)   ▼
//!                                   completion cell ──► waiters + metrics
//! ```
//!
//! The pieces:
//!
//! * [`PipelineServer`] — worker pool + two-lane bounded queue. Submissions
//!   beyond capacity are rejected with [`ServeError::Full`]; queued jobs may
//!   carry a timeout.
//! * [`PipelineRegistry`] — compile once (paying any code-generation LLM
//!   calls once), replicate per worker via
//!   [`lingua_core::PhysicalPipeline::fresh_instance`].
//! * Request dedup — identical `(pipeline, input fingerprint)` submissions
//!   coalesce onto one in-flight execution, and completed results are served
//!   from a FIFO-bounded cache.
//! * [`Metrics`] / [`MetricsSnapshot`] — accepted/rejected/deduplicated
//!   counters, queue depth, p50/p95 latency, per-job LLM usage.
//! * Supervised execution (see `DESIGN.md` §"Supervised execution") — jobs
//!   run under `catch_unwind`, so a panicking pipeline fails *one job*
//!   ([`ServeError::Panicked`]) instead of the pool; a supervisor thread
//!   resurrects crashed workers within a restart budget; every job carries a
//!   [`lingua_llm_sim::CancelToken`] whose deadline flows through the
//!   executor, gateway, and script fuel cap ([`ServeError::DeadlineExceeded`],
//!   [`ServeError::Cancelled`]); and a watchdog flags stuck jobs in
//!   [`HealthSnapshot`].
//! * Durability (see `DESIGN.md` §"Durable execution & crash recovery") —
//!   with [`ServeConfig`]`::journal` set, every job lifecycle event is
//!   written ahead to a `lingua-durable` journal; `start()` replays the log
//!   (restoring finished results, the billed ledger, and pending jobs for
//!   [`PipelineServer::resume_recovered`]), and the replay is surfaced in
//!   [`MetricsSnapshot::recovery`].
//!
//! ## Quick start
//!
//! ```no_run
//! use lingua_core::{Compiler, ContextFactory, Data};
//! use lingua_dataset::world::WorldSpec;
//! use lingua_llm_sim::SimLlm;
//! use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
//! use std::sync::Arc;
//!
//! let world = WorldSpec::generate(1);
//! let factory = ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 1)));
//! let server = PipelineServer::start(factory, ServeConfig::default()).unwrap();
//! server.register_dsl(
//!     "summ",
//!     r#"pipeline summ {
//!         out = summarize(text) using llm with { desc: "summarize the following document" };
//!     }"#,
//!     &Compiler::with_builtins(),
//! ).unwrap();
//! let output = server
//!     .run(SubmitRequest::new("summ").input("text", Data::Str("some document".into())))
//!     .unwrap();
//! println!("{}", output.get("out").unwrap().render());
//! println!("{}", server.metrics().report());
//! ```

pub mod error;
pub mod fingerprint;
pub mod job;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod supervisor;

pub use error::{InvalidConfig, ServeError};
pub use fingerprint::{fingerprint_inputs, job_key};
pub use job::{JobHandle, JobId, JobOutput, JobStatus};
pub use metrics::{HealthSnapshot, Metrics, MetricsSnapshot, TrapCounters, UsageMeter};
pub use registry::PipelineRegistry;
pub use server::{BatchTuning, PipelineServer, Priority, ServeConfig, StreamTuning, SubmitRequest};
pub use supervisor::EscapePanic;
