//! The compiled-pipeline registry: compile a DSL program once, instantiate
//! per worker.
//!
//! Compilation can be expensive — binding an LLMGC op *runs code generation
//! through the LLM*, which is billed. The registry pays that cost once at
//! registration and afterwards stamps out independent executable copies via
//! [`PhysicalPipeline::fresh_instance`]. A generation counter lets workers
//! cache their instances and notice re-registrations.

use crate::error::ServeError;
use lingua_core::{Compiler, ExecContext, PhysicalPipeline, Pipeline};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Registered {
    generation: u64,
    /// The master copy. Never executed — only replicated. The mutex makes
    /// the `Box<dyn Module>`s inside shareable across worker threads.
    master: Mutex<PhysicalPipeline>,
    /// Provenance note for plan-aware registration: when the cost-based
    /// planner chose this pipeline's physical form, the plan summary lands
    /// here so operators can see *why* a served pipeline runs the way it does.
    annotation: Option<String>,
}

/// A named collection of compiled pipelines.
#[derive(Default)]
pub struct PipelineRegistry {
    pipelines: Mutex<BTreeMap<String, Arc<Registered>>>,
    generations: AtomicU64,
}

impl PipelineRegistry {
    pub fn new() -> PipelineRegistry {
        PipelineRegistry::default()
    }

    /// Register (or replace) a compiled pipeline under `id`.
    ///
    /// Fails fast with [`ServeError::Core`] (`NotReplicable`) if the
    /// pipeline cannot be instantiated per worker — better to reject at
    /// registration than on the first job.
    pub fn register(
        &self,
        id: impl Into<String>,
        pipeline: PhysicalPipeline,
    ) -> Result<(), ServeError> {
        self.register_inner(id.into(), pipeline, None)
    }

    /// Register a pipeline together with a provenance annotation (the
    /// cost-based planner passes its plan summary here). Same replication
    /// probe as [`PipelineRegistry::register`].
    pub fn register_annotated(
        &self,
        id: impl Into<String>,
        pipeline: PhysicalPipeline,
        annotation: impl Into<String>,
    ) -> Result<(), ServeError> {
        self.register_inner(id.into(), pipeline, Some(annotation.into()))
    }

    fn register_inner(
        &self,
        id: String,
        pipeline: PhysicalPipeline,
        annotation: Option<String>,
    ) -> Result<(), ServeError> {
        let probe = pipeline.fresh_instance()?;
        drop(probe);
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        self.pipelines.lock().insert(
            id,
            Arc::new(Registered { generation, master: Mutex::new(pipeline), annotation }),
        );
        Ok(())
    }

    /// The provenance annotation attached at registration, if any.
    pub fn annotation(&self, id: &str) -> Option<String> {
        self.pipelines.lock().get(id).and_then(|r| r.annotation.clone())
    }

    /// Parse + compile DSL source and register it. Compilation uses the given
    /// context (and may bill LLM calls for code generation) exactly once.
    pub fn register_dsl(
        &self,
        id: impl Into<String>,
        source: &str,
        compiler: &Compiler,
        ctx: &mut ExecContext,
    ) -> Result<(), ServeError> {
        let logical = Pipeline::parse(source)?;
        let physical = compiler.compile(&logical, ctx)?;
        self.register(id, physical)
    }

    /// Remove a pipeline. Jobs already queued against it will fail with
    /// [`ServeError::UnknownPipeline`] when dequeued.
    pub fn unregister(&self, id: &str) -> bool {
        self.pipelines.lock().remove(id).is_some()
    }

    pub fn contains(&self, id: &str) -> bool {
        self.pipelines.lock().contains_key(id)
    }

    pub fn names(&self) -> Vec<String> {
        self.pipelines.lock().keys().cloned().collect()
    }

    /// The registration generation for `id` (bumps on re-register), used by
    /// workers to validate their cached instances.
    pub fn generation(&self, id: &str) -> Option<u64> {
        self.pipelines.lock().get(id).map(|r| r.generation)
    }

    /// Stamp out an independent executable instance.
    pub fn instantiate(&self, id: &str) -> Result<(u64, PhysicalPipeline), ServeError> {
        let registered = self
            .pipelines
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::UnknownPipeline(id.to_string()))?;
        let instance = registered.master.lock().fresh_instance()?;
        Ok((registered.generation, instance))
    }
}

impl std::fmt::Debug for PipelineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineRegistry").field("pipelines", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_core::modules::{CustomModule, Module};
    use lingua_core::{CoreError, Data, LogicalOp};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(9);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 9)))
    }

    #[test]
    fn register_and_instantiate_from_dsl() {
        let registry = PipelineRegistry::new();
        let mut ctx = ctx();
        registry
            .register_dsl(
                "summ",
                r#"pipeline summ {
                    out = summarize(text) using llm with { desc: "summarize the following document" };
                }"#,
                &Compiler::with_builtins(),
                &mut ctx,
            )
            .unwrap();
        assert!(registry.contains("summ"));
        assert_eq!(registry.names(), vec!["summ".to_string()]);
        let (gen_a, a) = registry.instantiate("summ").unwrap();
        let (gen_b, b) = registry.instantiate("summ").unwrap();
        assert_eq!(gen_a, gen_b);
        assert_eq!(a.describe(), b.describe());
    }

    #[test]
    fn annotations_survive_registration() {
        let registry = PipelineRegistry::new();
        let mut ctx = ctx();
        let compiler = Compiler::with_builtins();
        let logical = Pipeline::parse(
            r#"pipeline p {
                out = summarize(text) using llm with { desc: "summarize the following document" };
            }"#,
        )
        .unwrap();
        let physical = compiler.compile(&logical, &mut ctx).unwrap();
        registry.register_annotated("p", physical, "plan: summarize -> llm ($0.0021/rec)").unwrap();
        assert_eq!(
            registry.annotation("p").as_deref(),
            Some("plan: summarize -> llm ($0.0021/rec)")
        );
        // Plain registration carries no annotation.
        let physical = compiler.compile(&logical, &mut ctx).unwrap();
        registry.register("q", physical).unwrap();
        assert_eq!(registry.annotation("q"), None);
    }

    #[test]
    fn unknown_ids_error() {
        let registry = PipelineRegistry::new();
        assert!(matches!(
            registry.instantiate("ghost"),
            Err(ServeError::UnknownPipeline(id)) if id == "ghost"
        ));
        assert_eq!(registry.generation("ghost"), None);
        assert!(!registry.unregister("ghost"));
    }

    #[test]
    fn reregistration_bumps_the_generation() {
        let registry = PipelineRegistry::new();
        let mut ctx = ctx();
        let compiler = Compiler::with_builtins();
        let source = r#"pipeline p {
            out = summarize(text) using llm with { desc: "summarize the following document" };
        }"#;
        registry.register_dsl("p", source, &compiler, &mut ctx).unwrap();
        let first = registry.generation("p").unwrap();
        registry.register_dsl("p", source, &compiler, &mut ctx).unwrap();
        let second = registry.generation("p").unwrap();
        assert!(second > first);
        assert!(registry.unregister("p"));
        assert!(!registry.contains("p"));
    }

    #[test]
    fn stateful_pipelines_are_rejected_at_registration() {
        let registry = PipelineRegistry::new();
        let mut ctx = ctx();
        let mut compiler = Compiler::with_builtins();
        compiler.register("counter", |_op, _ctx| {
            let mut n = 0i64;
            Ok(Box::new(CustomModule::new("counter", move |_, _| {
                n += 1;
                Ok(Data::Int(n))
            })) as Box<dyn Module>)
        });
        let pipeline = lingua_core::Pipeline::new("c").op(LogicalOp::new("counter").output("n"));
        let physical = compiler.compile(&pipeline, &mut ctx).unwrap();
        let err = registry.register("c", physical).unwrap_err();
        assert!(matches!(err, ServeError::Core(CoreError::NotReplicable { .. })));
        assert!(!registry.contains("c"));
    }
}
