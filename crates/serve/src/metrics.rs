//! Serving metrics: counters, a queue-depth gauge, latency percentiles, and
//! per-job LLM metering.
//!
//! The paper's efficiency story is counted in LLM calls and dollars; a
//! serving layer has to keep that story visible per job even when many
//! workers share one metered [`LlmService`]. [`UsageMeter`] wraps the shared
//! service with job-local counters so each job's usage is exact under
//! concurrency, and [`Metrics`] aggregates the server-wide view.

use lingua_core::TrapKind;
use lingua_durable::RecoverySnapshot;
use lingua_gateway::{BatchSnapshot, GatewaySnapshot};
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::{
    CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, Usage, CANCELLED_NOTICE,
};
use lingua_trace::TraceSummary;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Cap on retained latency samples (FIFO ring; old samples age out).
const LATENCY_WINDOW: usize = 16_384;

/// Aggregated serving metrics. Cheap to clone a handle; all mutation goes
/// through the interior mutex.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    accepted: u64,
    rejected: u64,
    coalesced: u64,
    cache_hits: u64,
    completed: u64,
    failed: u64,
    timed_out: u64,
    panicked: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    traps: TrapCounters,
    workers_restarted: u64,
    stuck_jobs: u64,
    queue_depth: u64,
    latencies_ms: VecDeque<f64>,
    llm: Usage,
    /// Usage billed by jobs that did *not* complete (deadline-exceeded,
    /// cancelled, failed, panicked). Kept separate from `llm` so completed
    /// cost-per-job stays meaningful, while `llm + llm_partial` reconciles
    /// against the shared service ledger to the token.
    llm_partial: Usage,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub(crate) fn accept(&self) {
        self.inner.lock().accepted += 1;
    }

    pub(crate) fn reject(&self) {
        self.inner.lock().rejected += 1;
    }

    pub(crate) fn coalesce(&self) {
        let mut inner = self.inner.lock();
        inner.accepted += 1;
        inner.coalesced += 1;
    }

    pub(crate) fn cache_hit(&self) {
        let mut inner = self.inner.lock();
        inner.accepted += 1;
        inner.cache_hits += 1;
    }

    pub(crate) fn enqueue(&self) {
        self.inner.lock().queue_depth += 1;
    }

    pub(crate) fn dequeue(&self) {
        let mut inner = self.inner.lock();
        inner.queue_depth = inner.queue_depth.saturating_sub(1);
    }

    pub(crate) fn complete(&self, latency: Duration, llm: Usage) {
        let mut inner = self.inner.lock();
        inner.completed += 1;
        if inner.latencies_ms.len() == LATENCY_WINDOW {
            inner.latencies_ms.pop_front();
        }
        inner.latencies_ms.push_back(latency.as_secs_f64() * 1e3);
        inner.llm.merge(&llm);
    }

    pub(crate) fn fail(&self, partial: Usage) {
        let mut inner = self.inner.lock();
        inner.failed += 1;
        inner.llm_partial.merge(&partial);
    }

    pub(crate) fn time_out(&self) {
        self.inner.lock().timed_out += 1;
    }

    pub(crate) fn panic_job(&self, partial: Usage) {
        let mut inner = self.inner.lock();
        inner.panicked += 1;
        inner.llm_partial.merge(&partial);
    }

    pub(crate) fn cancel_job(&self, partial: Usage) {
        let mut inner = self.inner.lock();
        inner.cancelled += 1;
        inner.llm_partial.merge(&partial);
    }

    pub(crate) fn deadline_exceed(&self, partial: Usage) {
        let mut inner = self.inner.lock();
        inner.deadline_exceeded += 1;
        inner.llm_partial.merge(&partial);
    }

    pub(crate) fn trap(&self, kind: TrapKind) {
        let mut inner = self.inner.lock();
        match kind {
            TrapKind::OutOfFuel => inner.traps.out_of_fuel += 1,
            TrapKind::Recursion => inner.traps.recursion += 1,
            TrapKind::DeadlineFuel => inner.traps.deadline_fuel += 1,
        }
    }

    pub(crate) fn worker_restarted(&self) {
        self.inner.lock().workers_restarted += 1;
    }

    pub(crate) fn stuck_job(&self) {
        self.inner.lock().stuck_jobs += 1;
    }

    /// A consistent point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut sorted: Vec<f64> = inner.latencies_ms.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        MetricsSnapshot {
            accepted: inner.accepted,
            rejected: inner.rejected,
            coalesced: inner.coalesced,
            cache_hits: inner.cache_hits,
            completed: inner.completed,
            failed: inner.failed,
            timed_out: inner.timed_out,
            panicked: inner.panicked,
            cancelled: inner.cancelled,
            deadline_exceeded: inner.deadline_exceeded,
            traps: inner.traps,
            queue_depth: inner.queue_depth,
            workers: 0,
            p50_latency_ms: percentile(&sorted, 0.50),
            p95_latency_ms: percentile(&sorted, 0.95),
            latency_samples: sorted.len(),
            llm: inner.llm,
            llm_partial: inner.llm_partial,
            health: HealthSnapshot {
                live_workers: 0,
                workers_restarted: inner.workers_restarted,
                workers_gave_up: 0,
                stuck_jobs: inner.stuck_jobs,
                breaker_states: Vec::new(),
            },
            gateway: None,
            batch: None,
            recovery: None,
            trace: None,
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-kind counts of bounded-resource script traps (see
/// [`lingua_core::TrapKind`]). Traps are a *flavor* of failed job — each trap
/// also increments `failed` — broken out so operators can tell a runaway loop
/// from runaway recursion from a deadline-starved budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TrapCounters {
    /// Scripts that exhausted their own fuel budget (runaway loops).
    pub out_of_fuel: u64,
    /// Scripts that exceeded the interpreter's call-depth limit.
    pub recursion: u64,
    /// Scripts whose fuel was cut by the job deadline and ran out.
    pub deadline_fuel: u64,
}

impl TrapCounters {
    pub fn total(&self) -> u64 {
        self.out_of_fuel + self.recursion + self.deadline_fuel
    }
}

/// Supervision health: the worker pool's vital signs, folded into
/// [`MetricsSnapshot`] by `PipelineServer::metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthSnapshot {
    /// Workers currently alive and serving (after any panics/restarts).
    pub live_workers: usize,
    /// Worker threads the supervisor restarted after a crash.
    pub workers_restarted: u64,
    /// Worker slots permanently abandoned (restart budget exhausted).
    pub workers_gave_up: usize,
    /// Jobs the watchdog flagged as stuck (and nudged with a cancel).
    pub stuck_jobs: u64,
    /// Circuit-breaker state per gateway backend, when one is attached.
    pub breaker_states: Vec<(String, String)>,
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Submissions admitted (including deduplicated ones).
    pub accepted: u64,
    /// Submissions rejected by admission control (queue full).
    pub rejected: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that errored during execution.
    pub failed: u64,
    /// Jobs cancelled after exceeding their queue timeout.
    pub timed_out: u64,
    /// Jobs that panicked inside a worker (panic isolated, payload kept).
    pub panicked: u64,
    /// Jobs cancelled during execution (handle or watchdog).
    pub cancelled: u64,
    /// Jobs whose deadline passed mid-execution.
    pub deadline_exceeded: u64,
    /// Script traps by kind (each also counted in `failed`).
    pub traps: TrapCounters,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Size of the worker pool serving this snapshot — the resolved value
    /// when `ServeConfig.workers` was left unset (filled in by
    /// `PipelineServer::metrics`; zero when a bare `Metrics` is snapshotted).
    pub workers: usize,
    /// Median end-to-end latency (submit → result) over the sample window.
    pub p50_latency_ms: f64,
    /// 95th-percentile end-to-end latency over the sample window.
    pub p95_latency_ms: f64,
    /// Number of latency samples the percentiles were computed over.
    pub latency_samples: usize,
    /// LLM usage summed over completed jobs (per-job metered).
    pub llm: Usage,
    /// LLM usage billed by jobs that did not complete. `llm + llm_partial`
    /// reconciles with the shared service's ledger to the token.
    pub llm_partial: Usage,
    /// Worker-pool vital signs (live workers filled in by
    /// `PipelineServer::metrics`; counter fields always populated).
    pub health: HealthSnapshot,
    /// Resilience counters of the attached [`lingua_gateway::Gateway`], when
    /// one backs the LLM service (see `PipelineServer::attach_gateway`).
    pub gateway: Option<GatewaySnapshot>,
    /// Counters of the continuous [`lingua_gateway::Batcher`], when one
    /// wraps the LLM service (set automatically by `ServeConfig::batch`,
    /// or manually via `PipelineServer::attach_batcher`).
    pub batch: Option<BatchSnapshot>,
    /// What journal recovery replayed at `start()`, when
    /// `ServeConfig::journal` is set (filled in by
    /// `PipelineServer::metrics`); `None` on a journal-less server.
    pub recovery: Option<RecoverySnapshot>,
    /// Rollup of the trace stream, when the context factory carries an
    /// enabled tracer (see `ContextFactory::with_tracer`).
    pub trace: Option<TraceSummary>,
}

impl MetricsSnapshot {
    /// Executions avoided by deduplication, in-flight or cached.
    pub fn deduped(&self) -> u64 {
        self.coalesced + self.cache_hits
    }

    /// Jobs that reached a terminal state through a worker (every accepted
    /// job that was neither deduplicated nor still in flight). The serving
    /// conservation law is
    /// `accepted == finished() + deduped() + still-in-flight`.
    pub fn finished(&self) -> u64 {
        self.completed
            + self.failed
            + self.timed_out
            + self.panicked
            + self.cancelled
            + self.deadline_exceeded
    }

    /// Mean LLM calls per completed job.
    pub fn llm_calls_per_job(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.llm.calls as f64 / self.completed as f64
        }
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "serving metrics\n\
             \x20 accepted        {}\n\
             \x20 rejected (full) {}\n\
             \x20 deduplicated    {} ({} in-flight, {} cached)\n\
             \x20 completed       {}\n\
             \x20 failed          {} ({} traps: {} fuel, {} recursion, {} deadline-fuel)\n\
             \x20 timed out       {}\n\
             \x20 panicked        {}\n\
             \x20 cancelled       {}\n\
             \x20 deadline miss   {}\n\
             \x20 queue depth     {}\n\
             \x20 workers         {} ({} live, {} restarted, {} gave up, {} stuck jobs)\n\
             \x20 latency p50/p95 {:.2} ms / {:.2} ms ({} samples)\n\
             \x20 llm usage       {} call(s), {} tokens in, {} tokens out ({:.2} calls/job)\n\
             \x20 llm partial     {} call(s), {} tokens in, {} tokens out (unfinished jobs)\n",
            self.accepted,
            self.rejected,
            self.deduped(),
            self.coalesced,
            self.cache_hits,
            self.completed,
            self.failed,
            self.traps.total(),
            self.traps.out_of_fuel,
            self.traps.recursion,
            self.traps.deadline_fuel,
            self.timed_out,
            self.panicked,
            self.cancelled,
            self.deadline_exceeded,
            self.queue_depth,
            self.workers,
            self.health.live_workers,
            self.health.workers_restarted,
            self.health.workers_gave_up,
            self.health.stuck_jobs,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.latency_samples,
            self.llm.calls,
            self.llm.tokens_in,
            self.llm.tokens_out,
            self.llm_calls_per_job(),
            self.llm_partial.calls,
            self.llm_partial.tokens_in,
            self.llm_partial.tokens_out,
        );
        if let Some(gateway) = &self.gateway {
            out.push_str(&gateway.report());
        }
        if let Some(batch) = &self.batch {
            out.push_str(&batch.report());
        }
        if let Some(recovery) = &self.recovery {
            out.push_str(&format!(
                "\x20 recovery        {} record(s) replayed, {} job(s) resumed, \
                 {} duplicate(s) skipped, {} corrupt record(s) skipped\n",
                recovery.replayed,
                recovery.resumed_jobs,
                recovery.skipped_duplicates,
                recovery.corrupt_records_skipped,
            ));
        }
        if let Some(trace) = &self.trace {
            out.push_str(&trace.report_line());
            out.push('\n');
        }
        out
    }
}

/// A per-job metering wrapper around a shared [`LlmService`].
///
/// Workers share one LLM service (its global counters keep working), but a
/// job's own usage can't be read off the shared counters under concurrency —
/// another worker's calls would pollute the delta. Each job instead runs
/// against a fresh `UsageMeter` whose local counters record exactly the
/// traffic the job generated. Because [`UsageMeter::usage`] reports the
/// *local* counters, the executor's per-op usage traces are also exact
/// per job.
pub struct UsageMeter {
    inner: Arc<dyn LlmService>,
    local: Mutex<Usage>,
}

impl UsageMeter {
    pub fn new(inner: Arc<dyn LlmService>) -> UsageMeter {
        UsageMeter { inner, local: Mutex::new(Usage::default()) }
    }

    fn record(&self, prompt: &str, response: &str) {
        self.local.lock().record(count_tokens(prompt), count_tokens(response));
    }
}

impl LlmService for UsageMeter {
    fn complete(&self, request: &CompletionRequest) -> String {
        let response = self.inner.complete(request);
        // The cancellation notice means no call was placed and nothing was
        // billed downstream; metering it here would make the per-job total
        // diverge from the shared ledger.
        if response != CANCELLED_NOTICE {
            self.record(&request.prompt, &response);
        }
        response
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        let embedding = self.inner.embed(text);
        self.local.lock().record(count_tokens(text), 0);
        embedding
    }

    fn usage(&self) -> Usage {
        *self.local.lock()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        let code = self.inner.generate_code(spec);
        self.record(&spec.task, &code.source);
        code
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        let suggestion = self.inner.suggest_fix(source, failures);
        // Bill the same request string `SimLlm::suggest_fix` meters, so the
        // per-job meter reconciles exactly with the shared service's counters
        // (and with trace-attributed usage).
        self.record(&format!("{source}\n{}", failures.join("\n")), &suggestion);
        suggestion
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        let code = self.inner.repair_code(spec, previous, suggestion);
        // Same request string `SimLlm::repair_code` meters.
        self.record(&format!("{}\n{suggestion}", previous.source), &code.source);
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    #[test]
    fn percentiles_over_known_samples() {
        let metrics = Metrics::new();
        for ms in 1..=100u64 {
            metrics.complete(Duration::from_millis(ms), Usage::default());
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.completed, 100);
        assert!((snap.p50_latency_ms - 50.0).abs() < 2.0, "p50 = {}", snap.p50_latency_ms);
        assert!((snap.p95_latency_ms - 95.0).abs() < 2.0, "p95 = {}", snap.p95_latency_ms);
        assert_eq!(snap.latency_samples, 100);
    }

    #[test]
    fn empty_metrics_report_zeroes() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.p50_latency_ms, 0.0);
        assert_eq!(snap.deduped(), 0);
        assert_eq!(snap.llm_calls_per_job(), 0.0);
        assert!(snap.report().contains("accepted"));
    }

    #[test]
    fn counters_accumulate() {
        let metrics = Metrics::new();
        metrics.accept();
        metrics.coalesce();
        metrics.cache_hit();
        metrics.reject();
        metrics.enqueue();
        metrics.enqueue();
        metrics.dequeue();
        metrics.fail(Usage::default());
        metrics.time_out();
        let snap = metrics.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.deduped(), 2);
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.timed_out, 1);
    }

    #[test]
    fn supervision_counters_and_partial_usage_accumulate() {
        let metrics = Metrics::new();
        let mut partial = Usage::default();
        partial.record(10, 0);
        metrics.panic_job(Usage::default());
        metrics.cancel_job(partial);
        metrics.deadline_exceed(partial);
        metrics.fail(partial);
        metrics.trap(TrapKind::OutOfFuel);
        metrics.trap(TrapKind::Recursion);
        metrics.trap(TrapKind::DeadlineFuel);
        metrics.trap(TrapKind::OutOfFuel);
        metrics.worker_restarted();
        metrics.stuck_job();
        let snap = metrics.snapshot();
        assert_eq!(snap.panicked, 1);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.traps.out_of_fuel, 2);
        assert_eq!(snap.traps.recursion, 1);
        assert_eq!(snap.traps.deadline_fuel, 1);
        assert_eq!(snap.traps.total(), 4);
        assert_eq!(snap.health.workers_restarted, 1);
        assert_eq!(snap.health.stuck_jobs, 1);
        assert_eq!(snap.llm_partial.calls, 3);
        assert_eq!(snap.llm_partial.tokens_in, 30);
        assert_eq!(snap.finished(), 4);
        assert!(snap.report().contains("panicked"));
        assert!(snap.report().contains("llm partial"));
    }

    #[test]
    fn usage_meter_skips_the_cancellation_notice() {
        struct AlwaysCancelled;
        impl LlmService for AlwaysCancelled {
            fn complete(&self, _request: &CompletionRequest) -> String {
                CANCELLED_NOTICE.to_string()
            }
            fn embed(&self, _text: &str) -> Vec<f64> {
                Vec::new()
            }
            fn usage(&self) -> Usage {
                Usage::default()
            }
            fn simulated_latency_ms(&self) -> u64 {
                0
            }
            fn generate_code(&self, _spec: &CodeGenSpec) -> GeneratedCode {
                unreachable!()
            }
            fn suggest_fix(&self, _source: &str, _failures: &[String]) -> String {
                unreachable!()
            }
            fn repair_code(
                &self,
                _spec: &CodeGenSpec,
                _previous: &GeneratedCode,
                _suggestion: &str,
            ) -> GeneratedCode {
                unreachable!()
            }
        }
        let meter = UsageMeter::new(Arc::new(AlwaysCancelled));
        assert_eq!(meter.complete(&CompletionRequest::new("prompt")), CANCELLED_NOTICE);
        assert_eq!(meter.usage().calls, 0, "nothing billed for a short-circuited call");
    }

    #[test]
    fn usage_meter_counts_locally_and_forwards() {
        let world = WorldSpec::generate(3);
        let shared: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 3));
        let meter_a = UsageMeter::new(shared.clone());
        let meter_b = UsageMeter::new(shared.clone());
        meter_a.complete(&CompletionRequest::new("Summarize.\nText: a b c"));
        meter_a.complete(&CompletionRequest::new("Summarize.\nText: d e f"));
        meter_b.complete(&CompletionRequest::new("Summarize.\nText: g h i"));
        // Local views are isolated; the shared service sees everything.
        assert_eq!(meter_a.usage().calls, 2);
        assert_eq!(meter_b.usage().calls, 1);
        assert_eq!(shared.usage().calls, 3);
        assert!(meter_a.usage().tokens_in > 0);
        assert!(meter_a.usage().tokens_out > 0);
    }
}
