//! Job handles: what a submission returns, how callers poll and wait.

use crate::error::ServeError;
use lingua_core::Data;
use lingua_llm_sim::{CancelToken, Usage};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Server-unique job identifier. Deduplicated submissions get their own id
/// even when they share another job's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Coarse job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue (or attached to an in-flight duplicate).
    Queued,
    /// A worker is executing the pipeline.
    Running,
    /// Finished — a result (success or error) is available.
    Done,
}

/// What a successful run produced.
#[derive(Debug)]
pub struct JobOutput {
    /// Final variable environment (every op output).
    pub env: BTreeMap<String, Data>,
    /// LLM usage this run consumed (per-job metered; zero for cache hits).
    pub llm: Usage,
    /// Execution wall time (excludes queue wait; zero for cache hits).
    pub wall: Duration,
}

impl JobOutput {
    /// Fetch an output variable, erroring if absent.
    pub fn get(&self, var: &str) -> Result<&Data, ServeError> {
        self.env
            .get(var)
            .ok_or_else(|| ServeError::Core(lingua_core::CoreError::UnknownVariable(var.into())))
    }
}

struct JobState {
    status: JobStatus,
    result: Option<Result<Arc<JobOutput>, ServeError>>,
}

/// Shared completion cell. Duplicated submissions hold the *same* core, so
/// one execution wakes every waiter with one shared output.
pub(crate) struct JobCore {
    state: Mutex<JobState>,
    done: Condvar,
    /// The job's cancellation token: deadline (set at admission from the
    /// request timeout) plus the explicit flag behind [`JobHandle::cancel`].
    /// Propagated into the worker's `ExecContext` for the duration of the
    /// run, and read by the watchdog as the job's heartbeat.
    pub(crate) cancel: CancelToken,
}

impl JobCore {
    pub(crate) fn new() -> Arc<JobCore> {
        JobCore::with_cancel(CancelToken::unbounded())
    }

    /// A core whose execution is governed by `cancel`.
    pub(crate) fn with_cancel(cancel: CancelToken) -> Arc<JobCore> {
        Arc::new(JobCore {
            state: Mutex::new(JobState { status: JobStatus::Queued, result: None }),
            done: Condvar::new(),
            cancel,
        })
    }

    /// A core born finished (result-cache hits).
    pub(crate) fn finished(result: Result<Arc<JobOutput>, ServeError>) -> Arc<JobCore> {
        let core = JobCore::new();
        core.finish(result);
        core
    }

    pub(crate) fn set_running(&self) {
        self.state.lock().status = JobStatus::Running;
    }

    /// Publish the result and wake every waiter. Idempotent: the first
    /// completion wins, so the worker's normal path and the supervisor's
    /// crash-cleanup path can never double-publish or clobber each other.
    pub(crate) fn finish(&self, result: Result<Arc<JobOutput>, ServeError>) {
        let mut state = self.state.lock();
        if state.result.is_some() {
            return;
        }
        state.status = JobStatus::Done;
        state.result = Some(result);
        drop(state);
        self.done.notify_all();
    }

    pub(crate) fn is_finished(&self) -> bool {
        self.state.lock().result.is_some()
    }

    fn status(&self) -> JobStatus {
        self.state.lock().status
    }

    fn try_result(&self) -> Option<Result<Arc<JobOutput>, ServeError>> {
        self.state.lock().result.clone()
    }

    fn wait(&self) -> Result<Arc<JobOutput>, ServeError> {
        let mut state = self.state.lock();
        while state.result.is_none() {
            self.done.wait(&mut state);
        }
        // Invariant: the condvar loop above only exits with `result` set.
        state.result.clone().expect("checked above")
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<Arc<JobOutput>, ServeError>> {
        let mut state = self.state.lock();
        let deadline = std::time::Instant::now() + timeout;
        while state.result.is_none() {
            if self.done.wait_until(&mut state, deadline).timed_out() {
                return state.result.clone();
            }
        }
        state.result.clone()
    }
}

/// The caller's view of a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    pub(crate) core: Arc<JobCore>,
}

impl JobHandle {
    pub(crate) fn new(id: JobId, core: Arc<JobCore>) -> JobHandle {
        JobHandle { id, core }
    }

    pub fn id(&self) -> JobId {
        self.id
    }

    /// Non-blocking status poll.
    pub fn status(&self) -> JobStatus {
        self.core.status()
    }

    /// Non-blocking result poll; `None` while the job is still in flight.
    pub fn try_result(&self) -> Option<Result<Arc<JobOutput>, ServeError>> {
        self.core.try_result()
    }

    /// Block until the job finishes.
    pub fn wait(&self) -> Result<Arc<JobOutput>, ServeError> {
        self.core.wait()
    }

    /// Block up to `timeout`; `None` if the job is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Arc<JobOutput>, ServeError>> {
        self.core.wait_timeout(timeout)
    }

    /// Request cancellation of this job's execution. Cooperative: the
    /// executor stops at its next check-in and the job fails with
    /// [`ServeError::Cancelled`] (or [`ServeError::DeadlineExceeded`] if the
    /// deadline passed first). A job that already finished is unaffected.
    /// Deduplicated submissions share one execution, so cancelling any
    /// attached handle cancels it for every waiter.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).field("status", &self.status()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> Arc<JobOutput> {
        Arc::new(JobOutput { env: BTreeMap::new(), llm: Usage::default(), wall: Duration::ZERO })
    }

    #[test]
    fn handle_observes_lifecycle() {
        let core = JobCore::new();
        let handle = JobHandle::new(JobId(1), core.clone());
        assert_eq!(handle.status(), JobStatus::Queued);
        assert!(handle.try_result().is_none());
        core.set_running();
        assert_eq!(handle.status(), JobStatus::Running);
        core.finish(Ok(output()));
        assert_eq!(handle.status(), JobStatus::Done);
        assert!(handle.wait().is_ok());
        assert!(handle.try_result().unwrap().is_ok());
    }

    #[test]
    fn wait_blocks_until_finish_from_another_thread() {
        let core = JobCore::new();
        let handle = JobHandle::new(JobId(2), core.clone());
        let waiter = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(20));
        core.finish(Err(ServeError::Shutdown));
        assert!(matches!(waiter.join().unwrap(), Err(ServeError::Shutdown)));
    }

    #[test]
    fn wait_timeout_returns_none_while_in_flight() {
        let core = JobCore::new();
        let handle = JobHandle::new(JobId(3), core);
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn duplicated_handles_share_one_result() {
        let core = JobCore::new();
        let a = JobHandle::new(JobId(4), core.clone());
        let b = JobHandle::new(JobId(5), core.clone());
        core.finish(Ok(output()));
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert!(Arc::ptr_eq(&ra, &rb), "followers share the leader's output");
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn finished_cores_are_born_done() {
        let handle = JobHandle::new(JobId(6), JobCore::finished(Ok(output())));
        assert_eq!(handle.status(), JobStatus::Done);
    }

    #[test]
    fn finish_is_idempotent_first_completion_wins() {
        let core = JobCore::new();
        core.finish(Ok(output()));
        core.finish(Err(ServeError::Shutdown));
        assert!(core.is_finished());
        let handle = JobHandle::new(JobId(7), core);
        assert!(handle.wait().is_ok(), "the second finish must not clobber the first");
    }

    #[test]
    fn handle_cancel_flags_the_shared_token() {
        let core = JobCore::new();
        let a = JobHandle::new(JobId(8), core.clone());
        let b = JobHandle::new(JobId(9), core.clone());
        assert!(core.cancel.status().is_none());
        a.cancel();
        // Deduplicated handles share one execution, so either cancels both.
        assert!(core.cancel.explicitly_cancelled());
        assert_eq!(b.status(), JobStatus::Queued, "cancel is cooperative, not a completion");
    }
}
