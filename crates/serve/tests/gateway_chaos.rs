//! Chaos serving: a full serve workload over a gateway whose primary backend
//! injects transient faults must complete with **zero job-level failures** —
//! the retry/failover machinery absorbs everything before it reaches a job.
//!
//! The fault rate defaults to the paper-level acceptance bar (20%) and can
//! be raised by the CI chaos job via `LINGUA_CHAOS_FAULT_RATE`.

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_gateway::{FaultInjector, FaultPlan, Gateway, ServiceTransport};
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use std::sync::Arc;

const SUMMARIZE: &str = r#"pipeline summ {
    out = summarize(text) using llm with { desc: "summarize the following document" };
}"#;

fn fault_rate() -> f64 {
    std::env::var("LINGUA_CHAOS_FAULT_RATE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .filter(|rate| (0.0..=1.0).contains(rate))
        .unwrap_or(0.20)
}

/// Serve `jobs` unique summarize requests through a gateway with a flaky
/// primary (transient faults at `rate`) and a clean standby; assert every
/// job completes and the chaos stayed below the job layer.
fn run_chaos_workload(rate: f64, jobs: usize, workers: usize) {
    let world = WorldSpec::generate(61);
    let flaky = Arc::new(FaultInjector::new(
        "flaky-primary",
        Arc::new(SimLlm::with_seed(&world, 61)),
        FaultPlan::transient(rate, 777),
    ));
    let standby: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 61));
    let gateway = Arc::new(
        Gateway::builder()
            .backend(flaky)
            .backend(Arc::new(ServiceTransport::new("standby", standby)))
            .build(),
    );

    let factory = ContextFactory::new(Arc::clone(&gateway) as Arc<dyn LlmService>);
    let server = PipelineServer::start(
        factory,
        ServeConfig { workers: Some(workers), queue_capacity: jobs + 8, ..Default::default() },
    )
    .unwrap();
    server.attach_gateway(Arc::clone(&gateway));
    server.register_dsl("summ", SUMMARIZE, &Compiler::with_builtins()).unwrap();

    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            server
                .submit(
                    SubmitRequest::new("summ")
                        .input("text", Data::Str(format!("chaos document number {i}"))),
                )
                .expect("queue sized for the workload")
        })
        .collect();
    for handle in handles {
        let output = handle.wait().expect("no fault may surface as a job failure");
        assert!(output.get("out").is_ok());
        assert!(output.llm.calls >= 1);
    }

    let snap = server.metrics();
    assert_eq!(snap.completed, jobs as u64);
    assert_eq!(snap.failed, 0, "zero job-level failures at fault rate {rate}");
    let gw = snap.gateway.as_ref().expect("gateway attached");
    assert_eq!(
        gw.requests,
        gw.backends.iter().map(|b| b.counters.served).sum::<u64>() + gw.degraded()
    );
    assert_eq!(gw.degraded(), 0, "the clean standby absorbs every exhausted request");
    if rate >= 0.05 {
        assert!(gw.faults() > 0, "chaos at rate {rate} must actually inject faults");
    }
    assert!(snap.report().contains("gateway metrics"));
}

#[test]
fn serve_workload_survives_transient_chaos() {
    run_chaos_workload(fault_rate(), 48, 4);
}

/// Stress variant for the CI chaos job: near-total primary outage, bigger
/// workload. Run with `cargo test -- --ignored` (the chaos job does).
#[test]
#[ignore = "stress variant; the CI chaos job runs it with --include-ignored"]
fn serve_workload_survives_heavy_chaos() {
    run_chaos_workload(0.9, 96, 8);
}
