//! Property tests for trace/metric conservation under arbitrary worker
//! pools: whatever the pool size and workload, the trace stream must
//! rebuild into a well-formed forest whose `serve_job` spans and usage
//! rollups reconcile with the metrics snapshot. (The deterministic
//! one-of-each-path variant lives in `trace_conservation.rs`.)

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use lingua_trace::{ring_tracer, SpanKind, TraceTree};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary distinct workloads over arbitrary pool sizes: one executed
    /// `serve_job` span per submission, each wrapping exactly one pipeline,
    /// with the forest's total usage equal to the server's aggregate bill.
    #[test]
    fn multi_worker_traces_balance_for_any_pool_size(
        jobs in 1usize..10,
        workers in 1usize..5,
    ) {
        let world = WorldSpec::generate(53);
        let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 53));
        let (tracer, sink) = ring_tracer(1 << 14);
        let factory = ContextFactory::new(llm).with_tracer(tracer.clone());
        let server =
            PipelineServer::start(factory, ServeConfig { workers: Some(workers), ..Default::default() }).unwrap();
        let source = r#"pipeline summ {
            out = summarize(text) using llm with { desc: "summarize the following document" };
        }"#;
        server.register_dsl("summ", source, &Compiler::with_builtins()).unwrap();

        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let text = format!("quarterly report {i} on the beer catalogue");
                server.submit(SubmitRequest::new("summ").input("text", Data::Str(text))).unwrap()
            })
            .collect();
        for handle in &handles {
            prop_assert!(handle.wait().is_ok());
        }
        let metrics = server.metrics();
        drop(server);
        prop_assert_eq!(tracer.dropped(), 0);

        // Well-formed under concurrency: build() enforces unique timestamps,
        // balanced span edges, and parents open at child emission.
        let tree = TraceTree::build(&sink.events()).expect("well-formed multi-worker trace");
        prop_assert_eq!(metrics.accepted, jobs as u64);
        prop_assert_eq!(metrics.completed, jobs as u64, "distinct inputs never dedup");
        let executed: Vec<_> = tree
            .spans_of_kind(SpanKind::ServeJob)
            .into_iter()
            .filter(|j| j.attrs.get("path").map(String::as_str) == Some("executed"))
            .collect();
        prop_assert_eq!(executed.len() as u64, metrics.completed);
        for job in &executed {
            prop_assert_eq!(job.children.len(), 1, "one pipeline span per executed job");
            prop_assert_eq!(job.children[0].kind, SpanKind::Pipeline);
        }
        prop_assert_eq!(tree.total_usage(), metrics.llm);
    }
}
