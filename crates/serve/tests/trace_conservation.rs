//! Conservation laws between the serving metrics and the trace stream.
//!
//! Every submission takes exactly one path through the server — executed,
//! coalesced, cache-served, timed out, failed, or rejected — and each path
//! increments exactly one counter and closes exactly one `serve_job` span
//! with a matching `path` attribute. This test drives one of each path
//! through a single-worker server and checks the books balance both ways:
//! counter identities over the snapshot, and span-path tallies over the
//! rebuilt trace tree. (`proptest_serve_trace.rs` re-checks the invariants
//! under arbitrary multi-worker pools.)

use lingua_core::modules::{CustomModule, Module};
use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{SimLlm, Usage};
use lingua_serve::{
    JobStatus, MetricsSnapshot, PipelineServer, ServeConfig, ServeError, SubmitRequest,
};
use lingua_trace::{ring_tracer, SpanKind, TraceTree};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reusable latch: modules built over it block until the test opens it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() })
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }
}

fn test_compiler(gate: Arc<Gate>) -> Compiler {
    let mut compiler = Compiler::with_builtins();
    compiler.register("gate", move |_op, _ctx| {
        let gate = Arc::clone(&gate);
        Ok(Box::new(CustomModule::stateless("gate", move |input, _| {
            gate.wait();
            Ok(input)
        })) as Box<dyn Module>)
    });
    compiler
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

const GATED_LLM_PIPELINE: &str = r#"pipeline gated {
    held = gate(text);
    out = summarize(held) using llm with { desc: "summarize the following document" };
}"#;

/// Count `serve_job` spans whose terminal `path` attribute matches.
fn path_count(tree: &TraceTree, path: &str) -> u64 {
    tree.spans_of_kind(SpanKind::ServeJob)
        .iter()
        .filter(|j| j.attrs.get("path").map(String::as_str) == Some(path))
        .count() as u64
}

/// The books must balance: every accepted submission resolves to exactly one
/// terminal counter, and every counter maps onto a distinct span path.
fn assert_conserved(metrics: &MetricsSnapshot, tree: &TraceTree) {
    assert_eq!(
        metrics.accepted,
        metrics.completed
            + metrics.failed
            + metrics.timed_out
            + metrics.coalesced
            + metrics.cache_hits,
        "accepted submissions must all reach a terminal state after drain"
    );
    assert_eq!(metrics.queue_depth, 0, "drained server holds no queued jobs");
    assert_eq!(path_count(tree, "executed"), metrics.completed);
    assert_eq!(path_count(tree, "failed"), metrics.failed);
    assert_eq!(path_count(tree, "timeout"), metrics.timed_out);
    assert_eq!(path_count(tree, "dedup_hit"), metrics.coalesced);
    assert_eq!(path_count(tree, "cache_hit"), metrics.cache_hits);
    assert_eq!(path_count(tree, "rejected_full"), metrics.rejected);
    assert_eq!(
        tree.spans_of_kind(SpanKind::ServeJob).len() as u64,
        metrics.accepted + metrics.rejected,
        "every submission — accepted or rejected — leaves exactly one span"
    );
}

#[test]
fn every_submission_path_balances_counters_against_the_trace() {
    let world = WorldSpec::generate(47);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 47));
    let gate = Gate::new();
    let compiler = test_compiler(Arc::clone(&gate));
    let (tracer, sink) = ring_tracer(1 << 14);
    let factory = ContextFactory::new(llm).with_tracer(tracer.clone());
    let server = PipelineServer::start(
        factory,
        ServeConfig { workers: Some(1), queue_capacity: 3, ..Default::default() },
    )
    .unwrap();
    server.register_dsl("gated", GATED_LLM_PIPELINE, &compiler).unwrap();

    let request = |text: &str| SubmitRequest::new("gated").input("text", Data::Str(text.into()));

    // Occupy the single worker, then fill the queue behind it.
    let blocker = server.submit(request("blocker")).unwrap();
    wait_until("worker to pick up the blocker", || blocker.status() == JobStatus::Running);
    let queued_a = server.submit(request("queued a")).unwrap();
    let queued_b = server.submit(request("queued b")).unwrap();
    let stale = server.submit(request("stale").timeout(Duration::ZERO)).unwrap();
    // Queue at capacity: the next distinct submission is rejected...
    let err = server.submit(request("overflow")).unwrap_err();
    assert_eq!(err, ServeError::Full { capacity: 3 });
    // ...but duplicates of the running job coalesce without touching the queue.
    let dupes: Vec<_> = (0..2).map(|_| server.submit(request("blocker")).unwrap()).collect();

    gate.open();
    let leader = blocker.wait().unwrap();
    for dupe in &dupes {
        assert!(Arc::ptr_eq(&leader, &dupe.wait().unwrap()), "coalesced jobs share the output");
    }
    assert!(queued_a.wait().is_ok());
    assert!(queued_b.wait().is_ok());
    assert!(matches!(stale.wait(), Err(ServeError::Timeout { .. })));
    // Sequential repeat of a completed job: the result-cache path.
    server.run(request("queued a")).unwrap();

    let metrics = server.metrics();
    drop(server);
    assert_eq!(tracer.dropped(), 0, "the ring must be sized for the workload");
    let tree = TraceTree::build(&sink.events()).expect("trace stream is well-formed");

    // Exactly the planned tallies, then the general conservation law.
    assert_eq!(metrics.accepted, 7, "blocker + 2 queued + stale + 2 dupes + cache repeat");
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.timed_out, 1);
    assert_eq!(metrics.coalesced, 2);
    assert_eq!(metrics.cache_hits, 1);
    assert_conserved(&metrics, &tree);

    // Lifecycle instants: executed jobs were queued then dequeued; the stale
    // job was queued but never handed to the executor. The `queued` instant
    // is emitted before the bounded push (so it always precedes the worker's
    // `dequeued`), which means a rejected submission carries it too.
    let jobs = tree.spans_of_kind(SpanKind::ServeJob);
    for job in &jobs {
        let names: Vec<&str> = job.instants.iter().map(|i| i.name.as_str()).collect();
        match job.attrs.get("path").map(String::as_str) {
            Some("executed") => assert_eq!(names, ["queued", "dequeued"]),
            Some("timeout") | Some("rejected_full") => assert_eq!(names, ["queued"]),
            _ => assert!(names.is_empty(), "short-circuit paths emit no lifecycle instants"),
        }
    }

    // Cost conservation: the trace attributes every metered token. Only
    // executed jobs carry usage, and their rollups sum to the server's bill.
    let mut rolled = Usage::default();
    for job in &jobs {
        let rollup = job.rollup();
        if job.attrs.get("path").map(String::as_str) == Some("executed") {
            assert!(rollup.calls >= 1, "an executed llm pipeline bills at least one call");
        } else {
            assert_eq!(rollup, Usage::default(), "non-executed paths cost nothing");
        }
        rolled.merge(&rollup);
    }
    assert_eq!(rolled, metrics.llm, "span rollups account for the aggregate bill exactly");
    let summary = metrics.trace.as_ref().expect("traced factory folds a summary in");
    assert_eq!(summary.tokens_in, metrics.llm.tokens_in);
    assert_eq!(summary.tokens_out, metrics.llm.tokens_out);
    assert_eq!(summary.dropped, 0);
}
