//! Crash-injection matrix for the serve layer: kill the simulated process
//! at every journal kill point, recover from whatever bytes survived, and
//! prove the recovered server converges to the exact outputs and LLM bill
//! of a run that never crashed.
//!
//! The crash model is crash-stop: once the injector fires, every journal
//! write is silently dropped (the "process" is dead — nothing it does
//! afterwards is observable), and recovery sees only the durable prefix.
//! Determinism comes from `SimLlm` — re-executing a lost job bills exactly
//! what the first execution billed — so the ledger reconciliation holds to
//! the cent, not approximately.

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_durable::{CrashInjector, JournalTuning, KillPoint, SimStorage};
use lingua_llm_sim::{LlmService, SimLlm, TokenPricing};
use lingua_serve::{PipelineServer, ServeConfig, ServeError, SubmitRequest};
use std::sync::Arc;

const SEED: u64 = 77;
const CHECKPOINT_INTERVAL: usize = 8;

const CURATE: &str = r#"pipeline curate {
    out = summarize(text) using llm with { desc: "summarize the following document" };
}"#;

fn server_with(journal: JournalTuning) -> (PipelineServer, Arc<SimLlm>) {
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let server = PipelineServer::start(
        ContextFactory::new(llm.clone()),
        ServeConfig { workers: Some(2), journal: Some(journal), ..Default::default() },
    )
    .expect("server starts");
    server.register_dsl("curate", CURATE, &Compiler::with_builtins()).expect("register");
    (server, llm)
}

/// Distinct per-job inputs, so every job has its own fingerprint and its
/// own (deterministic) LLM bill.
fn request(i: usize) -> SubmitRequest {
    SubmitRequest::new("curate")
        .input("text", Data::Str(format!("brewery field report #{i}, batch {}", i * 31 % 7)))
}

/// Recovery after a crash at any kill point, at several occurrences, must
/// reproduce the uninterrupted run record-for-record — and the restored
/// ledger plus the replayed executions must bill exactly what the
/// uninterrupted run billed.
#[test]
fn recovery_matches_uninterrupted_at_every_kill_point() {
    const JOBS: usize = 12;

    // Reference: the run that never crashes.
    let (server, llm) = server_with(
        JournalTuning::sim(SimStorage::new()).with_checkpoint_interval(CHECKPOINT_INTERVAL),
    );
    let reference: Vec<String> =
        (0..JOBS).map(|i| server.run(request(i)).unwrap().get("out").unwrap().render()).collect();
    let reference_usage = llm.usage();
    assert!(reference_usage.calls > 0, "the workload must actually bill the LLM");
    drop(server);

    for point in KillPoint::ALL {
        for occurrence in [1u64, 5, 11] {
            // Run 1: dies at the armed kill point (or survives if the point
            // never fires that often — recovery must be a no-op then).
            let storage = SimStorage::new();
            let injector = CrashInjector::armed_at(point, occurrence);
            let tuning = JournalTuning::sim(storage.clone())
                .with_checkpoint_interval(CHECKPOINT_INTERVAL)
                .with_injector(injector);
            let (server, _run1_llm) = server_with(tuning);
            for i in 0..JOBS {
                server.run(request(i)).unwrap();
                if server.journal().expect("journal attached").dead() {
                    break;
                }
            }
            // No clean shutdown: the process is gone. Only `storage` survives.
            drop(server);

            // Run 2: recover from the surviving bytes and retry the whole
            // workload (the client's crash story: resubmit everything).
            let (server, llm) = server_with(
                JournalTuning::sim(storage).with_checkpoint_interval(CHECKPOINT_INTERVAL),
            );
            let label = format!("{}@{occurrence}", point.as_str());
            let snapshot = server.metrics().recovery.expect("journal surfaces recovery");
            assert!(
                snapshot.corrupt_records_skipped <= 1,
                "{label}: at most the torn tail record is lost, got {}",
                snapshot.corrupt_records_skipped
            );
            let resumed = server.resume_recovered().expect("resume");
            let snapshot = server.metrics().recovery.expect("recovery snapshot");
            assert_eq!(
                snapshot.resumed_jobs + snapshot.skipped_duplicates,
                resumed.len() as u64 + snapshot.skipped_duplicates,
                "{label}: resumption counters track the resubmissions"
            );
            for handle in resumed {
                handle.wait().unwrap_or_else(|err| panic!("{label}: resumed job failed: {err}"));
            }
            let outputs: Vec<String> = (0..JOBS)
                .map(|i| server.run(request(i)).unwrap().get("out").unwrap().render())
                .collect();
            assert_eq!(outputs, reference, "{label}: outputs diverge from the uninterrupted run");
            // Ledger reconciliation: restored (journaled) + replayed
            // (re-executed) == uninterrupted, field for field.
            let recovered_usage = llm.usage();
            assert_eq!(
                recovered_usage, reference_usage,
                "{label}: recovered + replayed bill must equal the uninterrupted bill"
            );
            let pricing = TokenPricing::default();
            assert!(
                (recovered_usage.cost_usd(&pricing) - reference_usage.cost_usd(&pricing)).abs()
                    < 1e-12,
                "{label}: ledger reconciles to the cent"
            );
        }
    }
}

/// A server without a journal surfaces no recovery snapshot; a fresh journal
/// surfaces an empty one.
#[test]
fn recovery_snapshot_surfaces_only_with_a_journal() {
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let server = PipelineServer::start(ContextFactory::new(llm), ServeConfig::default()).unwrap();
    assert!(server.metrics().recovery.is_none());
    drop(server);

    let (server, _llm) = server_with(JournalTuning::sim(SimStorage::new()));
    let snapshot = server.metrics().recovery.expect("fresh journal still reports");
    assert_eq!(snapshot.replayed, 0);
    assert_eq!(snapshot.corrupt_records_skipped, 0);
    let report = server.metrics().report();
    assert!(report.contains("recovery"), "operator report carries the recovery line:\n{report}");
}

/// Shutdown under load: jobs still queued when the pool can no longer run
/// them fail with typed [`ServeError::ShuttingDown`] — never silently
/// dropped — and stay journaled as pending so the next incarnation
/// resurrects them.
#[test]
fn shutdown_fails_queued_jobs_typed_and_keeps_them_journaled() {
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let storage = SimStorage::new();
    let mut server = PipelineServer::start(
        ContextFactory::new(llm),
        ServeConfig {
            workers: Some(1),
            max_worker_restarts: 0,
            journal: Some(JournalTuning::sim(storage.clone())),
            ..Default::default()
        },
    )
    .unwrap();
    let mut compiler = Compiler::with_builtins();
    compiler.register("boom", |_op, _ctx| {
        Ok(Box::new(lingua_core::modules::CustomModule::stateless("boom", |_, _| {
            // Escapes catch_unwind containment: kills the worker thread, not
            // just the job — the only way to leave jobs truly unrunnable.
            std::panic::panic_any(lingua_serve::EscapePanic)
        })) as Box<dyn lingua_core::modules::Module>)
    });
    server.register_dsl("explode", "pipeline explode { out = boom(text); }", &compiler).unwrap();

    // Kill the only worker (restart budget 0), then queue jobs nobody can run.
    let crash = server
        .submit(SubmitRequest::new("explode").input("text", Data::Str("first".into())))
        .unwrap();
    assert!(matches!(crash.wait(), Err(ServeError::Panicked { .. })));
    let queued: Vec<_> = (0..2)
        .map(|i| {
            server
                .submit(
                    SubmitRequest::new("explode").input("text", Data::Str(format!("queued {i}"))),
                )
                .unwrap()
        })
        .collect();

    server.shutdown();
    for handle in &queued {
        assert!(
            matches!(handle.wait(), Err(ServeError::ShuttingDown)),
            "queued jobs fail typed, not silently dropped"
        );
    }
    drop(server);

    // The drained jobs were deliberately NOT journaled as failed: a new
    // incarnation sees them pending and can resurrect them.
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let server = PipelineServer::start(
        ContextFactory::new(llm),
        ServeConfig { journal: Some(JournalTuning::sim(storage)), ..Default::default() },
    )
    .unwrap();
    // Clean shutdown compacts the log into one checkpoint frame, so the
    // drained jobs ride inside the checkpoint rather than as replayed tail
    // records — `replayed` only counts the tail.
    let snapshot = server.metrics().recovery.expect("recovery snapshot");
    assert_eq!(snapshot.corrupt_records_skipped, 0, "clean shutdown leaves no torn tail");
    // Two queued jobs (never run) plus the panicked job's failure record:
    // only the two drained ones come back pending.
    let resumed = server.resume_recovered().expect("resume");
    assert_eq!(resumed.len(), 0, "pipeline not registered yet: jobs stay stranded, not lost");
    server
        .register_dsl(
            "explode",
            "pipeline explode { out = clean(text) using llm with { desc: \"clean\" }; }",
            &Compiler::with_builtins(),
        )
        .unwrap();
    let resumed = server.resume_recovered().expect("resume again");
    assert_eq!(resumed.len(), 2, "both drained jobs resurrect once the pipeline exists");
    for handle in resumed {
        handle.wait().expect("resurrected jobs run to completion");
    }
}
