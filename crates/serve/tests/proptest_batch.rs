//! Property tests for continuous batching at the serving layer: for
//! arbitrary `(max_batch_size, max_wait, worker count)` a batched server
//! must be **record-for-record equivalent** to an unbatched one on seeded
//! ER and imputation pipelines, and mid-batch cancellation must never lose
//! or double-book a token.
//!
//! The equivalence claim leans on the simulator's determinism: every
//! response is a pure function of `(seed, prompt)`, so however the batcher
//! groups concurrent completions into flushes, each member's answer must be
//! byte-identical to what a lone unbatched call would have produced.
//!
//! The billing claim is the batching refinement of the serving conservation
//! law: per-job meters bill every response a job received, while the shared
//! ledger bills each flush once and books coalesced members as savings — so
//!
//! ```text
//!   attributed tokens (llm + llm_partial) == ledger billed + ledger saved
//!   attributed calls == batch members - cancelled members
//! ```
//!
//! hold token-exactly for every interleaving the scheduler produces.

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{BatchTuning, JobHandle, PipelineServer, ServeConfig, SubmitRequest};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const WORLD_SEED: u64 = 83;

const ER_PIPELINE: &str = r#"pipeline er {
    verdict = entity_resolution(a, b) using llm with {
        desc: "Determine if the following two records refer to the same entity.",
        output: "yesno"
    };
}"#;

const IMPUTATION_PIPELINE: &str = r#"pipeline imputation {
    brand = impute_manufacturer(product) using llm with {
        desc: "Fill in the missing manufacturer for this product.",
        payload_label: "Product",
        extra: "Candidates: Sony, Microsoft, Nintendo",
        output: "category:Sony,Microsoft,Nintendo"
    };
}"#;

/// The two seeded curation workloads the equivalence property runs over.
/// Inputs embed the job index so every job's prompt is distinct — no two
/// members of any batch can coalesce, which keeps the billed-token
/// comparison exact in both directions.
fn workload(
    kind: usize,
    jobs: usize,
) -> (&'static str, &'static str, &'static str, Vec<SubmitRequest>) {
    match kind {
        0 => {
            let requests = (0..jobs)
                .map(|i| {
                    SubmitRequest::new("er")
                        .input(
                            "a",
                            Data::Str(format!(
                                "beer_name: Hoppy Badger {i} IPA; brewery: Stonegate; abv: 6.{i}"
                            )),
                        )
                        .input(
                            "b",
                            Data::Str(format!(
                                "beer_name: Hoppy Badger {i}; brewery: Stonegate Brewing; abv: 6.{i}"
                            )),
                        )
                })
                .collect();
            ("er", ER_PIPELINE, "verdict", requests)
        }
        _ => {
            let requests = (0..jobs)
                .map(|i| {
                    SubmitRequest::new("imputation").input(
                        "product",
                        Data::Str(format!(
                            "name: Sony Vista {i}00 Webcam; description: compact usb webcam {i}"
                        )),
                    )
                })
                .collect();
            ("imputation", IMPUTATION_PIPELINE, "brand", requests)
        }
    }
}

fn server_over(
    llm: Arc<SimLlm>,
    workers: usize,
    batch: Option<BatchTuning>,
    name: &str,
    source: &str,
) -> PipelineServer {
    let server = PipelineServer::start(
        ContextFactory::new(llm),
        ServeConfig {
            workers: Some(workers),
            dedup_inflight: false,
            result_cache_capacity: 0,
            batch,
            ..Default::default()
        },
    )
    .unwrap();
    server.register_dsl(name, source, &Compiler::with_builtins()).unwrap();
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched ≡ unbatched, record for record, for arbitrary batching knobs
    /// and pool sizes — and the batched run never bills more tokens or more
    /// calls than the unbatched one.
    #[test]
    fn batched_serving_is_record_equivalent_to_unbatched(
        kind in 0usize..2,
        jobs in 1usize..9,
        workers in 1usize..4,
        max_batch_size in 1usize..6,
        max_wait_ms in 1u64..4,
    ) {
        let world = WorldSpec::generate(WORLD_SEED);
        let (name, source, var, requests) = workload(kind, jobs);
        let tuning = BatchTuning {
            max_batch_size,
            max_wait: Duration::from_millis(max_wait_ms),
        };

        let batched_llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, WORLD_SEED));
        let batched = server_over(Arc::clone(&batched_llm), workers, Some(tuning), name, source);
        let handles: Vec<JobHandle> =
            requests.iter().map(|r| batched.submit(r.clone()).unwrap()).collect();
        let batched_outputs: Vec<String> = handles
            .into_iter()
            .map(|h| h.wait().unwrap().get(var).unwrap().render())
            .collect();

        let unbatched_llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, WORLD_SEED));
        let unbatched = server_over(Arc::clone(&unbatched_llm), workers, None, name, source);
        let handles: Vec<JobHandle> =
            requests.iter().map(|r| unbatched.submit(r.clone()).unwrap()).collect();
        let unbatched_outputs: Vec<String> = handles
            .into_iter()
            .map(|h| h.wait().unwrap().get(var).unwrap().render())
            .collect();

        prop_assert_eq!(
            &batched_outputs, &unbatched_outputs,
            "batching changed an answer (kind {}, {} jobs, batch {} x {}ms, {} workers)",
            kind, jobs, max_batch_size, max_wait_ms, workers
        );

        // Distinct prompts mean no coalescing: the batched ledger must bill
        // the identical token volume in no more (usually fewer) calls.
        let batched_bill = batched_llm.usage();
        let unbatched_bill = unbatched_llm.usage();
        prop_assert_eq!(batched_bill.tokens_in, unbatched_bill.tokens_in);
        prop_assert_eq!(batched_bill.tokens_out, unbatched_bill.tokens_out);
        prop_assert!(
            batched_bill.calls <= unbatched_bill.calls,
            "batching placed more backend calls ({}) than unbatched ({})",
            batched_bill.calls, unbatched_bill.calls
        );
        let snap = batched.metrics();
        let batch = snap.batch.as_ref().expect("batched server surfaces batch counters");
        prop_assert_eq!(batch.batches, batched_bill.calls, "one billed call per flush");
        prop_assert!(batch.members as usize >= jobs, "every job's completion joined a batch");
    }

    /// Arbitrary cancellation patterns against a batched server: every
    /// admitted job reaches exactly one terminal state, and the per-job
    /// meters reconcile with the shared ledger token for token — a member
    /// cancelled mid-batch is billed nowhere, a served member is billed
    /// exactly once.
    #[test]
    fn mid_batch_cancellation_never_loses_or_double_books_usage(
        jobs in 1usize..10,
        workers in 1usize..4,
        max_batch_size in 1usize..6,
        cancel_mask in 0u32..1024,
    ) {
        let world = WorldSpec::generate(WORLD_SEED);
        let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, WORLD_SEED));
        let (name, source, _var, requests) = workload(0, jobs);
        let tuning = BatchTuning {
            max_batch_size,
            max_wait: Duration::from_millis(1),
        };
        let server = server_over(Arc::clone(&llm), workers, Some(tuning), name, source);

        let handles: Vec<JobHandle> = requests
            .into_iter()
            .enumerate()
            .map(|(i, request)| {
                let handle = server.submit(request).unwrap();
                if cancel_mask & (1 << i) != 0 {
                    // Race the cancel against admission, batching, and
                    // execution: the job may die in the queue, inside a
                    // filling batch, or after its answer came back. All
                    // three must reconcile.
                    handle.cancel();
                }
                handle
            })
            .collect();
        for handle in &handles {
            let _ = handle.wait();
        }

        let snap = server.metrics();
        prop_assert_eq!(snap.accepted, jobs as u64);
        prop_assert_eq!(
            snap.accepted, snap.finished(),
            "every admitted job reached exactly one terminal state"
        );

        let mut attributed = snap.llm;
        attributed.merge(&snap.llm_partial);
        let ledger = llm.usage();
        // Token conservation across the batcher: what the jobs metered is
        // exactly what the ledger billed plus what it recorded as saved
        // (cache-served members are real answers to their jobs, but savings
        // to the backend).
        prop_assert_eq!(
            attributed.tokens_in, ledger.tokens_in + ledger.tokens_in_saved,
            "input tokens lost or double-booked across the batcher"
        );
        prop_assert_eq!(
            attributed.tokens_out, ledger.tokens_out + ledger.tokens_out_saved,
            "output tokens lost or double-booked across the batcher"
        );
        let batch = snap.batch.as_ref().expect("batched server surfaces batch counters");
        prop_assert_eq!(
            attributed.calls, batch.members - batch.cancelled_members,
            "every live batch member was metered by exactly one job"
        );
        // A flush whose members were all cancelled reaches the backend as an
        // empty batch and bills nothing, so flushes bound billed calls from
        // above rather than equalling them.
        prop_assert!(
            ledger.calls <= batch.batches,
            "more billed calls ({}) than flushes ({})",
            ledger.calls, batch.batches
        );
    }
}
