//! Property test for the cancellation billing invariant: however many jobs
//! are submitted, cancelled, or deadline-starved across an arbitrary worker
//! pool, no usage is ever lost or double-counted — the shared service's
//! ledger always equals `llm + llm_partial`, and every admitted job reaches
//! exactly one terminal state. (The deterministic chaos variants live in
//! `panic_chaos.rs`.)

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary mixes of plain, cancelled, and tightly-deadlined jobs:
    /// `accepted == finished()` once all waiters return, and the shared
    /// LLM ledger reconciles with `llm + llm_partial` to the token.
    #[test]
    fn cancellation_never_loses_usage_accounting(
        jobs in 1usize..12,
        workers in 1usize..4,
        cancel_mask in 0u32..4096,
        deadline_mask in 0u32..4096,
    ) {
        let world = WorldSpec::generate(79);
        let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 79));
        let server = PipelineServer::start(
            ContextFactory::new(Arc::clone(&llm)),
            ServeConfig {
                workers: Some(workers),
                dedup_inflight: false,
                result_cache_capacity: 0,
                ..Default::default()
            },
        )
        .unwrap();
        server
            .register_dsl(
                "summ",
                r#"pipeline summ {
                    out = summarize(text) using llm with { desc: "summarize the following document" };
                }"#,
                &Compiler::with_builtins(),
            )
            .unwrap();
        let billed_before = llm.usage();

        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let mut request = SubmitRequest::new("summ")
                    .input("text", Data::Str(format!("annual report {i} on the beer catalogue")));
                if deadline_mask & (1 << i) != 0 {
                    // Tight enough to expire in the queue or mid-run on a
                    // busy pool, long enough to sometimes finish: all three
                    // outcomes stay reachable.
                    request = request.timeout(Duration::from_millis(1));
                }
                let handle = server.submit(request).unwrap();
                if cancel_mask & (1 << i) != 0 {
                    handle.cancel();
                }
                handle
            })
            .collect();
        for handle in &handles {
            let _ = handle.wait();
        }

        let snap = server.metrics();
        prop_assert_eq!(snap.accepted, jobs as u64);
        prop_assert_eq!(snap.deduped(), 0);
        prop_assert_eq!(
            snap.accepted, snap.finished(),
            "every admitted job reaches exactly one terminal state"
        );
        let mut attributed = snap.llm;
        attributed.merge(&snap.llm_partial);
        prop_assert_eq!(
            llm.usage().since(&billed_before), attributed,
            "shared ledger == completed + partial billing"
        );
    }
}
