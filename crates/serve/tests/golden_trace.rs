//! Golden-trace snapshot tests: a seeded ER and imputation run through the
//! serving engine must reproduce its *entire decision tree* — span kinds,
//! module names, paths taken, validator retries, call counts, token totals —
//! byte for byte.
//!
//! Fixture protocol:
//! * fixture absent → the run's canonical trace is written and the test
//!   passes (bless-on-first-run);
//! * `LINGUA_BLESS=1` → fixtures are rewritten unconditionally;
//! * otherwise → byte-exact comparison against `tests/golden/*.json`.
//!
//! Durations, span ids, sequence numbers, and thread ordinals never appear
//! in the fixture (see `TraceTree::golden`), so the same workload serializes
//! identically at 1 and 4 workers and across consecutive runs.

use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{SimLlm, TokenPricing, Usage};
use lingua_serve::{MetricsSnapshot, PipelineServer, ServeConfig, SubmitRequest};
use lingua_trace::{ring_tracer, SpanKind, TraceTree};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

const WORLD_SEED: u64 = 91;
const LLM_SEED: u64 = 91;

const ER_PIPELINE: &str = r#"pipeline er {
    verdict = entity_resolution(a, b) using llm with {
        desc: "Determine if the following two records refer to the same entity.",
        output: "yesno"
    };
}"#;

const IMPUTATION_PIPELINE: &str = r#"pipeline imputation {
    brand = impute_manufacturer(product) using llm with {
        desc: "Fill in the missing manufacturer for this product.",
        payload_label: "Product",
        extra: "Candidates: Sony, Microsoft, Nintendo",
        output: "category:Sony,Microsoft,Nintendo"
    };
}"#;

/// Fixed ER workload: borderline beer-catalogue pairs.
fn er_jobs() -> Vec<Vec<(&'static str, String)>> {
    let pairs = [
        (
            "beer_name: Hoppy Badger IPA; brewery: Stonegate Brewing; abv: 6.2",
            "beer_name: Hoppy Badger; brewery: Stonegate Brewing Co.; abv: 6.2",
        ),
        (
            "beer_name: Midnight Porter; brewery: Old Mill; abv: 5.5",
            "beer_name: Golden Lager; brewery: Riverbend; abv: 4.8",
        ),
        (
            "beer_name: Cloudy Wheat; brewery: Harvest Moon; abv: 5.0",
            "beer_name: Cloudy Wheat Ale; brewery: Harvest Moon Brewery; abv: 5.0",
        ),
        (
            "beer_name: Amber Fox; brewery: Foxfield; abv: 5.9",
            "beer_name: Amber Wolf; brewery: Wolfcreek; abv: 6.1",
        ),
    ];
    pairs.iter().map(|(a, b)| vec![("a", (*a).to_string()), ("b", (*b).to_string())]).collect()
}

/// Fixed imputation workload: products with a missing manufacturer.
fn imputation_jobs() -> Vec<Vec<(&'static str, String)>> {
    [
        "name: Sony Vista 300 Webcam; description: compact usb webcam",
        "name: Xbox Elite Controller; description: wireless gamepad by Microsoft",
        "name: Switch Pro Joypad; description: Nintendo console accessory",
    ]
    .iter()
    .map(|p| vec![("product", (*p).to_string())])
    .collect()
}

struct TracedRun {
    golden: String,
    tree: TraceTree,
    metrics: MetricsSnapshot,
    /// Job id → the per-job `UsageMeter` bill, for executed jobs.
    bills: BTreeMap<u64, Usage>,
}

/// Run a workload through a traced server: submit every job (all distinct),
/// wait for all of them, then repeat the first request sequentially so the
/// result-cache path shows up in the trace deterministically.
fn run_traced(
    workers: usize,
    name: &str,
    source: &str,
    jobs: &[Vec<(&'static str, String)>],
) -> TracedRun {
    let world = WorldSpec::generate(WORLD_SEED);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, LLM_SEED));
    let (tracer, sink) = ring_tracer(1 << 14);
    let factory = ContextFactory::new(llm).with_tracer(tracer.clone());
    let server = PipelineServer::start(
        factory,
        ServeConfig { workers: Some(workers), ..Default::default() },
    )
    .unwrap();
    server.register_dsl(name, source, &Compiler::with_builtins()).unwrap();

    let request = |job: &[(&'static str, String)]| {
        let mut request = SubmitRequest::new(name);
        for (key, value) in job {
            request = request.input(*key, Data::Str(value.clone()));
        }
        request
    };
    let handles: Vec<_> = jobs.iter().map(|job| server.submit(request(job)).unwrap()).collect();
    let mut bills = BTreeMap::new();
    for handle in &handles {
        let output = handle.wait().unwrap();
        bills.insert(handle.id().0, output.llm);
    }
    // Sequential repeat of the first job: a deterministic cache hit.
    server.run(request(&jobs[0])).unwrap();

    let metrics = server.metrics();
    drop(server);
    assert_eq!(tracer.dropped(), 0, "the ring must be sized for the workload");
    let tree = TraceTree::build(&sink.events()).expect("trace stream is well-formed");
    let golden = tree.golden_pretty();
    TracedRun { golden, tree, metrics, bills }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare against the fixture, blessing it when absent or when
/// `LINGUA_BLESS=1` is set.
fn assert_matches_fixture(name: &str, golden: &str) {
    let path = fixture_path(name);
    let bless = std::env::var("LINGUA_BLESS").is_ok_and(|v| v == "1");
    if bless || !path.exists() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, golden).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        golden, expected,
        "golden trace drifted from {name}; if the change is intended, \
         regenerate fixtures with LINGUA_BLESS=1"
    );
}

#[test]
fn er_golden_trace_matches_fixture() {
    let run = run_traced(1, "er", ER_PIPELINE, &er_jobs());

    // Structure sanity before trusting the fixture: one compile root, one
    // serve_job per submission (+1 cache repeat), each executed job nesting
    // pipeline → op → llm_call.
    let compiles = run.tree.spans_of_kind(SpanKind::Compile);
    assert_eq!(compiles.len(), 1, "register_dsl compiles once");
    let jobs = run.tree.spans_of_kind(SpanKind::ServeJob);
    assert_eq!(jobs.len(), er_jobs().len() + 1);
    let executed: Vec<_> = jobs
        .iter()
        .filter(|j| j.attrs.get("path").map(String::as_str) == Some("executed"))
        .collect();
    assert_eq!(executed.len(), er_jobs().len());
    for job in &executed {
        assert_eq!(job.children.len(), 1, "one pipeline span per executed job");
        assert_eq!(job.children[0].kind, SpanKind::Pipeline);
        assert!(job.count_kind(SpanKind::LlmCall) >= 1, "ER judgment billed the LLM");
        assert!(job.attrs.contains_key("fingerprint"), "dedup key recorded");
    }
    let cache_hits: Vec<_> = jobs
        .iter()
        .filter(|j| j.attrs.get("path").map(String::as_str) == Some("cache_hit"))
        .collect();
    assert_eq!(cache_hits.len(), 1, "the sequential repeat is a cache hit");
    assert_eq!(cache_hits[0].rollup(), Usage::default(), "cache hits cost nothing");

    assert_matches_fixture("er_trace.json", &run.golden);
}

#[test]
fn imputation_golden_trace_matches_fixture() {
    let run = run_traced(1, "imputation", IMPUTATION_PIPELINE, &imputation_jobs());
    let jobs = run.tree.spans_of_kind(SpanKind::ServeJob);
    assert_eq!(jobs.len(), imputation_jobs().len() + 1);
    assert_matches_fixture("imputation_trace.json", &run.golden);
}

#[test]
fn golden_is_byte_stable_across_runs_and_worker_counts() {
    // Two consecutive seeded runs and a 4-worker run must serialize to the
    // exact same bytes after canonical ordering — the acceptance bar for
    // trusting traces as regression fixtures.
    let first = run_traced(1, "er", ER_PIPELINE, &er_jobs());
    let second = run_traced(1, "er", ER_PIPELINE, &er_jobs());
    assert_eq!(first.golden, second.golden, "consecutive runs must be byte-identical");
    let wide = run_traced(4, "er", ER_PIPELINE, &er_jobs());
    assert_eq!(first.golden, wide.golden, "1-worker and 4-worker traces must canonicalize alike");
}

#[test]
fn per_job_cost_rollups_reconcile_with_the_meter() {
    let run = run_traced(2, "er", ER_PIPELINE, &er_jobs());

    // Every executed job's subtree rollup equals what its UsageMeter billed
    // — same calls, same tokens, and therefore the same dollars to the cent.
    let jobs = run.tree.spans_of_kind(SpanKind::ServeJob);
    let mut rolled_total = Usage::default();
    let mut matched = 0;
    for job in jobs {
        if job.attrs.get("path").map(String::as_str) != Some("executed") {
            continue;
        }
        let id: u64 = job.attrs["job"].parse().expect("job attr is the numeric id");
        let billed = run.bills.get(&id).expect("an executed span maps to a waited job");
        let rollup = job.rollup();
        assert_eq!(rollup, *billed, "trace rollup diverges from the meter for job {id}");
        let pricing = TokenPricing::default();
        let cents = |usage: &Usage| (usage.cost_usd(&pricing) * 100.0).round() as i64;
        assert_eq!(cents(&rollup), cents(billed), "cost attribution off by a cent for job {id}");
        rolled_total.merge(&rollup);
        matched += 1;
    }
    assert_eq!(matched, er_jobs().len());

    // The sum of per-job rollups is the server's aggregate LLM bill, and the
    // trace summary folded into the snapshot agrees.
    assert_eq!(rolled_total, run.metrics.llm);
    let summary = run.metrics.trace.as_ref().expect("traced factory folds a summary in");
    assert_eq!(summary.tokens_in, rolled_total.tokens_in);
    assert_eq!(summary.tokens_out, rolled_total.tokens_out);
    assert_eq!(summary.llm_calls, rolled_total.calls + rolled_total.cached_calls);
    assert!(run.metrics.report().contains("trace"), "report prints the trace line");
}
