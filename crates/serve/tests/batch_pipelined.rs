//! Pipelined dispatch × continuous batching: a **single** serve worker
//! running a [`PipelinedMapModule`] keeps many in-flight calls inside the
//! batcher at once, so size-triggered batches fill without any concurrent
//! jobs. The window is set absurdly long (30s) — if dispatch were
//! sequential, the only way the batch could flush would be the window
//! timer, and the test would stall; a size flush completing instantly is
//! the proof that the lanes genuinely overlap.

use lingua_core::modules::{LlmModule, Module, PipelinedMapModule, PromptBuilder};
use lingua_core::validation::OutputValidator;
use lingua_core::{ContextFactory, Data, LogicalOp, PhysicalPipeline};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{BatchTuning, PipelineServer, ServeConfig, SubmitRequest};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 90;

/// One-op pipeline: `batch` (a list of `{a, b}` pair maps) judged through a
/// pipelined map at the given depth.
fn pipelined_er(depth: usize) -> PhysicalPipeline {
    let module = PipelinedMapModule::new("match_batch", depth, || {
        Box::new(LlmModule::new(
            "er_judge",
            PromptBuilder::PairJudgment {
                description: "Determine if the following two records refer to the same entity."
                    .into(),
                examples: vec![],
            },
            OutputValidator::YesNo,
        )) as Box<dyn Module>
    });
    PhysicalPipeline {
        name: "match_batch".to_string(),
        ops: vec![(
            LogicalOp::new("match_batch").output("labels").input("batch"),
            Box::new(module) as Box<dyn Module>,
        )],
    }
}

fn pair(i: usize) -> Data {
    Data::map([
        ("a".to_string(), Data::Str(format!("beer_name: Hoppy Badger {i} IPA; abv: 6.{i}"))),
        ("b".to_string(), Data::Str(format!("beer_name: Hoppy Badger {i}; abv: 6.{i}"))),
    ])
}

#[test]
fn one_worker_fills_size_triggered_batches_through_the_pipelined_map() {
    const BATCH: usize = 4;
    let world = WorldSpec::generate(SEED);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, SEED));
    let reference: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, SEED));
    let server = PipelineServer::start(
        ContextFactory::new(Arc::clone(&llm) as Arc<dyn LlmService>),
        ServeConfig {
            workers: Some(1),
            dedup_inflight: false,
            result_cache_capacity: 0,
            // A window no test run ever waits out: only a size flush can
            // answer within the suite's lifetime.
            batch: Some(BatchTuning { max_batch_size: BATCH, max_wait: Duration::from_secs(30) }),
            ..Default::default()
        },
    )
    .unwrap();
    server.register_pipeline("match_batch", pipelined_er(BATCH)).unwrap();

    // One job, one worker: the only concurrency is the pipelined map's.
    let input = Data::List((0..BATCH).map(pair).collect());
    let handle = server.submit(SubmitRequest::new("match_batch").input("batch", input)).unwrap();
    let outputs = handle.wait().unwrap();
    let labels = outputs.get("labels").unwrap();

    // Record-for-record equivalence with a lone unbatched reference run.
    let mut reference_ctx =
        ContextFactory::new(Arc::clone(&reference) as Arc<dyn LlmService>).build();
    let mut reference_pipeline = pipelined_er(1);
    let expected = reference_pipeline.ops[0]
        .1
        .invoke(Data::List((0..BATCH).map(pair).collect()), &mut reference_ctx)
        .unwrap();
    assert_eq!(labels, &expected);

    // The proof of overlap: every member of the job landed in ONE
    // size-triggered flush; the 30s window never fired.
    let snap = server.metrics();
    let batch = snap.batch.expect("batched server surfaces batch counters");
    assert_eq!(batch.batches, 1, "one flush for the whole job");
    assert_eq!(batch.members, BATCH as u64);
    assert_eq!(batch.size_flushes, 1, "the size trigger fired, not the window");
    assert_eq!(batch.window_flushes, 0);
    assert_eq!(batch.max_occupancy, BATCH as u64);
    // One billed backend call for the whole batch.
    assert_eq!(llm.usage().calls, 1);
}

#[test]
fn pipelined_depth_bounds_batch_occupancy() {
    // Depth 2 against a size-4 batcher: the worker can only hold two calls
    // in flight, so flushes are window-triggered pairs, never full batches.
    // (Inverse of the test above: occupancy tracks dispatch depth.)
    const DEPTH: usize = 2;
    let world = WorldSpec::generate(SEED);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, SEED));
    let server = PipelineServer::start(
        ContextFactory::new(Arc::clone(&llm) as Arc<dyn LlmService>),
        ServeConfig {
            workers: Some(1),
            dedup_inflight: false,
            result_cache_capacity: 0,
            batch: Some(BatchTuning { max_batch_size: DEPTH, max_wait: Duration::from_secs(30) }),
            ..Default::default()
        },
    )
    .unwrap();
    server.register_pipeline("match_batch", pipelined_er(DEPTH)).unwrap();
    let input = Data::List((0..6).map(pair).collect());
    let handle = server.submit(SubmitRequest::new("match_batch").input("batch", input)).unwrap();
    handle.wait().unwrap();
    let batch = server.metrics().batch.expect("batch counters");
    assert_eq!(batch.members, 6);
    assert_eq!(batch.size_flushes, 3, "pairs of in-flight calls fill size-2 batches");
    assert_eq!(batch.max_occupancy, DEPTH as u64);
}
