//! Chaos tests for supervised execution: panicking pipelines must fail
//! *alone*, killed workers must be resurrected, deadlines must be honoured
//! in bounded time, and the serving conservation law must hold under
//! contention — `accepted == finished() + deduped()` once every waiter has
//! returned, with `llm + llm_partial` reconciling against the shared
//! service's ledger to the token.

use lingua_core::modules::{CustomModule, Module};
use lingua_core::{Compiler, ContextFactory, CoreError, Data, TrapKind};
use lingua_dataset::world::WorldSpec;
use lingua_gateway::{FaultInjector, FaultPlan, Gateway, ServiceTransport};
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{
    EscapePanic, JobStatus, PipelineServer, ServeConfig, ServeError, SubmitRequest,
};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reusable latch: modules built over it block until the test opens it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() })
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }
}

/// Builtins plus the chaos ops:
///
/// * `boom` — panics with a string payload (contained: the worker survives)
/// * `kill` — panics with [`EscapePanic`] (kills the worker thread)
/// * `snooze` — sleeps ~60 ms, then passes its input through
/// * `gate` — blocks until the test opens the latch
/// * `trap` — fails with a script fuel trap
fn chaos_compiler(gate: Arc<Gate>) -> Compiler {
    let mut compiler = Compiler::with_builtins();
    compiler.register("boom", |_op, _ctx| {
        Ok(Box::new(CustomModule::stateless("boom", |_, _| {
            panic!("chaos: deliberate pipeline panic");
        })) as Box<dyn Module>)
    });
    compiler.register("kill", |_op, _ctx| {
        Ok(Box::new(CustomModule::stateless("kill", |_, _| {
            std::panic::panic_any(EscapePanic);
        })) as Box<dyn Module>)
    });
    compiler.register("snooze", |_op, _ctx| {
        Ok(Box::new(CustomModule::stateless("snooze", |input, _| {
            std::thread::sleep(Duration::from_millis(60));
            Ok(input)
        })) as Box<dyn Module>)
    });
    compiler.register("gate", move |_op, _ctx| {
        let gate = Arc::clone(&gate);
        Ok(Box::new(CustomModule::stateless("gate", move |input, _| {
            gate.wait();
            Ok(input)
        })) as Box<dyn Module>)
    });
    compiler.register("trap", |_op, _ctx| {
        Ok(Box::new(CustomModule::stateless("trap", |_, _| {
            Err(CoreError::Trap { module: "trap".into(), trap: TrapKind::OutOfFuel })
        })) as Box<dyn Module>)
    });
    compiler
}

/// A server with every dedup layer off: chaos jobs must all really run.
fn chaos_server(workers: usize, gate: Arc<Gate>, llm: Arc<SimLlm>) -> PipelineServer {
    let server = PipelineServer::start(
        ContextFactory::new(llm),
        ServeConfig {
            workers: Some(workers),
            dedup_inflight: false,
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let compiler = chaos_compiler(gate);
    server.register_dsl("boom", r#"pipeline boom { out = boom(text); }"#, &compiler).unwrap();
    server.register_dsl("kill", r#"pipeline kill { out = kill(text); }"#, &compiler).unwrap();
    server.register_dsl("slow", r#"pipeline slow { out = snooze(text); }"#, &compiler).unwrap();
    server.register_dsl("hold", r#"pipeline hold { out = gate(text); }"#, &compiler).unwrap();
    server.register_dsl("trap", r#"pipeline trap { out = trap(text); }"#, &compiler).unwrap();
    server
        .register_dsl(
            "summ",
            r#"pipeline summ {
                out = summarize(text) using llm with { desc: "summarize the following document" };
            }"#,
            &compiler,
        )
        .unwrap();
    server
}

fn sim(seed: u64) -> Arc<SimLlm> {
    let world = WorldSpec::generate(seed);
    Arc::new(SimLlm::with_seed(&world, seed))
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn a_panicking_pipeline_fails_alone_and_the_worker_survives() {
    let gate = Gate::new();
    gate.open();
    let server = chaos_server(2, gate, sim(71));

    let boom = server
        .submit(SubmitRequest::new("boom").input("text", Data::Str("goes bang".into())))
        .unwrap();
    let err = boom.wait().unwrap_err();
    match err {
        ServeError::Panicked { pipeline, payload } => {
            assert_eq!(pipeline, "boom");
            assert!(payload.contains("deliberate pipeline panic"), "payload kept: {payload}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    // The pool never shrank: the panic was contained at the job boundary,
    // so no restart was needed and ordinary work keeps flowing.
    let healthy = server
        .run(SubmitRequest::new("summ").input("text", Data::Str("life goes on".into())))
        .unwrap();
    assert!(healthy.get("out").is_ok());
    let snap = server.metrics();
    assert_eq!(snap.panicked, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.health.live_workers, 2);
    assert_eq!(snap.health.workers_restarted, 0, "contained panics don't burn restarts");
}

#[test]
fn escaped_panics_kill_workers_and_the_supervisor_restores_the_pool() {
    let gate = Gate::new();
    gate.open();
    let server = chaos_server(4, gate, sim(72));

    // Interleave worker-killing jobs with ordinary ones under load.
    let kills: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(SubmitRequest::new("kill").input("text", Data::Str(format!("kill {i}"))))
                .unwrap()
        })
        .collect();
    let normals: Vec<_> = (0..12)
        .map(|i| {
            server
                .submit(
                    SubmitRequest::new("summ")
                        .input("text", Data::Str(format!("quarterly report {i}"))),
                )
                .unwrap()
        })
        .collect();

    // Zero lost jobs: every kill job reports the panic, every normal job
    // completes — even though workers died mid-stream.
    for kill in &kills {
        assert!(matches!(kill.wait(), Err(ServeError::Panicked { .. })));
    }
    for normal in &normals {
        assert!(normal.wait().is_ok(), "in-flight work survives worker deaths");
    }

    // The supervisor resurrects every killed worker: full strength again.
    wait_until("pool restored to 4 live workers", || server.live_worker_count() == 4);
    let snap = server.metrics();
    assert_eq!(snap.panicked, 6);
    assert_eq!(snap.completed, 12);
    assert!(snap.health.workers_restarted >= 1, "at least one resurrection happened");
    assert_eq!(snap.health.workers_gave_up, 0, "budgets were nowhere near exhausted");
    assert_eq!(snap.accepted, snap.finished(), "no job was lost or double-counted");
}

#[test]
fn a_deadlined_job_over_a_slow_module_fails_in_bounded_time() {
    let gate = Gate::new();
    gate.open();
    let server = chaos_server(1, gate, sim(73));

    // 50 ms deadline over a ~60 ms module: the op itself cannot be
    // interrupted, but the executor's next cooperative check-in fires.
    let started = Instant::now();
    let handle = server
        .submit(
            SubmitRequest::new("slow")
                .input("text", Data::Str("too slow".into()))
                .timeout(Duration::from_millis(50)),
        )
        .unwrap();
    let err = handle.wait().unwrap_err();
    let waited = started.elapsed();
    assert!(
        matches!(err, ServeError::DeadlineExceeded { elapsed } if elapsed >= Duration::from_millis(50)),
        "expected DeadlineExceeded past the budget, got {err:?}"
    );
    assert!(waited < Duration::from_secs(5), "bounded: returned in {waited:?}");
    let snap = server.metrics();
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.completed, 0);
}

#[test]
fn cancellation_is_honoured_queued_and_mid_execution() {
    let gate = Gate::new();
    let server = chaos_server(1, Arc::clone(&gate), sim(74));

    let running = server
        .submit(SubmitRequest::new("hold").input("text", Data::Str("held at the gate".into())))
        .unwrap();
    wait_until("worker to pick up the held job", || running.status() == JobStatus::Running);
    let queued = server
        .submit(SubmitRequest::new("summ").input("text", Data::Str("never runs".into())))
        .unwrap();

    // Cancel both: the queued job dies at dequeue without executing; the
    // running one stops at the executor's next check-in once the gate opens.
    queued.cancel();
    running.cancel();
    gate.open();
    assert!(matches!(running.wait(), Err(ServeError::Cancelled)));
    assert!(matches!(queued.wait(), Err(ServeError::Cancelled)));

    let snap = server.metrics();
    assert_eq!(snap.cancelled, 2);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.llm.calls, 0, "nothing billed to completed jobs");
    assert_eq!(snap.accepted, snap.finished());
}

#[test]
fn the_watchdog_flags_a_stuck_job_and_nudges_it() {
    let gate = Gate::new();
    let server = {
        let llm = sim(75);
        let server = PipelineServer::start(
            ContextFactory::new(llm),
            ServeConfig {
                workers: Some(1),
                supervisor_tick: Duration::from_millis(2),
                stuck_multiplier: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let compiler = chaos_compiler(Arc::clone(&gate));
        server.register_dsl("hold", r#"pipeline hold { out = gate(text); }"#, &compiler).unwrap();
        server
    };

    // A 10 ms budget over a module wedged on the latch: after 2× the budget
    // with no heartbeat progress the watchdog flags it and fires its token.
    let handle = server
        .submit(
            SubmitRequest::new("hold")
                .input("text", Data::Str("wedged".into()))
                .timeout(Duration::from_millis(10)),
        )
        .unwrap();
    wait_until("watchdog to flag the wedged job", || server.metrics().health.stuck_jobs >= 1);

    // The nudge cannot kill a wedged thread, but once the module returns the
    // executor observes the fired token. The deadline passed long ago, so the
    // typed outcome is DeadlineExceeded.
    gate.open();
    assert!(matches!(handle.wait(), Err(ServeError::DeadlineExceeded { .. })));
    let snap = server.metrics();
    assert_eq!(snap.health.stuck_jobs, 1);
    assert_eq!(snap.deadline_exceeded, 1);
}

#[test]
fn script_traps_are_counted_by_kind() {
    let gate = Gate::new();
    gate.open();
    let server = chaos_server(1, gate, sim(76));
    let err = server
        .run(SubmitRequest::new("trap").input("text", Data::Str("burns all fuel".into())))
        .unwrap_err();
    assert!(matches!(err, ServeError::Core(CoreError::Trap { trap: TrapKind::OutOfFuel, .. })));
    let snap = server.metrics();
    assert_eq!(snap.failed, 1, "a trap is a flavor of failure");
    assert_eq!(snap.traps.out_of_fuel, 1);
    assert_eq!(snap.traps.total(), 1);
    assert!(snap.report().contains("traps"));
}

/// The CI chaos job raises this; locally it defaults to the paper-level
/// acceptance bar (20%).
fn fault_rate() -> f64 {
    std::env::var("LINGUA_CHAOS_FAULT_RATE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .filter(|rate| (0.0..=1.0).contains(rate))
        .unwrap_or(0.20)
}

#[test]
fn supervision_guarantees_hold_over_a_faulty_gateway() {
    // A flaky primary (transient faults) with a clean standby underneath the
    // worker pool, while workers are killed and deadlines fire mid-retry.
    let world = WorldSpec::generate(78);
    let flaky = Arc::new(FaultInjector::new(
        "flaky-primary",
        Arc::new(SimLlm::with_seed(&world, 78)),
        FaultPlan::transient(fault_rate(), 901),
    ));
    let standby: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 78));
    let gateway = Arc::new(
        Gateway::builder()
            .backend(flaky)
            .backend(Arc::new(ServiceTransport::new("standby", standby)))
            .build(),
    );
    let server = PipelineServer::start(
        ContextFactory::new(Arc::clone(&gateway) as Arc<dyn LlmService>),
        ServeConfig {
            workers: Some(4),
            dedup_inflight: false,
            result_cache_capacity: 0,
            queue_capacity: 64,
            ..Default::default()
        },
    )
    .unwrap();
    server.attach_gateway(Arc::clone(&gateway));
    let gate = Gate::new();
    gate.open();
    let compiler = chaos_compiler(gate);
    server.register_dsl("kill", r#"pipeline kill { out = kill(text); }"#, &compiler).unwrap();
    server.register_dsl("slow", r#"pipeline slow { out = snooze(text); }"#, &compiler).unwrap();
    server
        .register_dsl(
            "summ",
            r#"pipeline summ {
                out = summarize(text) using llm with { desc: "summarize the following document" };
            }"#,
            &compiler,
        )
        .unwrap();

    let kills: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(SubmitRequest::new("kill").input("text", Data::Str(format!("kill {i}"))))
                .unwrap()
        })
        .collect();
    let summs: Vec<_> = (0..16)
        .map(|i| {
            server
                .submit(
                    SubmitRequest::new("summ").input("text", Data::Str(format!("flaky doc {i}"))),
                )
                .unwrap()
        })
        .collect();
    let slows: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(
                    SubmitRequest::new("slow")
                        .input("text", Data::Str(format!("deadlined {i}")))
                        .timeout(Duration::from_millis(30)),
                )
                .unwrap()
        })
        .collect();

    for kill in &kills {
        assert!(matches!(kill.wait(), Err(ServeError::Panicked { .. })));
    }
    for summ in &summs {
        assert!(summ.wait().is_ok(), "gateway retries/failover absorb the injected faults");
    }
    for slow in &slows {
        // Depending on queue position the 30 ms budget dies waiting or
        // running; either way the outcome is typed and prompt.
        assert!(matches!(
            slow.wait(),
            Err(ServeError::DeadlineExceeded { .. } | ServeError::Timeout { .. })
        ));
    }

    wait_until("pool restored over the faulty gateway", || server.live_worker_count() == 4);
    let snap = server.metrics();
    assert_eq!(snap.completed, 16);
    assert_eq!(snap.panicked, 4);
    assert_eq!(snap.failed, 0, "no injected fault may surface as a job failure");
    assert_eq!(snap.accepted, snap.finished());
    assert!(!snap.health.breaker_states.is_empty(), "breaker states fold into the health snapshot");
    assert!(snap.gateway.is_some());
}

#[test]
fn conservation_holds_under_contended_chaos() {
    let gate = Gate::new();
    gate.open();
    let llm = sim(77);
    let server = Arc::new(chaos_server(4, gate, Arc::clone(&llm)));
    let billed_before = llm.usage();

    // 8 submitter threads × 12 jobs, round-robin over completing, panicking,
    // trapping, cancelled, and deadline-exceeding work — all while workers
    // are being killed and resurrected.
    let handles: Vec<_> = (0..8)
        .map(|thread| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for i in 0..12 {
                    let text = Data::Str(format!("thread {thread} doc {i}"));
                    let request = match i % 6 {
                        0 | 1 => SubmitRequest::new("summ").input("text", text),
                        2 => SubmitRequest::new("boom").input("text", text),
                        3 => SubmitRequest::new("trap").input("text", text),
                        4 => SubmitRequest::new("kill").input("text", text),
                        _ => SubmitRequest::new("slow")
                            .input("text", text)
                            .timeout(Duration::from_millis(30)),
                    };
                    match server.submit(request) {
                        Ok(handle) => {
                            if i % 7 == 0 {
                                handle.cancel();
                            }
                            outcomes.push(handle);
                        }
                        Err(ServeError::Full { .. }) => {}
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
                // Every handle resolves: no waiter hangs, whatever happened
                // to the worker that picked the job up.
                for handle in &outcomes {
                    let _ = handle.wait();
                }
                outcomes.len() as u64
            })
        })
        .collect();
    let submitted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(submitted > 0);

    let snap = server.metrics();
    // Conservation: every admitted job reached exactly one terminal state
    // (dedup is off, and every waiter returned, so nothing is in flight).
    assert_eq!(snap.accepted, submitted);
    assert_eq!(snap.deduped(), 0);
    assert_eq!(
        snap.accepted,
        snap.finished(),
        "lost jobs under chaos: {} accepted vs {} finished\n{}",
        snap.accepted,
        snap.finished(),
        snap.report()
    );
    assert!(snap.panicked >= 8, "the kill lane panicked on every run");
    assert!(snap.traps.out_of_fuel >= 8, "the trap lane trapped on every run");
    assert!(snap.completed >= 1);

    // Billing reconciles to the token: what the shared service metered is
    // exactly what completed jobs plus unfinished jobs were billed.
    let mut attributed = snap.llm;
    attributed.merge(&snap.llm_partial);
    assert_eq!(llm.usage().since(&billed_before), attributed);

    // And the pool is back at full strength for the next wave.
    wait_until("pool restored after the storm", || server.live_worker_count() == 4);
    assert_eq!(server.metrics().health.workers_gave_up, 0);
}
