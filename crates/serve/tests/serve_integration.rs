//! End-to-end serving tests: concurrent dedup, admission control,
//! priority, timeouts, and correctness under a multi-worker pool.

use lingua_core::modules::{CustomModule, Module};
use lingua_core::{Compiler, ContextFactory, Data, Executor, Pipeline};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{JobStatus, PipelineServer, Priority, ServeConfig, ServeError, SubmitRequest};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reusable latch: modules built over it block until the test opens it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() })
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }
}

/// Builtins plus two test ops: `gate` (passes input through once the gate
/// opens) and `log` (appends the rendered input to a shared trace).
fn test_compiler(gate: Arc<Gate>, log: Arc<Mutex<Vec<String>>>) -> Compiler {
    let mut compiler = Compiler::with_builtins();
    compiler.register("gate", move |_op, _ctx| {
        let gate = Arc::clone(&gate);
        Ok(Box::new(CustomModule::stateless("gate", move |input, _| {
            gate.wait();
            Ok(input)
        })) as Box<dyn Module>)
    });
    compiler.register("log", move |_op, _ctx| {
        let log = Arc::clone(&log);
        Ok(Box::new(CustomModule::stateless("log", move |input, _| {
            log.lock().push(input.render());
            Ok(input)
        })) as Box<dyn Module>)
    });
    compiler
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

const GATED_LLM_PIPELINE: &str = r#"pipeline gated {
    held = gate(text);
    out = summarize(held) using llm with { desc: "summarize the following document" };
}"#;

#[test]
fn concurrent_identical_submissions_execute_once() {
    let world = WorldSpec::generate(31);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 31));
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let compiler = test_compiler(Arc::clone(&gate), log);
    let server = PipelineServer::start(
        ContextFactory::new(llm.clone()),
        ServeConfig { workers: Some(2), ..Default::default() },
    )
    .unwrap();
    server.register_dsl("gated", GATED_LLM_PIPELINE, &compiler).unwrap();

    // Baseline: what one run costs (gate open, unique input).
    gate.open();
    let usage_before = llm.usage();
    let baseline = server
        .run(SubmitRequest::new("gated").input("text", Data::Str("a unique warmup doc".into())))
        .unwrap();
    let single_run_calls = llm.usage().since(&usage_before).calls;
    assert!(single_run_calls >= 1);
    assert_eq!(baseline.llm.calls, single_run_calls, "per-job meter agrees with the service");

    // N identical submissions while the leader is held at the gate: the
    // followers must coalesce onto the leader's execution.
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let compiler = test_compiler(Arc::clone(&gate), log);
    server.register_dsl("gated", GATED_LLM_PIPELINE, &compiler).unwrap();
    let usage_before = llm.usage();
    let metrics_before = server.metrics();
    let request = SubmitRequest::new("gated").input("text", Data::Str("the hot document".into()));
    let n: u64 = 6;
    let handles: Vec<_> = (0..n).map(|_| server.submit(request.clone()).unwrap()).collect();
    gate.open();
    let outputs: Vec<_> = handles.iter().map(|h| h.wait().unwrap()).collect();

    // One execution, one shared output.
    for output in &outputs[1..] {
        assert!(Arc::ptr_eq(&outputs[0], output), "followers share the leader's output");
    }
    let metrics = server.metrics();
    assert_eq!(metrics.deduped() - metrics_before.deduped(), n - 1, "dedup counter = N-1");
    assert_eq!(metrics.completed - metrics_before.completed, 1, "exactly one execution");
    // LLM bill for N submissions == bill for a single run.
    assert_eq!(llm.usage().since(&usage_before).calls, single_run_calls);

    // And once completed, the same request is a result-cache hit.
    let cached = server.run(request).unwrap();
    assert!(Arc::ptr_eq(&outputs[0], &cached));
    assert_eq!(llm.usage().since(&usage_before).calls, single_run_calls);
    assert_eq!(server.metrics().cache_hits - metrics_before.cache_hits, 1);
}

#[test]
fn bounded_queue_rejects_overflow_with_typed_full() {
    let world = WorldSpec::generate(32);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let compiler = test_compiler(Arc::clone(&gate), log);
    let server = PipelineServer::start(
        ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 32))),
        ServeConfig { workers: Some(1), queue_capacity: 2, ..Default::default() },
    )
    .unwrap();
    server.register_dsl("hold", r#"pipeline hold { out = gate(text); }"#, &compiler).unwrap();

    let submit = |text: &str| {
        server.submit(SubmitRequest::new("hold").input("text", Data::Str(text.into())))
    };
    // Occupy the single worker, then fill the queue.
    let blocker = submit("blocker").unwrap();
    wait_until("worker to pick up the blocker", || blocker.status() == JobStatus::Running);
    let queued_a = submit("queued a").unwrap();
    let queued_b = submit("queued b").unwrap();
    // Queue is at capacity: admission control rejects with a typed error.
    let err = submit("overflow").unwrap_err();
    assert_eq!(err, ServeError::Full { capacity: 2 });
    assert_eq!(server.metrics().rejected, 1);
    assert_eq!(server.metrics().queue_depth, 2);

    gate.open();
    assert!(blocker.wait().is_ok());
    assert!(queued_a.wait().is_ok());
    assert!(queued_b.wait().is_ok());
    assert_eq!(server.metrics().queue_depth, 0);
}

#[test]
fn high_priority_jobs_jump_the_queue() {
    let world = WorldSpec::generate(33);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let compiler = test_compiler(Arc::clone(&gate), Arc::clone(&log));
    let server = PipelineServer::start(
        ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 33))),
        ServeConfig { workers: Some(1), ..Default::default() },
    )
    .unwrap();
    server
        .register_dsl(
            "traced",
            r#"pipeline traced { held = gate(text); out = log(held); }"#,
            &compiler,
        )
        .unwrap();

    let submit = |text: &str, priority: Priority| {
        server
            .submit(
                SubmitRequest::new("traced")
                    .input("text", Data::Str(text.into()))
                    .priority(priority),
            )
            .unwrap()
    };
    let blocker = submit("blocker", Priority::Normal);
    wait_until("worker to pick up the blocker", || blocker.status() == JobStatus::Running);
    let handles = vec![
        blocker,
        submit("normal 1", Priority::Normal),
        submit("normal 2", Priority::Normal),
        submit("urgent", Priority::High),
    ];
    gate.open();
    for handle in &handles {
        assert!(handle.wait().is_ok());
    }
    let order = log.lock().clone();
    assert_eq!(order, vec!["blocker", "urgent", "normal 1", "normal 2"]);
}

#[test]
fn queue_timeouts_cancel_stale_jobs() {
    let world = WorldSpec::generate(34);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let compiler = test_compiler(Arc::clone(&gate), log);
    let server = PipelineServer::start(
        ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 34))),
        ServeConfig { workers: Some(1), ..Default::default() },
    )
    .unwrap();
    server.register_dsl("hold", r#"pipeline hold { out = gate(text); }"#, &compiler).unwrap();

    let blocker = server
        .submit(SubmitRequest::new("hold").input("text", Data::Str("blocker".into())))
        .unwrap();
    wait_until("worker to pick up the blocker", || blocker.status() == JobStatus::Running);
    let stale = server
        .submit(
            SubmitRequest::new("hold")
                .input("text", Data::Str("stale".into()))
                .timeout(Duration::ZERO),
        )
        .unwrap();
    gate.open();
    assert!(blocker.wait().is_ok());
    assert!(matches!(stale.wait(), Err(ServeError::Timeout { .. })));
    assert_eq!(server.metrics().timed_out, 1);
}

#[test]
fn multi_worker_results_match_direct_execution() {
    let world = WorldSpec::generate(35);
    let llm: Arc<SimLlm> = Arc::new(SimLlm::with_seed(&world, 35));
    let factory = ContextFactory::new(llm.clone());
    let compiler = Compiler::with_builtins();
    let source = r#"pipeline summ {
        out = summarize(text) using llm with { desc: "summarize the following document" };
    }"#;

    // Direct (unserved) reference runs.
    let mut ctx = factory.build();
    let logical = Pipeline::parse(source).unwrap();
    let mut direct = compiler.compile(&logical, &mut ctx).unwrap();
    let texts: Vec<String> =
        (0..24).map(|i| format!("report {i} on the quarterly beer catalogue")).collect();
    let expected: Vec<Data> = texts
        .iter()
        .map(|text| {
            let mut env = BTreeMap::new();
            env.insert("text".to_string(), Data::Str(text.clone()));
            let report = Executor::run(&mut direct, &mut ctx, env).unwrap();
            report.get("out").unwrap().clone()
        })
        .collect();

    // Served runs across 4 workers (dedup off: every job must really run).
    let server = PipelineServer::start(
        factory,
        ServeConfig {
            workers: Some(4),
            dedup_inflight: false,
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    server.register_dsl("summ", source, &compiler).unwrap();
    let handles: Vec<_> = texts
        .iter()
        .map(|text| {
            server
                .submit(SubmitRequest::new("summ").input("text", Data::Str(text.clone())))
                .unwrap()
        })
        .collect();
    for (handle, expected) in handles.iter().zip(&expected) {
        let output = handle.wait().unwrap();
        assert_eq!(output.get("out").unwrap(), expected, "served == direct");
        assert!(output.llm.calls >= 1);
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, texts.len() as u64);
    assert_eq!(metrics.deduped(), 0);
    assert!(metrics.p95_latency_ms >= metrics.p50_latency_ms);
}
