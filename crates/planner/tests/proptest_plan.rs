//! Property tests for the plan search: the memoized Pareto-frontier DP in
//! `best_assignment` must agree with the exhaustive cross-product reference
//! on every randomly generated candidate lattice — same winning cost, same
//! feasibility verdict — and the chosen plan's cost must be minimal over
//! every feasible assignment when enumerated by hand.

use lingua_plan::{
    best_assignment, exhaustive_assignment, Candidate, CostEstimate, Objective, PhysicalAlt,
    PlanError,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Build a candidate from integer knobs so generated floats are tame.
fn candidate(usd: u32, ms: u32, setup_usd: u32, setup_ms: u32, acc: u32) -> Candidate {
    Candidate {
        alt: PhysicalAlt::DirectLlm,
        estimate: CostEstimate {
            usd_per_record: usd as f64 * 1e-4,
            ms_per_record: ms as f64,
            setup_usd: setup_usd as f64 * 1e-3,
            setup_ms: setup_ms as f64,
            accuracy: 0.5 + acc as f64 * 0.005,
        },
        fallback: false,
    }
}

fn candidate_strategy() -> impl Strategy<Value = Candidate> {
    (0u32..=100, 0u32..=500, 0u32..=20, 0u32..=1000, 0u32..=100)
        .prop_map(|(usd, ms, su, sm, acc)| candidate(usd, ms, su, sm, acc))
}

fn objective_strategy() -> impl Strategy<Value = Objective> {
    (prop::bool::ANY, 0u32..=100).prop_map(|(latency, floor)| {
        let base =
            if latency { Objective::lowest_latency() } else { Objective::cheapest_dollars() };
        base.with_floor(floor as f64 * 0.01)
    })
}

#[allow(clippy::type_complexity)]
fn search_case() -> impl Strategy<Value = (Vec<Vec<Candidate>>, Vec<f64>, Objective)> {
    (1usize..=4).prop_flat_map(|ops| {
        (
            prop::collection::vec(prop::collection::vec(candidate_strategy(), 1..=4), ops),
            prop::collection::vec(1u32..=1000, ops)
                .prop_map(|r| r.into_iter().map(f64::from).collect()),
            objective_strategy(),
        )
    })
}

/// Enumerate every assignment with an odometer (independently of
/// `exhaustive_assignment`, so the reference is not testing itself) and
/// yield `(cost, accuracy)` per assignment. Sums are right-associated to
/// match the DP's arithmetic.
fn enumerate(
    candidates: &[Vec<Candidate>],
    records: &[f64],
    objective: &Objective,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut choice = vec![0usize; candidates.len()];
    loop {
        let mut cost = 0.0;
        let mut accuracy = 1.0;
        for i in (0..candidates.len()).rev() {
            let est = &candidates[i][choice[i]].estimate;
            cost = est.score(objective, records[i]) + cost;
            accuracy = est.accuracy * accuracy;
        }
        out.push((cost, accuracy));
        let mut i = 0;
        loop {
            if i == candidates.len() {
                return out;
            }
            choice[i] += 1;
            if choice[i] < candidates[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Memoization never changes the winner: the Pareto-frontier DP and the
    /// unmemoized cross-product agree on cost and feasibility everywhere.
    #[test]
    fn memoized_search_equals_exhaustive((candidates, records, objective) in search_case()) {
        let fast = best_assignment(&candidates, &records, &objective);
        let slow = exhaustive_assignment(&candidates, &records, &objective);
        match (&fast, &slow) {
            (Ok(fast), Ok(slow)) => {
                prop_assert_eq!(fast.cost, slow.cost, "winning costs must match bit-for-bit");
                prop_assert!(fast.accuracy >= objective.accuracy_floor - EPS);
                prop_assert!(slow.accuracy >= objective.accuracy_floor - EPS);
                prop_assert!(fast.choices.len() == candidates.len());
            }
            (
                Err(PlanError::Infeasible { best_accuracy: a, .. }),
                Err(PlanError::Infeasible { best_accuracy: b, .. }),
            ) => {
                prop_assert!((a - b).abs() <= EPS, "best achievable accuracy {a} vs {b}");
            }
            _ => prop_assert!(false, "verdicts disagree: {:?} vs {:?}", fast, slow),
        }
    }

    /// The chosen plan's estimated cost is minimal over *all* enumerated
    /// assignments (checked against a hand-rolled odometer enumeration).
    #[test]
    fn winner_is_minimal_over_all_feasible((candidates, records, objective) in search_case()) {
        let every = enumerate(&candidates, &records, &objective);
        match best_assignment(&candidates, &records, &objective) {
            Ok(outcome) => {
                // The winner's (cost, accuracy) corresponds to a real
                // assignment...
                let mut cost = 0.0;
                let mut accuracy = 1.0;
                for i in (0..candidates.len()).rev() {
                    let est = &candidates[i][outcome.choices[i]].estimate;
                    cost = est.score(&objective, records[i]) + cost;
                    accuracy = est.accuracy * accuracy;
                }
                prop_assert_eq!(cost, outcome.cost);
                prop_assert_eq!(accuracy, outcome.accuracy);
                // ...and no feasible assignment beats it.
                for (other_cost, other_accuracy) in &every {
                    if *other_accuracy >= objective.accuracy_floor - EPS {
                        prop_assert!(
                            outcome.cost <= other_cost + EPS,
                            "winner {} beaten by feasible assignment {}",
                            outcome.cost,
                            other_cost
                        );
                    }
                }
            }
            Err(PlanError::Infeasible { .. }) => {
                // Infeasible must mean *nothing* met the floor (under the
                // same epsilon the DP itself applies).
                for (_, accuracy) in &every {
                    prop_assert!(*accuracy < objective.accuracy_floor - EPS);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Running the search twice on identical inputs returns the identical
    /// winner: the memo is deterministic.
    #[test]
    fn search_is_deterministic((candidates, records, objective) in search_case()) {
        let first = best_assignment(&candidates, &records, &objective);
        let second = best_assignment(&candidates, &records, &objective);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.choices, b.choices);
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.kept, b.kept);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "determinism violated"),
        }
    }
}
