//! Integration: a planner-chosen ER pipeline must reproduce the outputs of
//! the hand-compiled (unplanned) pipeline exactly on the seeded dataset.
//!
//! The op is pinned `using llm`, so the planner's lattice holds the direct
//! LLM and its memoized form. Both are semantics-preserving over the
//! deterministic simulator: same input, same verdict. The memo may only
//! change *how often* the LLM is consulted, never *what* comes back — which
//! is exactly what this test pins down, record by record.

use lingua_core::{
    Compiler, CurationStage, Data, ExecContext, Executor, LogicalOp, ModuleKind, Pipeline,
};
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_dataset::Schema;
use lingua_llm_sim::{SimLlm, Usage};
use lingua_plan::{Objective, PhysicalAlt, Planner};
use lingua_trace::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

fn er_pipeline() -> Pipeline {
    Pipeline::new("er").op(LogicalOp::new("entity_resolution")
        .input("pairs")
        .output("matches")
        .using(ModuleKind::Llm)
        .param("desc", "Determine if the two records refer to the same entity"))
}

#[test]
fn planned_pipeline_reproduces_unplanned_outputs() {
    let world = WorldSpec::generate(11);
    let split = generate(&world, ErDataset::FodorsZagats, 11);

    // Inputs: the test pairs, with the first few repeated so the planned
    // pipeline's memo actually gets exercised.
    let mut inputs: Vec<Data> = Vec::new();
    for pair in split.test.iter().take(15) {
        inputs.push(Data::map([
            ("a".to_string(), Data::Str(pair.left.describe(&split.schema))),
            ("b".to_string(), Data::Str(pair.right.describe(&split.schema))),
        ]));
    }
    let repeats: Vec<Data> = inputs.iter().take(5).cloned().collect();
    inputs.extend(repeats);

    // Evidence so planning is evidence-driven, not a fallback: one observed
    // DirectLlm sample at the Match stage.
    let mut planner = Planner::new(Compiler::with_builtins());
    planner.estimator_mut().record_sample(
        CurationStage::Match,
        PhysicalAlt::DirectLlm,
        &lingua_core::optimizer::SampleMeasurement {
            total: 20,
            passed: 19,
            errors: 0,
            usage: Usage { calls: 20, tokens_in: 4000, tokens_out: 200, ..Usage::default() },
            sim_latency_ms: 7000,
            wall_ms: 0,
        },
    );

    let stats = {
        use lingua_dataset::{Record, Table, Value};
        let schema = Schema::of_names(["a", "b"]);
        let rows: Vec<Record> = inputs
            .iter()
            .map(|d| {
                let map = d.as_map().unwrap();
                Record::new(vec![
                    Value::Str(map["a"].as_str().unwrap().to_string()),
                    Value::Str(map["b"].as_str().unwrap().to_string()),
                ])
            })
            .collect();
        lingua_core::DatasetStats::from_table(&Table::with_rows("pairs", schema, rows).unwrap())
    };

    // Two contexts with the same-seed simulator so usage accounting in one
    // arm cannot perturb the other.
    let mut planned_ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 11)));
    let mut unplanned_ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 11)));

    let pipeline = er_pipeline();
    let planned = planner
        .plan_and_compile(
            &pipeline,
            &stats,
            &Objective::cheapest_dollars(),
            &Tracer::disabled(),
            &mut planned_ctx,
        )
        .expect("plan and compile");
    // On a duplicate-bearing batch with observed evidence the cache wins.
    assert_eq!(planned.plan.alt_of("entity_resolution"), Some(PhysicalAlt::CachedLlm));

    let unplanned =
        Compiler::with_builtins().compile(&pipeline, &mut unplanned_ctx).expect("compile");

    // Run both pipelines record-at-a-time (exactly how the serving layer
    // drives them) and compare every output.
    let mut planned_exec = planned.physical.fresh_instance().expect("replicable");
    let mut unplanned_exec = unplanned.fresh_instance().expect("replicable");
    for (i, input) in inputs.iter().enumerate() {
        let env = BTreeMap::from([("pairs".to_string(), input.clone())]);
        let planned_out = Executor::run(&mut planned_exec, &mut planned_ctx, env.clone())
            .expect("planned run")
            .get("matches")
            .expect("planned output")
            .clone();
        let unplanned_out = Executor::run(&mut unplanned_exec, &mut unplanned_ctx, env)
            .expect("unplanned run")
            .get("matches")
            .expect("unplanned output")
            .clone();
        assert_eq!(planned_out, unplanned_out, "outputs diverged on record {i}");
    }

    // Identical answers — but the planned arm answered its duplicates from
    // the memo, so it billed strictly fewer LLM calls.
    let planned_calls = planned_ctx.llm.usage().calls;
    let unplanned_calls = unplanned_ctx.llm.usage().calls;
    assert!(
        planned_calls < unplanned_calls,
        "planned {planned_calls} calls vs unplanned {unplanned_calls}"
    );
}
