//! Physical alternatives: the concrete forms a logical curation op can
//! compile to, plus the two planner-owned module implementations — a
//! memoizing result cache over any inner module ([`MemoModule`]) and a
//! supervised pair-matching model distilled from labeled examples
//! ([`MlPairModule`], the SEED-style student).

use lingua_core::modules::{Module, ModuleKind};
use lingua_core::{CoreError, Data, ExecContext};
use lingua_dataset::labels::LabeledPair;
use lingua_dataset::Schema;
use lingua_ml::features::rich_pair_features;
use lingua_ml::forest::{ForestConfig, RandomForest};
use lingua_ml::Example;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The physical forms a logical curation op can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum PhysicalAlt {
    /// Hand-written code behind a registered compiler factory.
    CustomCode,
    /// An LLM-generated MangaScript program (LLMGC, §3.1).
    LlmgcProgram,
    /// A supervised `lingua-ml` model (SEED-style distilled student).
    MlModel,
    /// A direct LLM call fronted by a memoized result cache.
    CachedLlm,
    /// A direct LLM call per record.
    DirectLlm,
}

impl PhysicalAlt {
    /// Every alternative, in the paper's default implementation ranking:
    /// custom code beats generated code beats the raw LLM (the §3 binding
    /// policy), with the planner-only forms (model, cache) slotted between
    /// generated code and the LLM by their cost character. This order is the
    /// fallback when the estimator has no observations.
    pub const ALL: [PhysicalAlt; 5] = [
        PhysicalAlt::CustomCode,
        PhysicalAlt::LlmgcProgram,
        PhysicalAlt::MlModel,
        PhysicalAlt::CachedLlm,
        PhysicalAlt::DirectLlm,
    ];

    /// Stable lowercase label (trace attrs, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalAlt::CustomCode => "custom_code",
            PhysicalAlt::LlmgcProgram => "llmgc_program",
            PhysicalAlt::MlModel => "ml_model",
            PhysicalAlt::CachedLlm => "cached_llm",
            PhysicalAlt::DirectLlm => "direct_llm",
        }
    }
}

impl std::fmt::Display for PhysicalAlt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Suffix a [`MemoModule`] appends to its inner module's name. The cost
/// estimator's trace feedback uses it to attribute an `Op` span's usage to
/// [`PhysicalAlt::CachedLlm`] rather than [`PhysicalAlt::MlModel`] (both
/// report [`ModuleKind::Decorated`]).
pub const CACHE_SUFFIX: &str = "+cache";

struct MemoState {
    map: BTreeMap<String, Data>,
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl MemoState {
    fn insert(&mut self, key: String, value: Data) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                } else {
                    break;
                }
            }
        }
    }
}

/// A memoized result cache over any inner module: identical inputs (by
/// rendered value) return the cached output without invoking the inner
/// module. This is the `CachedLlm` physical form — semantics-preserving for
/// deterministic inner modules, and exactly what pays off on duplicate-heavy
/// datasets (the estimator prices it from
/// [`lingua_core::DatasetStats::duplicate_rate`]).
///
/// The memo is shared across [`Module::fresh_instance`] copies (an `Arc`,
/// like the serve-layer result cache), so per-worker instances pool their
/// hits. Errors are never cached.
pub struct MemoModule {
    name: String,
    inner: Box<dyn Module>,
    memo: Arc<Mutex<MemoState>>,
}

impl MemoModule {
    pub fn new(inner: Box<dyn Module>, capacity: usize) -> MemoModule {
        MemoModule {
            name: format!("{}{CACHE_SUFFIX}", inner.name()),
            inner,
            memo: Arc::new(Mutex::new(MemoState {
                map: BTreeMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// Cache hits across all shared instances.
    pub fn hits(&self) -> u64 {
        self.memo.lock().hits
    }

    /// Cache misses (inner invocations) across all shared instances.
    pub fn misses(&self) -> u64 {
        self.memo.lock().misses
    }
}

impl Module for MemoModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Decorated
    }

    fn invoke(&mut self, input: Data, ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let key = input.render();
        {
            // One guard for probe + count: the scrutinee of an
            // `if let self.memo.lock()...` keeps its temporary guard alive
            // across the body, so a second lock() there deadlocks.
            let mut memo = self.memo.lock();
            if let Some(cached) = memo.map.get(&key).cloned() {
                memo.hits += 1;
                return Ok(cached);
            }
        }
        let output = self.inner.invoke(input, ctx)?;
        let mut memo = self.memo.lock();
        memo.misses += 1;
        memo.insert(key, output.clone());
        Ok(output)
    }

    fn describe(&self) -> String {
        format!("memoized cache over {}", self.inner.describe())
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        let inner = self.inner.fresh_instance()?;
        Some(Box::new(MemoModule { name: self.name.clone(), inner, memo: Arc::clone(&self.memo) }))
    }
}

/// Split a [`lingua_dataset::Record::describe`] rendering
/// (`"name: x; city: y"`) back into per-field values, so the model sees the
/// same field-aligned view at train and serve time as the LLM's pair prompt.
fn describe_fields(text: &str) -> Vec<String> {
    text.split("; ")
        .map(|seg| seg.split_once(": ").map(|(_, v)| v).unwrap_or(seg).to_string())
        .collect()
}

/// A supervised pair matcher: a random forest over per-field string
/// similarities, trained from labeled pairs. This is the `MlModel` physical
/// form for Match-stage ops — zero marginal LLM cost per record, with the
/// training-label cost booked as the plan's setup cost (the SEED economics:
/// distill the teacher into a cheap student, route traffic to the student).
///
/// Input shape matches the LLM pair module: a map `{a: <describe>, b:
/// <describe>}`; output is `Data::Bool`, same as the yes/no-validated LLM.
pub struct MlPairModule {
    name: String,
    forest: Arc<RandomForest>,
    threshold: f64,
}

impl MlPairModule {
    /// Train on labeled pairs. Errors (compile-time, not serve-time) when
    /// the sample is empty.
    pub fn train(
        name: impl Into<String>,
        schema: &Schema,
        pairs: &[LabeledPair],
        seed: u64,
    ) -> Result<MlPairModule, CoreError> {
        if pairs.is_empty() {
            return Err(CoreError::Compile("ml_model training needs labeled pairs".into()));
        }
        let examples: Vec<Example> = pairs
            .iter()
            .map(|pair| {
                Example::new(
                    rich_pair_features(
                        &describe_fields(&pair.left.describe(schema)),
                        &describe_fields(&pair.right.describe(schema)),
                    ),
                    usize::from(pair.label),
                )
            })
            .collect();
        let forest = RandomForest::train(
            &examples,
            &ForestConfig { n_trees: 30, seed, ..Default::default() },
        );
        Ok(MlPairModule { name: name.into(), forest: Arc::new(forest), threshold: 0.5 })
    }

    /// Judge one `(a, b)` description pair.
    pub fn judge(&self, a: &str, b: &str) -> bool {
        let features = rich_pair_features(&describe_fields(a), &describe_fields(b));
        self.forest.predict_proba(&features) >= self.threshold
    }
}

impl Module for MlPairModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Decorated
    }

    fn invoke(&mut self, input: Data, _ctx: &mut ExecContext) -> Result<Data, CoreError> {
        let map = input.as_map().ok_or(CoreError::DataShape {
            expected: "map {a, b} of record descriptions",
            got: input.type_name().into(),
        })?;
        let field = |key: &str| -> Result<&str, CoreError> {
            map.get(key).and_then(Data::as_str).ok_or(CoreError::DataShape {
                expected: "string fields `a` and `b`",
                got: format!("missing or non-string `{key}`"),
            })
        };
        Ok(Data::Bool(self.judge(field("a")?, field("b")?)))
    }

    fn describe(&self) -> String {
        format!("supervised pair matcher `{}` ({} trees)", self.name, self.forest.n_trees())
    }

    fn fresh_instance(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(MlPairModule {
            name: self.name.clone(),
            forest: Arc::clone(&self.forest),
            threshold: self.threshold,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_core::modules::CustomModule;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn ctx() -> ExecContext {
        let world = WorldSpec::generate(5);
        ExecContext::new(Arc::new(SimLlm::with_seed(&world, 5)))
    }

    fn counting_inner() -> (Box<dyn Module>, Arc<Mutex<u64>>) {
        let calls = Arc::new(Mutex::new(0u64));
        let seen = Arc::clone(&calls);
        let module = CustomModule::stateless("echo", move |input, _ctx| {
            *seen.lock() += 1;
            Ok(input)
        });
        (Box::new(module), calls)
    }

    #[test]
    fn memo_module_caches_identical_inputs() {
        let mut ctx = ctx();
        let (inner, calls) = counting_inner();
        let mut memo = MemoModule::new(inner, 16);
        assert_eq!(memo.name(), "echo+cache");
        assert_eq!(memo.kind(), ModuleKind::Decorated);
        for _ in 0..3 {
            let out = memo.invoke(Data::Str("x".into()), &mut ctx).unwrap();
            assert_eq!(out, Data::Str("x".into()));
        }
        memo.invoke(Data::Str("y".into()), &mut ctx).unwrap();
        assert_eq!(*calls.lock(), 2, "two distinct inputs, one inner call each");
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn memo_module_evicts_beyond_capacity() {
        let mut ctx = ctx();
        let (inner, calls) = counting_inner();
        let mut memo = MemoModule::new(inner, 1);
        memo.invoke(Data::Str("a".into()), &mut ctx).unwrap();
        memo.invoke(Data::Str("b".into()), &mut ctx).unwrap(); // evicts "a"
        memo.invoke(Data::Str("a".into()), &mut ctx).unwrap(); // miss again
        assert_eq!(*calls.lock(), 3);
    }

    #[test]
    fn memo_fresh_instances_share_the_cache() {
        let mut ctx = ctx();
        let (inner, calls) = counting_inner();
        let memo = MemoModule::new(inner, 16);
        let mut a = memo.fresh_instance().unwrap();
        let mut b = memo.fresh_instance().unwrap();
        a.invoke(Data::Str("x".into()), &mut ctx).unwrap();
        b.invoke(Data::Str("x".into()), &mut ctx).unwrap();
        assert_eq!(*calls.lock(), 1, "the second instance hit the shared memo");
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn describe_fields_roundtrips_record_shape() {
        assert_eq!(describe_fields("name: pale ale; city: austin"), vec!["pale ale", "austin"]);
        assert_eq!(describe_fields("raw text"), vec!["raw text"]);
    }

    #[test]
    fn ml_pair_module_learns_and_replicates() {
        use lingua_dataset::generators::er::{generate, ErDataset};
        let world = WorldSpec::generate(21);
        let split = generate(&world, ErDataset::FodorsZagats, 7);
        let pairs: Vec<LabeledPair> = split.train.iter().chain(&split.valid).cloned().collect();
        let module = MlPairModule::train("er_model", &split.schema, &pairs, 0).unwrap();
        let mut ctx = ctx();
        let mut correct = 0usize;
        let mut fresh = module.fresh_instance().unwrap();
        for pair in &split.test {
            let input = Data::map([
                ("a".to_string(), Data::Str(pair.left.describe(&split.schema))),
                ("b".to_string(), Data::Str(pair.right.describe(&split.schema))),
            ]);
            let out = fresh.invoke(input, &mut ctx).unwrap();
            if out == Data::Bool(pair.label) {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / split.test.len() as f64;
        assert!(accuracy > 0.8, "accuracy {accuracy}");
        // Pure local inference: the LLM was never consulted.
        assert_eq!(ctx.llm.usage().calls, 0);
    }

    #[test]
    fn ml_pair_module_rejects_bad_shapes() {
        let world = WorldSpec::generate(21);
        let split = lingua_dataset::generators::er::generate(
            &world,
            lingua_dataset::generators::er::ErDataset::FodorsZagats,
            7,
        );
        let mut module = MlPairModule::train("er_model", &split.schema, &split.train, 0).unwrap();
        let mut ctx = ctx();
        assert!(module.invoke(Data::Str("loose".into()), &mut ctx).is_err());
        assert!(MlPairModule::train("empty", &split.schema, &[], 0).is_err());
    }
}
