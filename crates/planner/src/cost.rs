//! The cost model: objectives, per-op cost estimates, and the evidence-fed
//! [`CostEstimator`].
//!
//! The estimator only speaks from evidence. Three feeds exist, in decreasing
//! order of fidelity:
//!
//! 1. **Calibration runs** ([`crate::Calibrator`]) — a Validator-style sample
//!    execution that yields usage, latency, *and* accuracy per
//!    `(stage, alternative)`.
//! 2. **Live traces** ([`CostEstimator::feed_trace`]) — `Op` spans from
//!    production `lingua-trace` events, attributed to an alternative via the
//!    executor's `module_kind` attribute. Traces carry exact token usage but
//!    no wall latency (the tracer's clock is logical), so they sharpen the
//!    $-side of an estimate without touching the ms-side.
//! 3. **Dataset statistics** ([`DatasetStats`]) — shape-only facts
//!    (token lengths, duplicate rates, match selectivity) that scale the
//!    other two feeds to the target dataset.
//!
//! When an alternative has *no* observed usage, [`CostEstimator::estimate`]
//! returns the typed [`PlanError::InsufficientStats`] — never a silent
//! default — and the planner falls back to the paper's implementation
//! ranking with clearly-labeled priors ([`CostEstimator::prior_estimate`]).

use crate::physical::{PhysicalAlt, CACHE_SUFFIX};
use lingua_core::optimizer::SampleMeasurement;
use lingua_core::{CurationStage, DatasetStats, LogicalOp};
use lingua_llm_sim::cost::TokenPricing;
use lingua_llm_sim::Usage;
use lingua_trace::{SpanKind, TraceEvent, TraceTree};
use std::collections::BTreeMap;

/// What the planner minimizes: a weighted blend of dollars and milliseconds,
/// subject to a plan-level accuracy floor (the product of per-op accuracies
/// must stay at or above it).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Objective {
    /// Weight on total plan dollars.
    pub usd_weight: f64,
    /// Weight on total plan milliseconds.
    pub ms_weight: f64,
    /// Minimum acceptable plan accuracy (`Π op accuracy ≥ floor`).
    pub accuracy_floor: f64,
    /// Stable label for traces and bench JSON.
    pub name: &'static str,
}

impl Objective {
    /// Minimize dollars; latency only breaks ties (epsilon weight).
    pub fn cheapest_dollars() -> Objective {
        Objective { usd_weight: 1.0, ms_weight: 1e-7, accuracy_floor: 0.8, name: "cheap_$" }
    }

    /// Minimize latency; dollars only break ties (epsilon weight).
    pub fn lowest_latency() -> Objective {
        Objective { usd_weight: 1e-7, ms_weight: 1.0, accuracy_floor: 0.8, name: "low_latency" }
    }

    /// Same weights, different accuracy floor.
    pub fn with_floor(mut self, floor: f64) -> Objective {
        self.accuracy_floor = floor;
        self
    }
}

/// Per-op cost estimate: marginal per-record terms plus one-time setup terms
/// (code generation, model training labels), and an accuracy figure.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CostEstimate {
    pub usd_per_record: f64,
    pub ms_per_record: f64,
    /// One-time dollars (LLMGC code generation, training-label acquisition).
    pub setup_usd: f64,
    /// One-time milliseconds.
    pub setup_ms: f64,
    /// Expected fraction of records this op handles correctly, in `[0, 1]`.
    pub accuracy: f64,
}

impl CostEstimate {
    /// Total dollars to push `records` records through this op.
    pub fn total_usd(&self, records: f64) -> f64 {
        self.setup_usd + records * self.usd_per_record
    }

    /// Total milliseconds to push `records` records through this op.
    pub fn total_ms(&self, records: f64) -> f64 {
        self.setup_ms + records * self.ms_per_record
    }

    /// The objective-weighted scalar the planner minimizes.
    pub fn score(&self, objective: &Objective, records: f64) -> f64 {
        objective.usd_weight * self.total_usd(records)
            + objective.ms_weight * self.total_ms(records)
    }
}

/// Typed planning failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The estimator has no observed usage for this `(stage, alternative)` —
    /// the caller must either calibrate or accept the prior-ranked fallback.
    InsufficientStats { stage: CurationStage, alternative: PhysicalAlt },
    /// An op produced no physical candidates at all.
    NoAlternatives { op: String },
    /// No assignment of alternatives satisfies the accuracy floor.
    Infeasible { floor: f64, best_accuracy: f64 },
    /// The pipeline has no ops to plan.
    EmptyPipeline,
    /// A compile/binding failure while materializing the chosen plan
    /// (message-only so `PlanError` stays `Clone + PartialEq`).
    Core(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InsufficientStats { stage, alternative } => write!(
                f,
                "no observed samples for {} at the {} stage; calibrate it or accept the \
                 default-ranking fallback",
                alternative,
                stage.name()
            ),
            PlanError::NoAlternatives { op } => {
                write!(f, "op `{op}` has no physical alternatives")
            }
            PlanError::Infeasible { floor, best_accuracy } => write!(
                f,
                "no plan reaches the accuracy floor {floor:.3} (best achievable \
                 {best_accuracy:.3})"
            ),
            PlanError::EmptyPipeline => write!(f, "cannot plan an empty pipeline"),
            PlanError::Core(message) => write!(f, "plan compilation failed: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<lingua_core::CoreError> for PlanError {
    fn from(err: lingua_core::CoreError) -> Self {
        PlanError::Core(err.to_string())
    }
}

/// Accumulated evidence for one `(stage, alternative)` cell.
#[derive(Debug, Clone, Default)]
struct Observed {
    usage: Usage,
    invocations: u64,
    sim_latency_ms: u64,
    wall_ms: u64,
    passed: u64,
    judged: u64,
    setup_usage: Usage,
    setup_ms: u64,
}

/// Accuracy prior when an alternative has observed usage but no judged
/// accuracy sample (e.g. evidence arrived only via [`CostEstimator::feed_trace`]).
fn accuracy_prior(alt: PhysicalAlt) -> f64 {
    match alt {
        PhysicalAlt::DirectLlm | PhysicalAlt::CachedLlm => 0.92,
        PhysicalAlt::LlmgcProgram => 0.88,
        PhysicalAlt::MlModel => 0.85,
        PhysicalAlt::CustomCode => 0.75,
    }
}

/// Evidence-fed cost estimator over `(stage, alternative)` cells.
#[derive(Debug, Clone, Default)]
pub struct CostEstimator {
    pricing: TokenPricing,
    observed: BTreeMap<(CurationStage, PhysicalAlt), Observed>,
}

impl CostEstimator {
    pub fn new() -> CostEstimator {
        CostEstimator { pricing: TokenPricing::default(), observed: BTreeMap::new() }
    }

    pub fn with_pricing(pricing: TokenPricing) -> CostEstimator {
        CostEstimator { pricing, observed: BTreeMap::new() }
    }

    pub fn pricing(&self) -> &TokenPricing {
        &self.pricing
    }

    /// Book a calibration run (usage + latency + judged accuracy).
    pub fn record_sample(
        &mut self,
        stage: CurationStage,
        alt: PhysicalAlt,
        sample: &SampleMeasurement,
    ) {
        let cell = self.observed.entry((stage, alt)).or_default();
        cell.usage.merge(&sample.usage);
        cell.invocations += sample.total as u64;
        cell.sim_latency_ms += sample.sim_latency_ms;
        cell.wall_ms += sample.wall_ms;
        cell.passed += sample.passed as u64;
        cell.judged += sample.total as u64;
    }

    /// Book a one-time setup cost (LLMGC code generation, training labels).
    pub fn record_setup(
        &mut self,
        stage: CurationStage,
        alt: PhysicalAlt,
        usage: &Usage,
        elapsed_ms: u64,
    ) {
        let cell = self.observed.entry((stage, alt)).or_default();
        cell.setup_usage.merge(usage);
        cell.setup_ms += elapsed_ms;
    }

    /// Book raw usage with a known invocation count and latency (no accuracy
    /// judgment — the accuracy prior applies until a calibration run lands).
    pub fn record_usage(
        &mut self,
        stage: CurationStage,
        alt: PhysicalAlt,
        usage: &Usage,
        invocations: u64,
        latency_ms: u64,
    ) {
        let cell = self.observed.entry((stage, alt)).or_default();
        cell.usage.merge(usage);
        cell.invocations += invocations;
        cell.sim_latency_ms += latency_ms;
    }

    /// Ingest production trace events: every `Op` span's usage rollup is
    /// attributed to a `(stage, alternative)` cell via the executor's
    /// `module_kind` attribute (`llm` → direct, `llmgc` → generated program,
    /// `custom` → custom code; `decorated` splits on the [`CACHE_SUFFIX`]
    /// naming convention into cached-LLM vs model). Returns how many spans
    /// were attributed. Traces carry no wall-clock latency (the tracer's
    /// clock is logical), so this feed sharpens $ estimates only.
    pub fn feed_trace(&mut self, events: &[TraceEvent]) -> usize {
        let Ok(tree) = TraceTree::build(events) else { return 0 };
        let mut attributed = 0usize;
        for span in tree.spans_of_kind(SpanKind::Op) {
            let Some(kind) = span.attrs.get("module_kind") else { continue };
            let module = span.attrs.get("module").map(String::as_str).unwrap_or("");
            let alt = match kind.as_str() {
                "llm" => PhysicalAlt::DirectLlm,
                "llmgc" => PhysicalAlt::LlmgcProgram,
                "custom" => PhysicalAlt::CustomCode,
                "decorated" if module.ends_with(CACHE_SUFFIX) => PhysicalAlt::CachedLlm,
                "decorated" => PhysicalAlt::MlModel,
                _ => continue,
            };
            let stage = LogicalOp::new(span.name.clone()).stage();
            self.record_usage(stage, alt, &span.rollup(), 1, 0);
            attributed += 1;
        }
        attributed
    }

    /// Observed invocation count for a cell (0 when never seen).
    pub fn samples(&self, stage: CurationStage, alt: PhysicalAlt) -> u64 {
        self.observed.get(&(stage, alt)).map(|cell| cell.invocations).unwrap_or(0)
    }

    /// Estimate a cell from observed evidence.
    ///
    /// Exception: an unobserved `CachedLlm` whose `DirectLlm` sibling *is*
    /// observed derives from it — the cache is the same module plus a memo,
    /// so its marginal cost is the direct cost scaled by the dataset's cache
    /// miss rate (`1 − duplicate_rate`). Everything else unobserved returns
    /// [`PlanError::InsufficientStats`].
    pub fn estimate(
        &self,
        stage: CurationStage,
        alt: PhysicalAlt,
        stats: &DatasetStats,
    ) -> Result<CostEstimate, PlanError> {
        if let Some(cell) = self.observed.get(&(stage, alt)) {
            if cell.invocations > 0 {
                return Ok(self.observed_estimate(alt, cell));
            }
        }
        if alt == PhysicalAlt::CachedLlm {
            if let Some(direct) = self.observed.get(&(stage, PhysicalAlt::DirectLlm)) {
                if direct.invocations > 0 {
                    let base = self.observed_estimate(PhysicalAlt::DirectLlm, direct);
                    let miss_rate = 1.0 - stats.duplicate_rate();
                    return Ok(CostEstimate {
                        usd_per_record: base.usd_per_record * miss_rate,
                        ms_per_record: base.ms_per_record * miss_rate,
                        setup_usd: 0.0,
                        setup_ms: 0.0,
                        accuracy: base.accuracy,
                    });
                }
            }
        }
        Err(PlanError::InsufficientStats { stage, alternative: alt })
    }

    fn observed_estimate(&self, alt: PhysicalAlt, cell: &Observed) -> CostEstimate {
        let invocations = cell.invocations as f64;
        CostEstimate {
            usd_per_record: cell.usage.cost_usd(&self.pricing) / invocations,
            ms_per_record: (cell.sim_latency_ms + cell.wall_ms) as f64 / invocations,
            setup_usd: cell.setup_usage.cost_usd(&self.pricing),
            setup_ms: cell.setup_ms as f64,
            accuracy: if cell.judged > 0 {
                cell.passed as f64 / cell.judged as f64
            } else {
                accuracy_prior(alt)
            },
        }
    }

    /// Prior-only estimate for the default-ranking fallback: derived from
    /// dataset shape and published pricing, never from observations. Marked
    /// `fallback` in the resulting plan so the audit layer can tell prior
    /// guesses from evidence.
    pub fn prior_estimate(&self, alt: PhysicalAlt, stats: &DatasetStats) -> CostEstimate {
        // A pair/record prompt: instruction preamble plus the record text
        // (twice, for pair-shaped ops), answered tersely.
        let prompt_tokens = 64.0 + 2.0 * stats.avg_record_tokens();
        let call_usd = prompt_tokens / 1000.0 * self.pricing.input_per_1k
            + 8.0 / 1000.0 * self.pricing.output_per_1k;
        match alt {
            PhysicalAlt::DirectLlm => CostEstimate {
                usd_per_record: call_usd,
                ms_per_record: 350.0,
                setup_usd: 0.0,
                setup_ms: 0.0,
                accuracy: accuracy_prior(alt),
            },
            PhysicalAlt::CachedLlm => {
                let miss_rate = 1.0 - stats.duplicate_rate();
                CostEstimate {
                    usd_per_record: call_usd * miss_rate,
                    ms_per_record: 350.0 * miss_rate,
                    setup_usd: 0.0,
                    setup_ms: 0.0,
                    accuracy: accuracy_prior(alt),
                }
            }
            PhysicalAlt::LlmgcProgram => CostEstimate {
                usd_per_record: 0.0,
                ms_per_record: 1.0,
                // One code-generation round trip.
                setup_usd: 256.0 / 1000.0 * self.pricing.input_per_1k
                    + 96.0 / 1000.0 * self.pricing.output_per_1k,
                setup_ms: 350.0,
                accuracy: accuracy_prior(alt),
            },
            PhysicalAlt::MlModel => CostEstimate {
                usd_per_record: 0.0,
                ms_per_record: 0.5,
                setup_usd: 0.0,
                setup_ms: 0.0,
                accuracy: accuracy_prior(alt),
            },
            PhysicalAlt::CustomCode => CostEstimate {
                usd_per_record: 0.0,
                ms_per_record: 0.1,
                setup_usd: 0.0,
                setup_ms: 0.0,
                accuracy: accuracy_prior(alt),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_trace::ring_tracer;

    fn stats() -> DatasetStats {
        use lingua_dataset::{Record, Schema, Table, Value};
        let schema = Schema::of_names(["name", "city"]);
        let row = |name: &str, city: &str| {
            Record::new(vec![Value::Str(name.into()), Value::Str(city.into())])
        };
        let rows = vec![
            row("pale ale", "austin"),
            row("pale ale", "austin"),
            row("stout", "boston"),
            row("lager", "denver"),
        ];
        DatasetStats::from_table(&Table::with_rows("beers", schema, rows).unwrap())
    }

    fn sample(total: usize, passed: usize, tokens_in: u64, sim_ms: u64) -> SampleMeasurement {
        let usage = Usage {
            calls: total as u64,
            tokens_in,
            tokens_out: 10 * total as u64,
            ..Usage::default()
        };
        SampleMeasurement { total, passed, errors: 0, usage, sim_latency_ms: sim_ms, wall_ms: 0 }
    }

    #[test]
    fn unobserved_cells_are_typed_errors_not_defaults() {
        let estimator = CostEstimator::new();
        let err = estimator
            .estimate(CurationStage::Match, PhysicalAlt::LlmgcProgram, &stats())
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::InsufficientStats {
                stage: CurationStage::Match,
                alternative: PhysicalAlt::LlmgcProgram,
            }
        );
        assert!(err.to_string().contains("llmgc_program"));
        assert!(err.to_string().contains("match"));
    }

    #[test]
    fn samples_turn_into_per_record_estimates() {
        let mut estimator = CostEstimator::new();
        estimator.record_sample(
            CurationStage::Match,
            PhysicalAlt::DirectLlm,
            &sample(10, 9, 2000, 3500),
        );
        let est =
            estimator.estimate(CurationStage::Match, PhysicalAlt::DirectLlm, &stats()).unwrap();
        // 2000 in + 100 out tokens over 10 invocations at default pricing.
        let expected_usd = (2.0 * 0.0015 + 0.1 * 0.002) / 10.0;
        assert!((est.usd_per_record - expected_usd).abs() < 1e-12);
        assert!((est.ms_per_record - 350.0).abs() < 1e-9);
        assert!((est.accuracy - 0.9).abs() < 1e-12);
        assert_eq!(estimator.samples(CurationStage::Match, PhysicalAlt::DirectLlm), 10);
        // Setup booking lands in the same cell.
        let mut setup = Usage::default();
        setup.record(1000, 0);
        estimator.record_setup(CurationStage::Match, PhysicalAlt::DirectLlm, &setup, 42);
        let est =
            estimator.estimate(CurationStage::Match, PhysicalAlt::DirectLlm, &stats()).unwrap();
        assert!((est.setup_usd - 0.0015).abs() < 1e-12);
        assert!((est.setup_ms - 42.0).abs() < 1e-12);
    }

    #[test]
    fn cached_llm_derives_from_direct_and_duplicate_rate() {
        let mut estimator = CostEstimator::new();
        estimator.record_sample(
            CurationStage::Match,
            PhysicalAlt::DirectLlm,
            &sample(10, 9, 2000, 3500),
        );
        let stats = stats(); // 4 rows, 3 distinct -> duplicate_rate 0.25
        assert!((stats.duplicate_rate() - 0.25).abs() < 1e-12);
        let direct =
            estimator.estimate(CurationStage::Match, PhysicalAlt::DirectLlm, &stats).unwrap();
        let cached =
            estimator.estimate(CurationStage::Match, PhysicalAlt::CachedLlm, &stats).unwrap();
        assert!((cached.usd_per_record - direct.usd_per_record * 0.75).abs() < 1e-12);
        assert!((cached.ms_per_record - direct.ms_per_record * 0.75).abs() < 1e-9);
        assert_eq!(cached.accuracy, direct.accuracy);
    }

    #[test]
    fn trace_feed_attributes_op_spans_by_module_kind() {
        let (tracer, sink) = ring_tracer(64);
        {
            let mut op = tracer.span(SpanKind::Op, "entity_resolution");
            op.attr("module", "entity_resolution");
            op.attr("module_kind", "llm");
            let mut llm = tracer.span(SpanKind::LlmCall, "llm");
            let mut usage = Usage::default();
            usage.record(120, 8);
            llm.set_usage(usage);
            drop(llm);
            drop(op);
            let mut op = tracer.span(SpanKind::Op, "entity_resolution");
            op.attr("module", "entity_resolution+cache");
            op.attr("module_kind", "decorated");
            drop(op);
            let mut op = tracer.span(SpanKind::Op, "extract_tags");
            op.attr("module", "extract_tags");
            op.attr("module_kind", "custom");
            drop(op);
        }
        let mut estimator = CostEstimator::new();
        let attributed = estimator.feed_trace(&sink.events());
        assert_eq!(attributed, 3);
        assert_eq!(estimator.samples(CurationStage::Match, PhysicalAlt::DirectLlm), 1);
        assert_eq!(estimator.samples(CurationStage::Match, PhysicalAlt::CachedLlm), 1);
        assert_eq!(estimator.samples(CurationStage::Extract, PhysicalAlt::CustomCode), 1);
        // The direct-LLM cell carries the rolled-up token usage; accuracy
        // falls back to the prior because traces carry no judgments.
        let est =
            estimator.estimate(CurationStage::Match, PhysicalAlt::DirectLlm, &stats()).unwrap();
        assert!((est.usd_per_record - (0.12 * 0.0015 + 0.008 * 0.002)).abs() < 1e-12);
        assert!((est.accuracy - 0.92).abs() < 1e-12);
    }

    #[test]
    fn priors_follow_the_paper_ranking_character() {
        let estimator = CostEstimator::new();
        let stats = stats();
        let llm = estimator.prior_estimate(PhysicalAlt::DirectLlm, &stats);
        let cached = estimator.prior_estimate(PhysicalAlt::CachedLlm, &stats);
        let llmgc = estimator.prior_estimate(PhysicalAlt::LlmgcProgram, &stats);
        let custom = estimator.prior_estimate(PhysicalAlt::CustomCode, &stats);
        assert!(llm.usd_per_record > cached.usd_per_record);
        assert!(cached.usd_per_record > llmgc.usd_per_record);
        assert!(llmgc.setup_usd > 0.0, "code generation is billed");
        assert_eq!(custom.usd_per_record, 0.0);
        assert!(llm.accuracy > llmgc.accuracy && llmgc.accuracy > custom.accuracy);
    }

    #[test]
    fn objectives_weigh_the_score() {
        let est = CostEstimate {
            usd_per_record: 0.002,
            ms_per_record: 350.0,
            setup_usd: 0.5,
            setup_ms: 100.0,
            accuracy: 0.9,
        };
        assert!((est.total_usd(100.0) - 0.7).abs() < 1e-12);
        assert!((est.total_ms(100.0) - 35100.0).abs() < 1e-9);
        let cheap = est.score(&Objective::cheapest_dollars(), 100.0);
        let fast = est.score(&Objective::lowest_latency(), 100.0);
        assert!(fast > cheap, "this op is latency-heavy");
        let floored = Objective::cheapest_dollars().with_floor(0.95);
        assert!((floored.accuracy_floor - 0.95).abs() < 1e-12);
        assert_eq!(floored.name, "cheap_$");
    }
}
