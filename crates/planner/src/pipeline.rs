//! The compiled output of a planning session: a plan plus the executable
//! pipeline it materialized to, ready to register with `lingua-serve`.

use crate::plan::Plan;
use lingua_core::PhysicalPipeline;
use lingua_serve::{PipelineServer, ServeError};

/// A plan married to the physical pipeline it compiled into. The physical
/// half is a plain [`PhysicalPipeline`] — every existing consumer (executor,
/// serve registry, stream engine) takes it unchanged; the plan rides along
/// as provenance.
pub struct PlannedPipeline {
    pub plan: Plan,
    pub physical: PhysicalPipeline,
}

impl PlannedPipeline {
    /// Register with a serve instance under `id`, transparently: the server
    /// sees an ordinary compiled pipeline, and the plan summary lands as the
    /// registry annotation so operators can see why the pipeline runs the
    /// way it does.
    pub fn register_with(&self, server: &PipelineServer, id: &str) -> Result<(), ServeError> {
        let instance = self.physical.fresh_instance().map_err(ServeError::Core)?;
        server.registry().register_annotated(id, instance, self.plan.summary())
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::Objective;
    use crate::physical::PhysicalAlt;
    use crate::plan::Planner;
    use lingua_core::optimizer::SampleMeasurement;
    use lingua_core::{Compiler, CurationStage, DatasetStats, ExecContext, LogicalOp, Pipeline};
    use lingua_dataset::world::WorldSpec;
    use lingua_dataset::{Record, Schema, Table, Value};
    use lingua_llm_sim::{SimLlm, Usage};
    use lingua_serve::{PipelineServer, ServeConfig};
    use lingua_trace::Tracer;
    use std::sync::Arc;

    #[test]
    fn planned_pipelines_register_transparently() {
        let mut planner = Planner::new(Compiler::with_builtins());
        planner.estimator_mut().record_sample(
            CurationStage::Match,
            PhysicalAlt::DirectLlm,
            &SampleMeasurement {
                total: 10,
                passed: 9,
                errors: 0,
                usage: Usage { calls: 10, tokens_in: 2000, tokens_out: 100, ..Usage::default() },
                sim_latency_ms: 3500,
                wall_ms: 0,
            },
        );
        let schema = Schema::of_names(["name"]);
        let rows: Vec<Record> =
            (0..10).map(|i| Record::new(vec![Value::Str(format!("item {i}"))])).collect();
        let stats = DatasetStats::from_table(&Table::with_rows("t", schema, rows).unwrap());
        let pipeline = Pipeline::new("er").op(LogicalOp::new("entity_resolution")
            .input("records")
            .output("matches")
            .using(lingua_core::ModuleKind::Llm)
            .param("desc", "Determine if the two records refer to the same entity"));
        let world = WorldSpec::generate(11);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 11)));
        let planned = planner
            .plan_and_compile(
                &pipeline,
                &stats,
                &Objective::cheapest_dollars(),
                &Tracer::disabled(),
                &mut ctx,
            )
            .unwrap();
        let factory = lingua_core::ContextFactory::new(Arc::new(SimLlm::with_seed(&world, 11)));
        let mut server = PipelineServer::start(factory, ServeConfig::default()).unwrap();
        planned.register_with(&server, "er").unwrap();
        assert!(server.registry().contains("er"));
        // The annotation carries the plan summary: objective + per-op choice.
        let note = server.registry().annotation("er").unwrap();
        assert!(note.contains("cheap_$"), "annotation: {note}");
        assert!(note.contains("entity_resolution"), "annotation: {note}");
        server.shutdown();
    }
}
