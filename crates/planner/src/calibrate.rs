//! Calibration: run a candidate physical implementation over a labeled
//! sample (the paper's Validator machinery) and book what it measured —
//! usage, latency, judged accuracy — into the [`CostEstimator`].
//!
//! This is the highest-fidelity evidence feed: unlike trace rollups it
//! carries accuracy, and unlike priors it reflects the actual dataset and
//! the actual module. The planner's accuracy floors are only as good as the
//! calibration sample, so build it the way the paper builds Validator test
//! cases: labeled examples drawn from the target workload.

use crate::cost::CostEstimator;
use crate::physical::PhysicalAlt;
use lingua_core::modules::Module;
use lingua_core::optimizer::{SampleMeasurement, TestCase, Validator};
use lingua_core::{CurationStage, Data, ExecContext};
use lingua_dataset::labels::LabeledPair;
use lingua_dataset::Schema;

/// A labeled sample plus the Validator that runs modules over it.
pub struct Calibrator {
    validator: Validator,
}

impl Calibrator {
    pub fn new(cases: Vec<TestCase>) -> Calibrator {
        Calibrator { validator: Validator::new(cases) }
    }

    /// Build a pair-matching sample from labeled ER pairs: each case feeds
    /// the same `{a, b}` description map the LLM pair modules and
    /// [`crate::MlPairModule`] consume, expecting a boolean verdict.
    pub fn from_pairs(schema: &Schema, pairs: &[LabeledPair]) -> Calibrator {
        let cases = pairs
            .iter()
            .map(|pair| {
                TestCase::new(
                    Data::map([
                        ("a".to_string(), Data::Str(pair.left.describe(schema))),
                        ("b".to_string(), Data::Str(pair.right.describe(schema))),
                    ]),
                    Data::Bool(pair.label),
                )
            })
            .collect();
        Calibrator::new(cases)
    }

    pub fn cases(&self) -> &[TestCase] {
        self.validator.cases()
    }

    /// Run the module over the sample without booking anything.
    pub fn measure(&self, module: &mut dyn Module, ctx: &mut ExecContext) -> SampleMeasurement {
        self.validator.measure(module, ctx)
    }

    /// Run the module over the sample and book the measurement into the
    /// estimator under `(stage, alt)`. Returns the measurement so callers
    /// can inspect (or reject) what they just taught the estimator.
    pub fn calibrate(
        &self,
        estimator: &mut CostEstimator,
        stage: CurationStage,
        alt: PhysicalAlt,
        module: &mut dyn Module,
        ctx: &mut ExecContext,
    ) -> SampleMeasurement {
        let sample = self.validator.measure(module, ctx);
        estimator.record_sample(stage, alt, &sample);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::MlPairModule;
    use lingua_dataset::generators::er::{generate, ErDataset};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn pair_samples_calibrate_the_estimator() {
        let world = WorldSpec::generate(21);
        let split = generate(&world, ErDataset::FodorsZagats, 7);
        let calibrator = Calibrator::from_pairs(&split.schema, &split.valid);
        assert_eq!(calibrator.cases().len(), split.valid.len());
        // The case inputs have the `{a, b}` shape modules expect.
        let case = &calibrator.cases()[0];
        let map = case.input.as_map().unwrap();
        assert!(map.contains_key("a") && map.contains_key("b"));
        assert!(matches!(case.expected, Data::Bool(_)));

        let mut model = MlPairModule::train("er_model", &split.schema, &split.train, 0).unwrap();
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 21)));
        let mut estimator = CostEstimator::new();
        let sample = calibrator.calibrate(
            &mut estimator,
            CurationStage::Match,
            PhysicalAlt::MlModel,
            &mut model,
            &mut ctx,
        );
        assert_eq!(sample.total, split.valid.len());
        assert!(sample.accuracy() > 0.7, "model accuracy {}", sample.accuracy());
        assert_eq!(sample.usage.calls, 0, "the model never calls the LLM");
        assert_eq!(
            estimator.samples(CurationStage::Match, PhysicalAlt::MlModel),
            split.valid.len() as u64
        );
    }
}
