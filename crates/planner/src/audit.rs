//! Estimated-vs-actual audit: reconcile what a plan *predicted* (the
//! `SpanKind::Plan` span and its per-op `choose` instants) against what the
//! executions it governed *actually billed* (the `Op` span rollups of every
//! `Pipeline` run with the same name in the trace).
//!
//! Serve jobs run record-at-a-time, so each `Pipeline` span is one record's
//! worth of work: the per-run estimate is the plan's per-record estimate
//! (its `choose` instant's `usd ÷ records`), and the audit's estimated total
//! is that figure times the observed run count. A large estimated/actual gap
//! on an op means the calibration sample no longer represents production —
//! time to recalibrate and replan.

use lingua_llm_sim::cost::TokenPricing;
use lingua_llm_sim::Usage;
use lingua_trace::{SpanKind, TraceEvent, TraceTree};

/// Per-op reconciliation inside one plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct OpAudit {
    pub op: String,
    /// The chosen physical alternative's stable name.
    pub alt: String,
    /// Plan's per-record estimate scaled to the observed run count.
    pub est_usd: f64,
    /// Dollars the op's spans actually rolled up to.
    pub actual_usd: f64,
    /// Billed LLM calls the op's spans actually made.
    pub actual_calls: u64,
}

/// One plan span reconciled against its runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PlanAudit {
    pub pipeline: String,
    pub objective: String,
    /// `Pipeline` spans with this plan's name found in the trace.
    pub runs: u64,
    pub est_usd: f64,
    pub actual_usd: f64,
    pub ops: Vec<OpAudit>,
}

/// Reconcile every plan span in a trace against the pipeline runs that
/// share its name. Returns one audit per plan span; an unparseable trace
/// yields an empty list rather than an error (audit is best-effort).
pub fn audit_events(events: &[TraceEvent], pricing: &TokenPricing) -> Vec<PlanAudit> {
    let Ok(tree) = TraceTree::build(events) else { return Vec::new() };
    let pipelines = tree.spans_of_kind(SpanKind::Pipeline);
    let mut out = Vec::new();
    for plan in tree.spans_of_kind(SpanKind::Plan) {
        let runs: Vec<_> = pipelines.iter().filter(|p| p.name == plan.name).collect();
        let run_count = runs.len() as u64;
        let mut ops = Vec::new();
        let mut est_total = 0.0;
        let mut actual_total = 0.0;
        for choose in plan.instants.iter().filter(|i| i.name == "choose") {
            let Some(op_name) = choose.attrs.get("op") else { continue };
            let parse = |key: &str| choose.attrs.get(key).and_then(|v| v.parse::<f64>().ok());
            let usd = parse("usd").unwrap_or(0.0);
            let records = parse("records").filter(|r| *r > 0.0).unwrap_or(1.0);
            let est_usd = usd / records * run_count as f64;
            let mut actual = Usage::default();
            for run in &runs {
                for child in &run.children {
                    if child.kind == SpanKind::Op && child.name == *op_name {
                        actual.merge(&child.rollup());
                    }
                }
            }
            let actual_usd = actual.cost_usd(pricing);
            est_total += est_usd;
            actual_total += actual_usd;
            ops.push(OpAudit {
                op: op_name.clone(),
                alt: choose.attrs.get("alt").cloned().unwrap_or_default(),
                est_usd,
                actual_usd,
                actual_calls: actual.calls,
            });
        }
        out.push(PlanAudit {
            pipeline: plan.name.clone(),
            objective: plan.attrs.get("objective").cloned().unwrap_or_default(),
            runs: run_count,
            est_usd: est_total,
            actual_usd: actual_total,
            ops,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_trace::ring_tracer;

    #[test]
    fn audits_reconcile_plan_spans_with_their_runs() {
        let (tracer, sink) = ring_tracer(128);
        {
            // One plan: entity_resolution estimated at $0.04 over 20 records
            // ($0.002/record).
            let mut plan = tracer.span(SpanKind::Plan, "er");
            plan.attr("objective", "cheap_$");
            tracer.instant_under(Some(plan.id()), SpanKind::Plan, "choose", || {
                vec![
                    ("op".to_string(), "entity_resolution".to_string()),
                    ("alt".to_string(), "direct_llm".to_string()),
                    ("usd".to_string(), "0.040000".to_string()),
                    ("records".to_string(), "20.0".to_string()),
                ]
            });
            drop(plan);
            // Two runs; each bills one LLM call of 1000 in / 100 out tokens
            // under the op span.
            for _ in 0..2 {
                let run = tracer.span(SpanKind::Pipeline, "er");
                let mut op = tracer.span(SpanKind::Op, "entity_resolution");
                op.attr("module_kind", "llm");
                let mut llm = tracer.span(SpanKind::LlmCall, "llm");
                let mut usage = Usage::default();
                usage.record(1000, 100);
                llm.set_usage(usage);
                drop(llm);
                drop(op);
                drop(run);
            }
            // An unrelated pipeline must not be attributed to the plan.
            let run = tracer.span(SpanKind::Pipeline, "other");
            drop(run);
        }
        let audits = audit_events(&sink.events(), &TokenPricing::default());
        assert_eq!(audits.len(), 1);
        let audit = &audits[0];
        assert_eq!(audit.pipeline, "er");
        assert_eq!(audit.objective, "cheap_$");
        assert_eq!(audit.runs, 2);
        // Estimated: $0.002/record × 2 runs.
        assert!((audit.est_usd - 0.004).abs() < 1e-9);
        // Actual: 2 calls × (1.0 × 0.0015 + 0.1 × 0.002).
        assert!((audit.actual_usd - 2.0 * (0.0015 + 0.0002)).abs() < 1e-12);
        assert_eq!(audit.ops.len(), 1);
        assert_eq!(audit.ops[0].op, "entity_resolution");
        assert_eq!(audit.ops[0].alt, "direct_llm");
        assert_eq!(audit.ops[0].actual_calls, 2);
    }

    #[test]
    fn unparseable_traces_audit_to_nothing() {
        assert!(audit_events(&[], &TokenPricing::default()).is_empty());
    }
}
