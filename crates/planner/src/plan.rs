//! Plan enumeration: per-op candidates, memoized Volcano-style search over
//! Pareto frontiers, and the [`Planner`] that ties candidates, search, and
//! compilation together.
//!
//! The search is exact. For each op-suffix the dynamic program keeps only the
//! Pareto frontier of (cost, accuracy) outcomes — an assignment dominated on
//! both axes can never become optimal by prepending more ops, because cost
//! adds and accuracy multiplies monotonically. The memoized winner therefore
//! equals the exhaustive cross-product winner ([`exhaustive_assignment`]
//! exists to prove exactly that, property-tested in `tests/proptest_plan.rs`).

use crate::cost::{CostEstimate, CostEstimator, Objective, PlanError};
use crate::physical::{MemoModule, PhysicalAlt};
use crate::pipeline::PlannedPipeline;
use lingua_core::modules::{Module, ModuleKind};
use lingua_core::{
    Compiler, CurationStage, DatasetStats, ExecContext, LogicalOp, PhysicalPipeline, Pipeline,
};
use lingua_llm_sim::TemplateKind;
use lingua_trace::{SpanKind, Tracer};
use std::collections::BTreeMap;

/// One physical option for one op, priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub alt: PhysicalAlt,
    pub estimate: CostEstimate,
    /// True when the estimate is a prior from the default implementation
    /// ranking rather than observed evidence.
    pub fallback: bool,
}

/// Result of a search over candidate assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Chosen candidate index per op.
    pub choices: Vec<usize>,
    /// Objective-weighted total cost of the winning assignment.
    pub cost: f64,
    /// Plan accuracy (product of per-op accuracies) of the winner.
    pub accuracy: f64,
    /// Candidate combinations examined.
    pub considered: u64,
    /// Pareto-frontier entries kept across all suffixes (memo size).
    pub kept: u64,
}

/// A frontier entry: the cost/accuracy of one op-suffix assignment, with
/// back-pointers for reconstruction.
struct Entry {
    cost: f64,
    accuracy: f64,
    choice: usize,
    next: usize,
}

const FLOOR_EPSILON: f64 = 1e-9;

/// Exact memoized search: right-to-left over ops, keeping the Pareto
/// frontier of (cost, accuracy) per suffix. `records[i]` is the record count
/// entering op `i` (the per-record cost multiplier). Returns the cheapest
/// assignment whose accuracy product meets the objective's floor.
pub fn best_assignment(
    candidates: &[Vec<Candidate>],
    records: &[f64],
    objective: &Objective,
) -> Result<SearchOutcome, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::EmptyPipeline);
    }
    let n = candidates.len();
    let mut frontiers: Vec<Vec<Entry>> = Vec::with_capacity(n + 1);
    frontiers.resize_with(n + 1, Vec::new);
    frontiers[n].push(Entry { cost: 0.0, accuracy: 1.0, choice: usize::MAX, next: usize::MAX });
    let mut considered = 0u64;
    for i in (0..n).rev() {
        if candidates[i].is_empty() {
            return Err(PlanError::NoAlternatives { op: format!("op[{i}]") });
        }
        let mut combined: Vec<Entry> = Vec::new();
        for (choice, candidate) in candidates[i].iter().enumerate() {
            let score = candidate.estimate.score(objective, records[i]);
            for (next, entry) in frontiers[i + 1].iter().enumerate() {
                considered += 1;
                combined.push(Entry {
                    cost: score + entry.cost,
                    accuracy: candidate.estimate.accuracy * entry.accuracy,
                    choice,
                    next,
                });
            }
        }
        // Sort by cost ascending (accuracy descending on ties), then keep
        // only entries that strictly improve accuracy — the Pareto frontier.
        combined.sort_by(|a, b| {
            a.cost.total_cmp(&b.cost).then_with(|| b.accuracy.total_cmp(&a.accuracy))
        });
        let mut frontier: Vec<Entry> = Vec::new();
        for entry in combined {
            if frontier.last().map_or(true, |kept| entry.accuracy > kept.accuracy) {
                frontier.push(entry);
            }
        }
        frontiers[i] = frontier;
    }
    let kept = frontiers.iter().map(|f| f.len() as u64).sum();
    // The frontier is cost-ascending with accuracy strictly increasing, so
    // the first entry meeting the floor is the cheapest feasible assignment.
    let winner = frontiers[0]
        .iter()
        .position(|entry| entry.accuracy >= objective.accuracy_floor - FLOOR_EPSILON);
    let Some(winner) = winner else {
        let best_accuracy = frontiers[0].last().map(|entry| entry.accuracy).unwrap_or(0.0);
        return Err(PlanError::Infeasible { floor: objective.accuracy_floor, best_accuracy });
    };
    let mut choices = Vec::with_capacity(n);
    let mut index = winner;
    for frontier in frontiers.iter().take(n) {
        let entry = &frontier[index];
        choices.push(entry.choice);
        index = entry.next;
    }
    let entry = &frontiers[0][winner];
    Ok(SearchOutcome { cost: entry.cost, accuracy: entry.accuracy, choices, considered, kept })
}

/// Exhaustive cross-product reference for the property tests: enumerate
/// every assignment, keep the cheapest feasible one. Sums are associated
/// right-to-left exactly like [`best_assignment`], so winning costs compare
/// bit-for-bit on identical inputs.
pub fn exhaustive_assignment(
    candidates: &[Vec<Candidate>],
    records: &[f64],
    objective: &Objective,
) -> Result<SearchOutcome, PlanError> {
    if candidates.is_empty() {
        return Err(PlanError::EmptyPipeline);
    }
    for (i, cands) in candidates.iter().enumerate() {
        if cands.is_empty() {
            return Err(PlanError::NoAlternatives { op: format!("op[{i}]") });
        }
    }
    fn suffixes(
        candidates: &[Vec<Candidate>],
        records: &[f64],
        objective: &Objective,
    ) -> Vec<(f64, f64, Vec<usize>)> {
        let Some((first, rest_candidates)) = candidates.split_first() else {
            return vec![(0.0, 1.0, Vec::new())];
        };
        let rest = suffixes(rest_candidates, &records[1..], objective);
        let mut out = Vec::new();
        for (choice, candidate) in first.iter().enumerate() {
            let score = candidate.estimate.score(objective, records[0]);
            for (cost, accuracy, choices) in &rest {
                let mut full = Vec::with_capacity(choices.len() + 1);
                full.push(choice);
                full.extend_from_slice(choices);
                out.push((score + cost, candidate.estimate.accuracy * accuracy, full));
            }
        }
        out
    }
    let all = suffixes(candidates, records, objective);
    let considered = all.len() as u64;
    let mut best: Option<(f64, f64, Vec<usize>)> = None;
    let mut best_accuracy = 0.0f64;
    for (cost, accuracy, choices) in all {
        best_accuracy = best_accuracy.max(accuracy);
        if accuracy >= objective.accuracy_floor - FLOOR_EPSILON
            && best.as_ref().map_or(true, |(b, _, _)| cost < *b)
        {
            best = Some((cost, accuracy, choices));
        }
    }
    let Some((cost, accuracy, choices)) = best else {
        return Err(PlanError::Infeasible { floor: objective.accuracy_floor, best_accuracy });
    };
    Ok(SearchOutcome { cost, accuracy, choices, considered, kept: considered })
}

/// One op's slot in a finished plan.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    pub op: LogicalOp,
    pub stage: CurationStage,
    pub alt: PhysicalAlt,
    pub estimate: CostEstimate,
    /// Records expected to enter this op (after upstream selectivity).
    pub records: f64,
    /// Estimate came from the default-ranking prior, not observations.
    pub fallback: bool,
}

/// A finished plan: per-op choices plus plan-level totals.
#[derive(Debug, Clone)]
pub struct Plan {
    pub name: String,
    pub ops: Vec<PlannedOp>,
    pub objective: Objective,
    pub est_usd: f64,
    pub est_ms: f64,
    pub est_accuracy: f64,
    /// Candidate combinations the search examined.
    pub considered: u64,
    /// Pareto-frontier entries the memo kept.
    pub frontier_kept: u64,
}

impl Plan {
    /// One-line provenance summary (this is what lands in the serve
    /// registry's annotation).
    pub fn summary(&self) -> String {
        let ops: Vec<String> =
            self.ops.iter().map(|op| format!("{}→{}", op.op_type(), op.alt.name())).collect();
        format!(
            "plan[{}] {} (est ${:.4}, {:.0}ms, acc {:.3})",
            self.objective.name,
            ops.join(", "),
            self.est_usd,
            self.est_ms,
            self.est_accuracy
        )
    }

    /// The alternative chosen for an op type, if the op is in the plan.
    pub fn alt_of(&self, op_type: &str) -> Option<PhysicalAlt> {
        self.ops.iter().find(|op| op.op_type() == op_type).map(|op| op.alt)
    }

    /// Whether any op fell back to the default-ranking prior.
    pub fn is_fallback(&self) -> bool {
        self.ops.iter().any(|op| op.fallback)
    }
}

impl PlannedOp {
    pub fn op_type(&self) -> &str {
        &self.op.op_type
    }
}

/// The planner: candidate generation + cost-based search + compilation into
/// the existing `lingua-core` execution types.
pub struct Planner {
    compiler: Compiler,
    estimator: CostEstimator,
    models: BTreeMap<CurationStage, Box<dyn Module>>,
    cache_capacity: usize,
}

impl Planner {
    pub fn new(compiler: Compiler) -> Planner {
        Planner {
            compiler,
            estimator: CostEstimator::new(),
            models: BTreeMap::new(),
            cache_capacity: 4096,
        }
    }

    pub fn estimator(&self) -> &CostEstimator {
        &self.estimator
    }

    pub fn estimator_mut(&mut self) -> &mut CostEstimator {
        &mut self.estimator
    }

    /// Capacity of the memo a `CachedLlm` choice compiles to.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Planner {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Install a trained model as the `MlModel` alternative for a stage. The
    /// module must be replicable (`fresh_instance`) — the planner hands out
    /// instances, never the master.
    pub fn install_model(
        &mut self,
        stage: CurationStage,
        module: Box<dyn Module>,
    ) -> Result<(), PlanError> {
        if module.fresh_instance().is_none() {
            return Err(PlanError::Core(format!(
                "model for the {} stage must support fresh_instance",
                stage.name()
            )));
        }
        self.models.insert(stage, module);
        Ok(())
    }

    /// Enumerate and price the physical candidates for one op.
    ///
    /// Kind pins narrow the lattice: `using llm` admits the direct LLM and
    /// its semantics-preserving cache; `using llmgc` admits only the
    /// generated program; `using custom` (or a registered factory under the
    /// default policy) passes through at face value — custom code is the
    /// user's explicit choice, so the estimator is not consulted. Unpinned
    /// ops get the full lattice filtered by what can actually bind.
    fn candidates_for(&self, op: &LogicalOp, stats: &DatasetStats) -> Vec<Candidate> {
        let stage = op.stage();
        if op.kind == Some(ModuleKind::Custom)
            || (op.kind.is_none() && self.compiler.has_factory(&op.op_type))
        {
            return vec![Candidate {
                alt: PhysicalAlt::CustomCode,
                estimate: CostEstimate {
                    usd_per_record: 0.0,
                    ms_per_record: 0.0,
                    setup_usd: 0.0,
                    setup_ms: 0.0,
                    accuracy: 1.0,
                },
                fallback: false,
            }];
        }
        let admissible: Vec<PhysicalAlt> = match op.kind {
            Some(ModuleKind::Llm) => vec![PhysicalAlt::CachedLlm, PhysicalAlt::DirectLlm],
            Some(ModuleKind::Llmgc) => vec![PhysicalAlt::LlmgcProgram],
            _ => {
                let mut alts = Vec::new();
                let desc = op.description().unwrap_or(&op.op_type);
                let hints: Vec<String> = op
                    .params
                    .get("hints")
                    .map(|h| h.split(',').map(|s| s.trim().to_string()).collect())
                    .unwrap_or_default();
                if TemplateKind::detect(desc, &hints) != TemplateKind::Identity {
                    alts.push(PhysicalAlt::LlmgcProgram);
                }
                if self.models.contains_key(&stage) {
                    alts.push(PhysicalAlt::MlModel);
                }
                if op.description().is_some() {
                    alts.push(PhysicalAlt::CachedLlm);
                    alts.push(PhysicalAlt::DirectLlm);
                }
                alts
            }
        };
        let mut out: Vec<Candidate> = admissible
            .iter()
            .filter_map(|&alt| {
                self.estimator.estimate(stage, alt, stats).ok().map(|estimate| Candidate {
                    alt,
                    estimate,
                    fallback: false,
                })
            })
            .collect();
        if out.is_empty() {
            // InsufficientStats everywhere: fall back to the first admissible
            // alternative in the paper's default ranking, priced by priors
            // and labeled as such.
            for alt in PhysicalAlt::ALL {
                if admissible.contains(&alt) {
                    out.push(Candidate {
                        alt,
                        estimate: self.estimator.prior_estimate(alt, stats),
                        fallback: true,
                    });
                    break;
                }
            }
        }
        out
    }

    /// Plan a logical pipeline: choose one physical alternative per op,
    /// minimizing the objective under its accuracy floor. Records the
    /// decision as a `SpanKind::Plan` span (one `choose` instant per op).
    pub fn plan(
        &self,
        pipeline: &Pipeline,
        stats: &DatasetStats,
        objective: &Objective,
        tracer: &Tracer,
    ) -> Result<Plan, PlanError> {
        if pipeline.ops.is_empty() {
            return Err(PlanError::EmptyPipeline);
        }
        let mut span = tracer.span(SpanKind::Plan, &pipeline.name);
        span.attr("objective", objective.name);
        span.attr("accuracy_floor", format!("{:.3}", objective.accuracy_floor));
        let mut candidates = Vec::with_capacity(pipeline.ops.len());
        let mut records = Vec::with_capacity(pipeline.ops.len());
        let mut flow = stats.rows.max(1) as f64;
        for op in &pipeline.ops {
            let cands = self.candidates_for(op, stats);
            if cands.is_empty() {
                return Err(PlanError::NoAlternatives { op: op.op_type.clone() });
            }
            records.push(flow);
            // Match stages shrink the downstream record flow to the
            // observed positive rate.
            if op.stage() == CurationStage::Match {
                if let Some(selectivity) = stats.match_selectivity {
                    flow *= selectivity;
                }
            }
            candidates.push(cands);
        }
        let outcome = best_assignment(&candidates, &records, objective)?;
        let mut ops = Vec::with_capacity(pipeline.ops.len());
        let mut est_usd = 0.0;
        let mut est_ms = 0.0;
        for (i, op) in pipeline.ops.iter().enumerate() {
            let chosen = candidates[i][outcome.choices[i]];
            est_usd += chosen.estimate.total_usd(records[i]);
            est_ms += chosen.estimate.total_ms(records[i]);
            tracer.instant_under(Some(span.id()), SpanKind::Plan, "choose", || {
                vec![
                    ("op".to_string(), op.op_type.clone()),
                    ("stage".to_string(), op.stage().name().to_string()),
                    ("alt".to_string(), chosen.alt.name().to_string()),
                    ("usd".to_string(), format!("{:.6}", chosen.estimate.total_usd(records[i]))),
                    ("ms".to_string(), format!("{:.6}", chosen.estimate.total_ms(records[i]))),
                    ("accuracy".to_string(), format!("{:.6}", chosen.estimate.accuracy)),
                    ("records".to_string(), format!("{:.1}", records[i])),
                    ("fallback".to_string(), chosen.fallback.to_string()),
                ]
            });
            ops.push(PlannedOp {
                op: op.clone(),
                stage: op.stage(),
                alt: chosen.alt,
                estimate: chosen.estimate,
                records: records[i],
                fallback: chosen.fallback,
            });
        }
        span.attr("est_usd", format!("{est_usd:.6}"));
        span.attr("est_ms", format!("{est_ms:.6}"));
        span.attr("est_accuracy", format!("{:.6}", outcome.accuracy));
        span.attr("considered", outcome.considered.to_string());
        Ok(Plan {
            name: pipeline.name.clone(),
            ops,
            objective: *objective,
            est_usd,
            est_ms,
            est_accuracy: outcome.accuracy,
            considered: outcome.considered,
            frontier_kept: outcome.kept,
        })
    }

    /// Materialize a plan into an executable [`PhysicalPipeline`] using the
    /// existing compiler (LLMGC choices run code generation now, billed to
    /// `ctx` as usual).
    pub fn compile(
        &self,
        plan: &Plan,
        ctx: &mut ExecContext,
    ) -> Result<PlannedPipeline, PlanError> {
        let mut ops: Vec<(LogicalOp, Box<dyn Module>)> = Vec::with_capacity(plan.ops.len());
        for planned in &plan.ops {
            let module: Box<dyn Module> = match planned.alt {
                PhysicalAlt::CustomCode => self.compiler.bind(&planned.op, ctx)?,
                PhysicalAlt::DirectLlm => {
                    let mut op = planned.op.clone();
                    op.kind = Some(ModuleKind::Llm);
                    self.compiler.bind(&op, ctx)?
                }
                PhysicalAlt::LlmgcProgram => {
                    let mut op = planned.op.clone();
                    op.kind = Some(ModuleKind::Llmgc);
                    self.compiler.bind(&op, ctx)?
                }
                PhysicalAlt::CachedLlm => {
                    let mut op = planned.op.clone();
                    op.kind = Some(ModuleKind::Llm);
                    Box::new(MemoModule::new(self.compiler.bind(&op, ctx)?, self.cache_capacity))
                }
                PhysicalAlt::MlModel => {
                    let model = self.models.get(&planned.stage).ok_or_else(|| {
                        PlanError::Core(format!(
                            "plan chose ml_model for the {} stage but no model is installed",
                            planned.stage.name()
                        ))
                    })?;
                    model.fresh_instance().ok_or_else(|| {
                        PlanError::Core(format!(
                            "model for the {} stage is not replicable",
                            planned.stage.name()
                        ))
                    })?
                }
            };
            ops.push((planned.op.clone(), module));
        }
        Ok(PlannedPipeline {
            plan: plan.clone(),
            physical: PhysicalPipeline { name: plan.name.clone(), ops },
        })
    }

    /// Convenience: plan then compile in one call.
    pub fn plan_and_compile(
        &self,
        pipeline: &Pipeline,
        stats: &DatasetStats,
        objective: &Objective,
        tracer: &Tracer,
        ctx: &mut ExecContext,
    ) -> Result<PlannedPipeline, PlanError> {
        let plan = self.plan(pipeline, stats, objective, tracer)?;
        self.compile(&plan, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::MlPairModule;
    use lingua_core::optimizer::SampleMeasurement;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::{SimLlm, Usage};
    use lingua_trace::{ring_tracer, TraceTree};
    use std::sync::Arc;

    fn candidate(alt: PhysicalAlt, usd: f64, ms: f64, accuracy: f64) -> Candidate {
        Candidate {
            alt,
            estimate: CostEstimate {
                usd_per_record: usd,
                ms_per_record: ms,
                setup_usd: 0.0,
                setup_ms: 0.0,
                accuracy,
            },
            fallback: false,
        }
    }

    fn stats_with_rows(rows: usize) -> DatasetStats {
        use lingua_dataset::{Record, Schema, Table, Value};
        let schema = Schema::of_names(["name"]);
        let rows: Vec<Record> =
            (0..rows).map(|i| Record::new(vec![Value::Str(format!("item number {i}"))])).collect();
        DatasetStats::from_table(&Table::with_rows("t", schema, rows).unwrap())
    }

    #[test]
    fn search_picks_the_cheapest_feasible_assignment() {
        let candidates = vec![
            vec![
                candidate(PhysicalAlt::DirectLlm, 0.002, 350.0, 0.95),
                candidate(PhysicalAlt::MlModel, 0.0, 0.5, 0.85),
            ],
            vec![
                candidate(PhysicalAlt::DirectLlm, 0.002, 350.0, 0.95),
                candidate(PhysicalAlt::CustomCode, 0.0, 0.1, 0.99),
            ],
        ];
        let records = vec![100.0, 100.0];
        // Floor 0.8: the all-cheap assignment (0.85 * 0.99 = 0.8415) passes.
        let outcome =
            best_assignment(&candidates, &records, &Objective::cheapest_dollars()).unwrap();
        assert_eq!(outcome.choices, vec![1, 1]);
        assert!((outcome.accuracy - 0.85 * 0.99).abs() < 1e-12);
        // Floor 0.9: the model is no longer affordable accuracy-wise; the
        // LLM must take the first op (0.95 * 0.99 = 0.9405).
        let strict = Objective::cheapest_dollars().with_floor(0.9);
        let outcome = best_assignment(&candidates, &records, &strict).unwrap();
        assert_eq!(outcome.choices, vec![0, 1]);
        // An unreachable floor is a typed error carrying the best achievable.
        let impossible = Objective::cheapest_dollars().with_floor(0.99);
        let err = best_assignment(&candidates, &records, &impossible).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible { best_accuracy, .. }
            if (best_accuracy - 0.95 * 0.99).abs() < 1e-12));
    }

    #[test]
    fn search_matches_the_exhaustive_reference() {
        let candidates = vec![
            vec![
                candidate(PhysicalAlt::DirectLlm, 0.002, 350.0, 0.92),
                candidate(PhysicalAlt::LlmgcProgram, 0.0001, 1.0, 0.88),
                candidate(PhysicalAlt::MlModel, 0.0, 0.5, 0.85),
            ],
            vec![
                candidate(PhysicalAlt::DirectLlm, 0.003, 350.0, 0.95),
                candidate(PhysicalAlt::CachedLlm, 0.001, 120.0, 0.95),
            ],
            vec![candidate(PhysicalAlt::CustomCode, 0.0, 0.1, 1.0)],
        ];
        let records = vec![500.0, 500.0, 250.0];
        for objective in [
            Objective::cheapest_dollars(),
            Objective::lowest_latency(),
            Objective::cheapest_dollars().with_floor(0.87),
        ] {
            let fast = best_assignment(&candidates, &records, &objective).unwrap();
            let slow = exhaustive_assignment(&candidates, &records, &objective).unwrap();
            assert_eq!(fast.cost, slow.cost, "objective {}", objective.name);
            assert_eq!(fast.choices, slow.choices);
        }
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let objective = Objective::cheapest_dollars();
        assert_eq!(best_assignment(&[], &[], &objective).unwrap_err(), PlanError::EmptyPipeline);
        let candidates = vec![vec![], vec![candidate(PhysicalAlt::CustomCode, 0.0, 0.1, 1.0)]];
        assert!(matches!(
            best_assignment(&candidates, &[1.0, 1.0], &objective).unwrap_err(),
            PlanError::NoAlternatives { .. }
        ));
    }

    fn calibrated_planner() -> Planner {
        let mut planner = Planner::new(Compiler::with_builtins());
        // Direct LLM at the Match stage: expensive, slow, accurate.
        planner.estimator_mut().record_sample(
            CurationStage::Match,
            PhysicalAlt::DirectLlm,
            &SampleMeasurement {
                total: 20,
                passed: 19,
                errors: 0,
                usage: Usage { calls: 20, tokens_in: 4000, tokens_out: 200, ..Usage::default() },
                sim_latency_ms: 7000,
                wall_ms: 0,
            },
        );
        planner
    }

    fn er_pipeline() -> Pipeline {
        Pipeline::new("er").op(LogicalOp::new("entity_resolution")
            .input("records")
            .output("matches")
            .param("desc", "Determine if the two records refer to the same entity"))
    }

    #[test]
    fn planner_prefers_the_model_when_cheap_and_feasible() {
        let mut planner = calibrated_planner();
        let world = WorldSpec::generate(21);
        let split = lingua_dataset::generators::er::generate(
            &world,
            lingua_dataset::generators::er::ErDataset::FodorsZagats,
            7,
        );
        let model = MlPairModule::train("er_model", &split.schema, &split.train, 0).unwrap();
        planner.install_model(CurationStage::Match, Box::new(model)).unwrap();
        // Tell the estimator the model judged well on a sample.
        planner.estimator_mut().record_sample(
            CurationStage::Match,
            PhysicalAlt::MlModel,
            &SampleMeasurement {
                total: 20,
                passed: 18,
                errors: 0,
                usage: Usage::default(),
                sim_latency_ms: 0,
                wall_ms: 10,
            },
        );
        let stats = stats_with_rows(200);
        let cheap = planner
            .plan(&er_pipeline(), &stats, &Objective::cheapest_dollars(), &Tracer::disabled())
            .unwrap();
        assert_eq!(cheap.alt_of("entity_resolution"), Some(PhysicalAlt::MlModel));
        assert!(!cheap.is_fallback());
        assert!(cheap.est_usd < 1e-9, "the model costs no tokens");
        // Raise the floor past the model's accuracy: an LLM-backed form wins
        // despite costing real dollars.
        let strict = Objective::cheapest_dollars().with_floor(0.92);
        let plan = planner.plan(&er_pipeline(), &stats, &strict, &Tracer::disabled()).unwrap();
        assert!(matches!(
            plan.alt_of("entity_resolution"),
            Some(PhysicalAlt::CachedLlm | PhysicalAlt::DirectLlm)
        ));
        assert!(plan.est_usd > 0.0);
        assert!(plan.est_accuracy >= 0.92);
    }

    #[test]
    fn unobserved_ops_fall_back_to_the_default_ranking() {
        let planner = Planner::new(Compiler::with_builtins());
        let stats = stats_with_rows(50);
        let pipeline = Pipeline::new("fresh").op(LogicalOp::new("entity_resolution")
            .input("records")
            .output("matches")
            .using(ModuleKind::Llm)
            .param("desc", "Determine if the two records refer to the same entity"));
        let plan = planner
            .plan(&pipeline, &stats, &Objective::cheapest_dollars(), &Tracer::disabled())
            .unwrap();
        // No evidence at all: the first admissible alternative in the
        // paper's ranking (cache before raw LLM) carries prior pricing.
        assert_eq!(plan.alt_of("entity_resolution"), Some(PhysicalAlt::CachedLlm));
        assert!(plan.is_fallback());
    }

    #[test]
    fn custom_ops_pass_through_unpriced() {
        let planner = calibrated_planner();
        let stats = stats_with_rows(50);
        let pipeline = Pipeline::new("load")
            .op(LogicalOp::new("load_csv").output("records").param("path", "x.csv"));
        let plan = planner
            .plan(&pipeline, &stats, &Objective::cheapest_dollars(), &Tracer::disabled())
            .unwrap();
        assert_eq!(plan.alt_of("load_csv"), Some(PhysicalAlt::CustomCode));
        assert_eq!(plan.est_usd, 0.0);
    }

    #[test]
    fn plans_emit_audit_spans() {
        let planner = calibrated_planner();
        let stats = stats_with_rows(100);
        let (tracer, sink) = ring_tracer(64);
        let pipeline = Pipeline::new("er").op(LogicalOp::new("entity_resolution")
            .input("records")
            .output("matches")
            .using(ModuleKind::Llm)
            .param("desc", "Determine if the two records refer to the same entity"));
        planner.plan(&pipeline, &stats, &Objective::cheapest_dollars(), &tracer).unwrap();
        let tree = TraceTree::build(&sink.events()).unwrap();
        let plans = tree.spans_of_kind(SpanKind::Plan);
        assert_eq!(plans.len(), 1);
        let span = plans[0];
        assert_eq!(span.name, "er");
        assert_eq!(span.attrs.get("objective").map(String::as_str), Some("cheap_$"));
        assert!(span.attrs.contains_key("est_usd"));
        let chooses: Vec<_> = span.instants.iter().filter(|i| i.name == "choose").collect();
        assert_eq!(chooses.len(), 1);
        assert_eq!(chooses[0].attrs.get("op").map(String::as_str), Some("entity_resolution"));
        assert!(chooses[0].attrs.contains_key("alt"));
        assert!(chooses[0].attrs.contains_key("usd"));
    }

    #[test]
    fn compile_materializes_the_chosen_alternatives() {
        let planner = calibrated_planner();
        let stats = stats_with_rows(20);
        let world = WorldSpec::generate(3);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 3)));
        // DirectLlm pinned via a strict floor (cache shares accuracy, so use
        // a pipeline pinned `using llm` and check both compile paths).
        let pipeline = Pipeline::new("er").op(LogicalOp::new("entity_resolution")
            .input("records")
            .output("matches")
            .using(ModuleKind::Llm)
            .param("desc", "Determine if the two records refer to the same entity"));
        let planned = planner
            .plan_and_compile(
                &pipeline,
                &stats,
                &Objective::cheapest_dollars(),
                &Tracer::disabled(),
                &mut ctx,
            )
            .unwrap();
        // The cache derives from observed DirectLlm evidence and wins on $.
        assert_eq!(planned.plan.alt_of("entity_resolution"), Some(PhysicalAlt::CachedLlm));
        assert_eq!(planned.physical.ops.len(), 1);
        assert!(planned.physical.ops[0].1.name().ends_with("+cache"));
        // The compiled pipeline is replicable (serve-registry requirement).
        assert!(planned.physical.fresh_instance().is_ok());
        // Low-latency objective on the same evidence still picks the cache
        // (fewer LLM round trips); the record flow stays intact.
        assert_eq!(planned.plan.ops[0].records, 20.0);
    }

    #[test]
    fn match_selectivity_shrinks_downstream_record_flow() {
        let mut planner = calibrated_planner();
        planner.estimator_mut().record_sample(
            CurationStage::Transform,
            PhysicalAlt::DirectLlm,
            &SampleMeasurement {
                total: 10,
                passed: 9,
                errors: 0,
                usage: Usage { calls: 10, tokens_in: 2000, tokens_out: 100, ..Usage::default() },
                sim_latency_ms: 3500,
                wall_ms: 0,
            },
        );
        let stats = stats_with_rows(100).with_match_selectivity(10, 100);
        let pipeline = Pipeline::new("two")
            .op(LogicalOp::new("entity_resolution")
                .input("records")
                .output("matches")
                .using(ModuleKind::Llm)
                .param("desc", "Determine if the two records refer to the same entity"))
            .op(LogicalOp::new("summarize")
                .input("matches")
                .output("out")
                .using(ModuleKind::Llm)
                .param("desc", "summarize the merged record"));
        let plan = planner
            .plan(&pipeline, &stats, &Objective::cheapest_dollars(), &Tracer::disabled())
            .unwrap();
        assert_eq!(plan.ops[0].records, 100.0);
        // Only the 10% of pairs that matched flow into the summarizer.
        assert!((plan.ops[1].records - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pipelines_cannot_be_planned() {
        let planner = Planner::new(Compiler::with_builtins());
        let err = planner
            .plan(
                &Pipeline::new("empty"),
                &stats_with_rows(10),
                &Objective::cheapest_dollars(),
                &Tracer::disabled(),
            )
            .unwrap_err();
        assert_eq!(err, PlanError::EmptyPipeline);
    }
}
