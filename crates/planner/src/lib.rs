//! # lingua-plan — Volcano-style cost-based pipeline planning
//!
//! The paper's optimizer (Validator / Simulator / Connector, §3.2) improves
//! one module at a time. This crate generalizes it into a *planner* that
//! decides how the whole pipeline runs, the way a relational optimizer picks
//! physical operators for a logical query:
//!
//! * **Logical algebra** — every [`lingua_core::LogicalOp`] classifies into a
//!   [`lingua_core::CurationStage`] (Extract, Match, Impute, Filter, Join, or
//!   pass-through Transform).
//! * **Physical alternatives** — each curation op can compile to a
//!   [`physical::PhysicalAlt`]: a direct LLM call, an LLM-generated program
//!   (LLMGC), registered custom code, a memoized cache over the LLM
//!   ([`physical::MemoModule`]), or a supervised `lingua-ml` model
//!   ([`physical::MlPairModule`], the SEED-style distilled student).
//! * **Cost model** — a [`cost::CostEstimator`] turns *observed* evidence
//!   into per-record $ and latency estimates plus accuracy priors: Validator
//!   sample runs ([`calibrate::Calibrator`]), live `lingua-trace` usage
//!   rollups ([`cost::CostEstimator::feed_trace`]), and dataset-shape
//!   statistics ([`lingua_core::DatasetStats`]: cardinality, null rate,
//!   token lengths, match selectivity). No samples → the typed
//!   [`cost::PlanError::InsufficientStats`], never a silent default.
//! * **Plan enumeration** — [`plan::Planner::plan`] minimizes
//!   `w_$ · $ + w_ms · ms` subject to a plan-level accuracy floor
//!   (`Π accuracy ≥ floor`), using memoized Volcano-style search over
//!   per-op-suffix Pareto frontiers ([`plan::best_assignment`]); an
//!   exhaustive reference ([`plan::exhaustive_assignment`]) backs the
//!   property tests.
//! * **Execution** — the winning plan compiles into the existing
//!   [`lingua_core::PhysicalPipeline`] ([`pipeline::PlannedPipeline`]),
//!   registers with `lingua-serve` transparently, and records itself as a
//!   `SpanKind::Plan` span so [`audit::audit_events`] can reconcile
//!   estimated vs actual $ per job.
//!
//! ## Quick start
//!
//! ```no_run
//! use lingua_core::prelude::*;
//! use lingua_plan::{Calibrator, Objective, Planner};
//! use lingua_trace::Tracer;
//!
//! # fn demo(compiler: Compiler, calibrator: Calibrator,
//! #         mut ctx: ExecContext, pipeline: Pipeline, stats: DatasetStats)
//! #         -> Result<(), Box<dyn std::error::Error>> {
//! let mut planner = Planner::new(compiler);
//! // Calibrate candidate implementations on a labeled sample...
//! // calibrator.calibrate(planner.estimator_mut(), stage, alt, &mut module, &mut ctx);
//! let plan = planner.plan(&pipeline, &stats, &Objective::cheapest_dollars(), &Tracer::disabled())?;
//! let planned = planner.compile(&plan, &mut ctx)?;
//! println!("{}", planned.plan.summary());
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod calibrate;
pub mod cost;
pub mod physical;
pub mod pipeline;
pub mod plan;

pub use audit::{audit_events, OpAudit, PlanAudit};
pub use calibrate::Calibrator;
pub use cost::{CostEstimate, CostEstimator, Objective, PlanError};
pub use physical::{MemoModule, MlPairModule, PhysicalAlt, CACHE_SUFFIX};
pub use pipeline::PlannedPipeline;
pub use plan::{
    best_assignment, exhaustive_assignment, Candidate, Plan, PlannedOp, Planner, SearchOutcome,
};
