//! Labeled pairs and train/validation/test splits.

use crate::record::Record;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// A labeled candidate pair for entity resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledPair {
    /// Hidden ground-truth entity id behind the left record.
    pub left_entity: u64,
    /// Hidden ground-truth entity id behind the right record.
    pub right_entity: u64,
    pub left: Record,
    pub right: Record,
    /// True iff the two records refer to the same real-world entity.
    pub label: bool,
}

/// A 3:1:1-style split of labeled pairs (the Magellan repository convention).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairSplit {
    pub schema: Schema,
    pub train: Vec<LabeledPair>,
    pub valid: Vec<LabeledPair>,
    pub test: Vec<LabeledPair>,
}

impl PairSplit {
    /// Partition `pairs` into train/valid/test with the given fractions
    /// (test gets the remainder). The input order is preserved, so shuffle
    /// first if needed.
    pub fn from_fractions(
        schema: Schema,
        pairs: Vec<LabeledPair>,
        train_frac: f64,
        valid_frac: f64,
    ) -> PairSplit {
        let n = pairs.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_valid = (n as f64 * valid_frac).round() as usize;
        let mut iter = pairs.into_iter();
        let train: Vec<_> = iter.by_ref().take(n_train).collect();
        let valid: Vec<_> = iter.by_ref().take(n_valid).collect();
        let test: Vec<_> = iter.collect();
        PairSplit { schema, train, valid, test }
    }

    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// Count of positive labels across all splits.
    pub fn positives(&self) -> usize {
        self.train.iter().chain(&self.valid).chain(&self.test).filter(|p| p.label).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn pair(i: u64, label: bool) -> LabeledPair {
        LabeledPair {
            left_entity: i,
            right_entity: i,
            left: Record::new(vec![Value::Int(i as i64)]),
            right: Record::new(vec![Value::Int(i as i64)]),
            label,
        }
    }

    #[test]
    fn split_fractions() {
        let pairs: Vec<_> = (0..100).map(|i| pair(i, i % 5 == 0)).collect();
        let split = PairSplit::from_fractions(Schema::of_names(["id"]), pairs, 0.6, 0.2);
        assert_eq!(split.train.len(), 60);
        assert_eq!(split.valid.len(), 20);
        assert_eq!(split.test.len(), 20);
        assert_eq!(split.total(), 100);
        assert_eq!(split.positives(), 20);
    }

    #[test]
    fn empty_split() {
        let split = PairSplit::from_fractions(Schema::of_names(["id"]), vec![], 0.6, 0.2);
        assert_eq!(split.total(), 0);
        assert_eq!(split.positives(), 0);
    }
}
