//! Ground-truth world specification.
//!
//! Every experiment dataset in the paper is generated from an explicit,
//! seeded **world**: a universe of entities (products, beers, restaurants,
//! songs) and per-language person-name lexicons. The same world is handed to
//! `lingua-llm-sim` to build the simulated LLM's knowledge base — the LLM
//! "knows" a calibrated fraction of the world, which is exactly how a real
//! pre-trained model relates to real enterprise data: overlapping but not
//! complete knowledge.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Entity facts
// ---------------------------------------------------------------------------

/// Where the manufacturer is recoverable from for an imputation row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrandMention {
    /// Brand token appears verbatim in the product name (easy case).
    InName,
    /// Brand token appears verbatim in the description (easy case).
    InDescription,
    /// Brand appears nowhere; only world knowledge links the product line
    /// to its manufacturer (hard case — the "PlayStation → Sony" situation).
    KnowledgeOnly,
}

/// A product in the world (Buy-dataset style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductFact {
    pub id: u64,
    pub name: String,
    pub description: String,
    pub manufacturer: String,
    /// The product line ("PlayStation 2") that the knowledge base can map to
    /// the manufacturer even when the brand is not mentioned.
    pub product_line: String,
    pub mention: BrandMention,
    pub price: f64,
}

/// A beer (BeerAdvo-RateBeer style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeerFact {
    pub id: u64,
    pub name: String,
    pub brewery: String,
    pub style: String,
    pub abv: f64,
}

/// A restaurant (Fodors-Zagats style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestaurantFact {
    pub id: u64,
    pub name: String,
    pub addr: String,
    pub city: String,
    pub phone: String,
    pub cuisine: String,
}

/// A song (iTunes-Amazon style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SongFact {
    pub id: u64,
    pub title: String,
    pub artist: String,
    pub album: String,
    pub genre: String,
    pub price: f64,
    /// Track length in seconds.
    pub time: u32,
    pub year: u32,
}

// ---------------------------------------------------------------------------
// Languages & lexicons
// ---------------------------------------------------------------------------

/// Languages used by the multilingual name-extraction corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Language {
    English,
    French,
    German,
    Spanish,
    Italian,
    Turkish,
    /// Mandarin, romanized (pinyin) so the corpus stays single-script.
    Chinese,
    /// Japanese, romanized (romaji).
    Japanese,
}

impl Language {
    pub const ALL: [Language; 8] = [
        Language::English,
        Language::French,
        Language::German,
        Language::Spanish,
        Language::Italian,
        Language::Turkish,
        Language::Chinese,
        Language::Japanese,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::French => "fr",
            Language::German => "de",
            Language::Spanish => "es",
            Language::Italian => "it",
            Language::Turkish => "tr",
            Language::Chinese => "zh",
            Language::Japanese => "ja",
        }
    }

    pub fn from_code(code: &str) -> Option<Language> {
        Language::ALL.iter().copied().find(|l| l.code() == code)
    }
}

/// Per-language word material for generating passages and for the LLM's
/// knowledge of names and of language identity signals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lexicon {
    pub given_names: Vec<String>,
    pub surnames: Vec<String>,
    /// High-frequency function words — the signal language detectors use.
    pub function_words: Vec<String>,
    /// Capitalized non-person proper nouns (places, organizations) that act
    /// as distractors for name extraction.
    pub distractors: Vec<String>,
    /// Sentence templates with `{name}`, `{place}`, `{noun}` slots.
    pub templates: Vec<String>,
    /// Common nouns for the `{noun}` slot.
    pub nouns: Vec<String>,
}

// ---------------------------------------------------------------------------
// WorldSpec
// ---------------------------------------------------------------------------

/// The complete ground-truth universe for one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSpec {
    pub seed: u64,
    pub products: Vec<ProductFact>,
    pub beers: Vec<BeerFact>,
    pub restaurants: Vec<RestaurantFact>,
    pub songs: Vec<SongFact>,
    pub lexicons: BTreeMap<Language, Lexicon>,
    /// product line (lowercased) -> manufacturer. The LLM knowledge base is a
    /// calibrated subset of this map.
    pub product_line_owners: BTreeMap<String, String>,
}

/// Sizing knobs for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub products: usize,
    pub beers: usize,
    pub restaurants: usize,
    pub songs: usize,
    /// Fraction of products whose manufacturer is recoverable from the text
    /// itself (the paper's "straightforward cases", ~5/6).
    pub easy_product_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            products: 650,
            beers: 420,
            restaurants: 500,
            songs: 480,
            easy_product_fraction: 5.0 / 6.0,
        }
    }
}

impl WorldSpec {
    /// Generate a world from a seed with default sizes.
    pub fn generate(seed: u64) -> WorldSpec {
        WorldSpec::generate_with(seed, &WorldConfig::default())
    }

    /// Generate a world from a seed and explicit sizes.
    pub fn generate_with(seed: u64, config: &WorldConfig) -> WorldSpec {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1e57_c0de);
        let (products, product_line_owners) = gen_products(&mut rng, config);
        WorldSpec {
            seed,
            products,
            beers: gen_beers(&mut rng, config.beers),
            restaurants: gen_restaurants(&mut rng, config.restaurants),
            songs: gen_songs(&mut rng, config.songs),
            lexicons: build_lexicons(),
            product_line_owners,
        }
    }
}

// ---------------------------------------------------------------------------
// Word banks
// ---------------------------------------------------------------------------

pub(crate) const MANUFACTURERS: &[&str] = &[
    "Sony",
    "Microsoft",
    "Nintendo",
    "Samsung",
    "Logitech",
    "Belkin",
    "Canon",
    "Epson",
    "Garmin",
    "Netgear",
    "Linksys",
    "Panasonic",
    "Toshiba",
    "Philips",
    "Kensington",
    "Targus",
    "SanDisk",
    "Kingston",
    "Seagate",
    "Plantronics",
    "Griffin",
    "Jabra",
    "ViewSonic",
    "Brother",
    "Lexmark",
    "Olympus",
    "Casio",
    "Pioneer",
    "Kenwood",
    "Yamaha",
];

const PRODUCT_LINE_WORDS: &[&str] = &[
    "Vista", "Quantum", "Aero", "Pulse", "Nova", "Helix", "Orion", "Vertex", "Zephyr", "Titan",
    "Lumen", "Echo", "Strata", "Vortex", "Cinder", "Raven", "Falcon", "Comet", "Atlas", "Prism",
    "Drift", "Ember", "Onyx", "Summit", "Nimbus", "Radian", "Krait", "Sable", "Fathom", "Spire",
];

const PRODUCT_TYPES: &[&str] = &[
    "Memory Card",
    "Wireless Mouse",
    "Keyboard",
    "USB Hub",
    "Webcam",
    "Headset",
    "Router",
    "Ink Cartridge",
    "Laser Printer",
    "GPS Navigator",
    "External Drive",
    "Flash Drive",
    "Monitor Stand",
    "Docking Station",
    "Speaker System",
    "Microphone",
    "Game Controller",
    "Carrying Case",
    "Battery Pack",
    "HDMI Cable",
    "Surge Protector",
    "Label Maker",
    "Scanner",
    "Projector",
    "Media Player",
];

const PRODUCT_ADJECTIVES: &[&str] = &[
    "compact",
    "professional",
    "ergonomic",
    "portable",
    "high-speed",
    "rechargeable",
    "ultra-slim",
    "durable",
    "wireless",
    "premium",
    "entry-level",
    "rugged",
];

const BEER_ADJ: &[&str] = &[
    "Hoppy",
    "Golden",
    "Midnight",
    "Rusty",
    "Wandering",
    "Crooked",
    "Velvet",
    "Smoky",
    "Frostbite",
    "Harvest",
    "Burnt",
    "Wild",
    "Old",
    "Double",
    "Imperial",
    "Lazy",
    "Howling",
    "Iron",
    "Copper",
    "Drifting",
];

const BEER_NOUN: &[&str] = &[
    "Badger", "Anvil", "Lantern", "Harbor", "Saddle", "Compass", "Orchard", "Pines", "Raven",
    "Kettle", "Mill", "Quarry", "Meadow", "Tundra", "Canyon", "Summit", "Bramble", "Foundry",
    "Gable", "Sparrow",
];

const BEER_STYLES: &[&str] = &[
    "American IPA",
    "Imperial Stout",
    "Pale Ale",
    "Porter",
    "Hefeweizen",
    "Saison",
    "Pilsner",
    "Amber Ale",
    "Brown Ale",
    "Witbier",
    "Barleywine",
    "ESB",
    "Kolsch",
    "Dubbel",
    "Tripel",
];

const BREWERY_WORDS: &[&str] = &[
    "Stonegate",
    "Riverbend",
    "Halfmoon",
    "Timberline",
    "Ironworks",
    "Bluestem",
    "Cedar Hollow",
    "Northgate",
    "Saltbox",
    "Longtable",
    "Redhook Valley",
    "Gaslight",
    "Millrace",
    "Foxglove",
    "Tidewater",
    "Granite Peak",
    "Wolfpine",
    "Elderflower",
    "Kingfisher",
    "Slate Creek",
];

const RESTAURANT_FIRST: &[&str] = &[
    "Cafe",
    "Chez",
    "Trattoria",
    "Bistro",
    "The",
    "La",
    "El",
    "Little",
    "Golden",
    "Blue",
    "Royal",
    "Old Town",
];

const RESTAURANT_SECOND: &[&str] = &[
    "Luna", "Veranda", "Marquis", "Cypress", "Magnolia", "Pavilion", "Terrace", "Lantern",
    "Garden", "Harvest", "Olive", "Saffron", "Juniper", "Windmill", "Cellar", "Arbor", "Meridian",
    "Tavern", "Grove", "Dragon", "Pearl", "Vine", "Fig", "Sparrow", "Canal",
];

const CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "san francisco",
    "chicago",
    "atlanta",
    "boston",
    "seattle",
    "denver",
    "austin",
    "portland",
    "miami",
    "new orleans",
];

const STREETS: &[&str] = &[
    "Main St.",
    "Oak Ave.",
    "Sunset Blvd.",
    "5th Ave.",
    "Melrose Ave.",
    "Broadway",
    "Market St.",
    "Pine St.",
    "Lincoln Rd.",
    "Canal St.",
    "Peachtree St.",
    "Union Sq.",
];

const CUISINES: &[&str] = &[
    "italian",
    "french",
    "american",
    "chinese",
    "japanese",
    "mexican",
    "thai",
    "mediterranean",
    "steakhouses",
    "seafood",
    "indian",
    "bbq",
];

const SONG_WORD_A: &[&str] = &[
    "Midnight",
    "Broken",
    "Electric",
    "Golden",
    "Silent",
    "Neon",
    "Paper",
    "Hollow",
    "Crimson",
    "Fading",
    "Wildest",
    "Lonely",
    "Burning",
    "Frozen",
    "Gravity",
    "Shattered",
    "Velvet",
    "Distant",
    "Restless",
    "Phantom",
];

const SONG_WORD_B: &[&str] = &[
    "Hearts",
    "Avenue",
    "Skyline",
    "Rivers",
    "Echoes",
    "Horizon",
    "Dreams",
    "Shadows",
    "Fires",
    "Letters",
    "Motels",
    "Daylight",
    "Static",
    "Harbors",
    "Mirrors",
    "Sirens",
    "Gardens",
    "Thunder",
    "Satellites",
    "Reverie",
];

const ARTIST_FIRST: &[&str] = &[
    "Ivy", "Marlowe", "Juno", "Calder", "Sable", "Wren", "Indigo", "Harlan", "Vesper", "Lux",
    "Rhodes", "Arden", "Onyx", "Piper", "Soren",
];

const ARTIST_SECOND: &[&str] = &[
    "& the Night Owls",
    "Parade",
    "Collective",
    "Brothers",
    "Quartet",
    "City",
    "Machine",
    "Republic",
    "Avenue",
    "Syndicate",
    "Foxes",
    "Archives",
    "Motel",
    "Cartel",
    "Union",
];

const GENRES: &[&str] = &[
    "Pop",
    "Rock",
    "Indie Rock",
    "Hip-Hop/Rap",
    "Electronic",
    "Country",
    "R&B/Soul",
    "Alternative",
    "Dance",
    "Folk",
];

// ---------------------------------------------------------------------------
// Entity generation
// ---------------------------------------------------------------------------

fn pick<'a, R: Rng>(rng: &mut R, bank: &'a [&'a str]) -> &'a str {
    bank[rng.gen_range(0..bank.len())]
}

fn gen_products(
    rng: &mut StdRng,
    config: &WorldConfig,
) -> (Vec<ProductFact>, BTreeMap<String, String>) {
    // Each manufacturer owns a few product lines. A product line name never
    // contains the brand token, so "line-only" products are the hard cases.
    let mut line_owner: BTreeMap<String, String> = BTreeMap::new();
    let mut lines_by_maker: Vec<(String, Vec<String>)> = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    for maker in MANUFACTURERS {
        let n_lines = rng.gen_range(1..=3);
        let mut lines = Vec::new();
        for _ in 0..n_lines {
            // Lines always carry a numeric series suffix so no line is a
            // substring of another (which would make text-based line lookup
            // ambiguous between manufacturers).
            let line = loop {
                let w = pick(rng, PRODUCT_LINE_WORDS);
                let suffix = rng.gen_range(1..=9) * 100;
                let candidate = format!("{w} {suffix}");
                if used.insert(candidate.to_lowercase()) {
                    break candidate;
                }
            };
            line_owner.insert(line.to_lowercase(), maker.to_string());
            lines.push(line);
        }
        lines_by_maker.push((maker.to_string(), lines));
    }

    // Brand popularity is Zipf-like: a few manufacturers dominate the
    // catalogue. (This is also what gives statistical imputers their
    // nonzero prior-mode accuracy, as in the real Buy dataset.)
    let weights: Vec<f64> = (0..lines_by_maker.len()).map(|i| 1.0 / (i as f64 + 2.0)).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut products = Vec::with_capacity(config.products);
    for id in 0..config.products as u64 {
        let mut draw = rng.gen_range(0.0..total_weight);
        let mut maker_index = 0;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                maker_index = i;
                break;
            }
            draw -= w;
        }
        let (maker, lines) = &lines_by_maker[maker_index];
        let line = &lines[rng.gen_range(0..lines.len())];
        let ptype = pick(rng, PRODUCT_TYPES);
        let adj = pick(rng, PRODUCT_ADJECTIVES);
        let model = format!("{}{}", (b'A' + rng.gen_range(0..26u8)) as char, rng.gen_range(10..99));

        let mention = if rng.gen_bool(config.easy_product_fraction) {
            if rng.gen_bool(0.6) {
                BrandMention::InName
            } else {
                BrandMention::InDescription
            }
        } else {
            BrandMention::KnowledgeOnly
        };

        let name = match mention {
            BrandMention::InName => format!("{maker} {line} {ptype} {model}"),
            _ => format!("{line} {ptype} {model}"),
        };
        let description = match mention {
            BrandMention::InDescription => format!(
                "{adj} {lptype} from {maker}'s {line} series, model {model}",
                lptype = ptype.to_lowercase()
            ),
            _ => format!(
                "{adj} {lptype}, {line} series, model {model}",
                lptype = ptype.to_lowercase()
            ),
        };
        products.push(ProductFact {
            id,
            name,
            description,
            manufacturer: maker.clone(),
            product_line: line.clone(),
            mention,
            price: (rng.gen_range(500..30000) as f64) / 100.0,
        });
    }
    (products, line_owner)
}

fn gen_beers(rng: &mut StdRng, n: usize) -> Vec<BeerFact> {
    let mut beers = Vec::with_capacity(n);
    let mut seen = std::collections::BTreeSet::new();
    while beers.len() < n {
        let brewery = format!("{} Brewing", pick(rng, BREWERY_WORDS));
        let style = pick(rng, BEER_STYLES);
        let name = format!("{} {}", pick(rng, BEER_ADJ), pick(rng, BEER_NOUN));
        let key = format!("{brewery}|{name}");
        if !seen.insert(key) {
            continue;
        }
        beers.push(BeerFact {
            id: beers.len() as u64,
            name,
            brewery,
            style: style.to_string(),
            abv: (rng.gen_range(35..120) as f64) / 10.0,
        });
    }
    beers
}

fn gen_restaurants(rng: &mut StdRng, n: usize) -> Vec<RestaurantFact> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::BTreeSet::new();
    while out.len() < n {
        let name = format!("{} {}", pick(rng, RESTAURANT_FIRST), pick(rng, RESTAURANT_SECOND));
        let city = pick(rng, CITIES);
        let key = format!("{name}|{city}");
        if !seen.insert(key) {
            continue;
        }
        let addr = format!("{} {}", rng.gen_range(1..999), pick(rng, STREETS));
        let phone = format!(
            "{}-{}-{:04}",
            rng.gen_range(201..989),
            rng.gen_range(200..999),
            rng.gen_range(0..9999)
        );
        out.push(RestaurantFact {
            id: out.len() as u64,
            name,
            addr,
            city: city.to_string(),
            phone,
            cuisine: pick(rng, CUISINES).to_string(),
        });
    }
    out
}

fn gen_songs(rng: &mut StdRng, n: usize) -> Vec<SongFact> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::BTreeSet::new();
    while out.len() < n {
        let artist = format!("{} {}", pick(rng, ARTIST_FIRST), pick(rng, ARTIST_SECOND));
        let title = format!("{} {}", pick(rng, SONG_WORD_A), pick(rng, SONG_WORD_B));
        let key = format!("{artist}|{title}");
        if !seen.insert(key) {
            continue;
        }
        let album = format!("{} {}", pick(rng, SONG_WORD_A), pick(rng, SONG_WORD_B));
        out.push(SongFact {
            id: out.len() as u64,
            title,
            artist,
            album,
            genre: pick(rng, GENRES).to_string(),
            price: if rng.gen_bool(0.7) { 0.99 } else { 1.29 },
            time: rng.gen_range(120..420),
            year: rng.gen_range(1995..2023),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Lexicons
// ---------------------------------------------------------------------------

macro_rules! strs {
    ($($s:expr),* $(,)?) => { vec![$($s.to_string()),*] };
}

fn build_lexicons() -> BTreeMap<Language, Lexicon> {
    let mut map = BTreeMap::new();
    map.insert(
        Language::English,
        Lexicon {
            given_names: strs![
                "James",
                "Mary",
                "Robert",
                "Patricia",
                "John",
                "Jennifer",
                "Michael",
                "Linda",
                "David",
                "Elizabeth",
                "William",
                "Barbara",
                "Richard",
                "Susan",
                "Joseph",
                "Jessica",
                "Thomas",
                "Sarah",
                "Henry",
                "Karen",
                "Daniel",
                "Nancy",
                "Matthew",
                "Lisa",
                "Anthony",
                "Betty",
                "Mark",
                "Margaret",
                "Steven",
                "Sandra"
            ],
            surnames: strs![
                "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
                "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "Martin", "Lee",
                "Thompson", "White", "Harris", "Clark", "Lewis", "Walker", "Hall", "Young", "King"
            ],
            function_words: strs![
                "the",
                "and",
                "of",
                "to",
                "in",
                "that",
                "with",
                "for",
                "was",
                "on",
                "at",
                "by",
                "from",
                "this",
                "yesterday",
                "meeting",
                "said"
            ],
            distractors: strs![
                "London",
                "Chicago",
                "Amazon",
                "Harvard",
                "Congress",
                "October",
                "Broadway",
                "Microsoft",
                "Thames",
                "Oxford"
            ],
            templates: strs![
                "Yesterday {name} met with the board of {place} to discuss the {noun}.",
                "According to {name}, the {noun} will be delayed until next quarter.",
                "{name} and {name2} presented the new {noun} at the {place} office.",
                "The committee thanked {name} for organizing the {noun} in {place}.",
                "A report by {name} criticized the {noun} announced in {place}.",
                "During the interview, {name} said the {noun} exceeded expectations."
            ],
            nouns: strs![
                "budget",
                "merger",
                "festival",
                "report",
                "contract",
                "project",
                "campaign",
                "audit",
                "conference",
                "prototype"
            ],
        },
    );
    map.insert(
        Language::French,
        Lexicon {
            given_names: strs![
                "Jean", "Marie", "Pierre", "Camille", "Luc", "Sophie", "Antoine", "Claire",
                "Julien", "Amélie", "Nicolas", "Élodie", "Mathieu", "Chloé", "Olivier", "Margaux",
                "Thierry", "Juliette", "Pascal", "Inès"
            ],
            surnames: strs![
                "Martin", "Bernard", "Dubois", "Moreau", "Laurent", "Lefebvre", "Leroy", "Roux",
                "Fournier", "Girard", "Bonnet", "Dupont", "Lambert", "Rousseau", "Blanc"
            ],
            function_words: strs![
                "le", "la", "les", "de", "des", "et", "dans", "avec", "pour", "sur", "hier",
                "selon", "réunion", "était", "sera", "une"
            ],
            distractors: strs![
                "Paris",
                "Lyon",
                "Marseille",
                "Sorbonne",
                "Provence",
                "Louvre",
                "Bordeaux",
                "Normandie"
            ],
            templates: strs![
                "Hier, {name} a rencontré le conseil de {place} pour discuter du {noun}.",
                "Selon {name}, le {noun} sera reporté au prochain trimestre.",
                "{name} et {name2} ont présenté le nouveau {noun} au bureau de {place}.",
                "Le comité a remercié {name} pour avoir organisé le {noun} à {place}.",
                "Un rapport de {name} a critiqué le {noun} annoncé à {place}."
            ],
            nouns: strs![
                "budget",
                "projet",
                "festival",
                "rapport",
                "contrat",
                "programme",
                "audit",
                "congrès",
                "prototype"
            ],
        },
    );
    map.insert(
        Language::German,
        Lexicon {
            given_names: strs![
                "Hans",
                "Anna",
                "Karl",
                "Greta",
                "Friedrich",
                "Lena",
                "Stefan",
                "Ingrid",
                "Jürgen",
                "Sabine",
                "Wolfgang",
                "Heike",
                "Matthias",
                "Ursula",
                "Dieter",
                "Katrin",
                "Rainer",
                "Monika",
                "Lukas",
                "Franziska"
            ],
            surnames: strs![
                "Müller",
                "Schmidt",
                "Schneider",
                "Fischer",
                "Weber",
                "Meyer",
                "Wagner",
                "Becker",
                "Schulz",
                "Hoffmann",
                "Koch",
                "Bauer",
                "Richter",
                "Klein",
                "Wolf"
            ],
            function_words: strs![
                "der", "die", "das", "und", "mit", "für", "auf", "von", "gestern", "wird", "wurde",
                "eine", "dem", "den", "sich", "nicht"
            ],
            distractors: strs![
                "Berlin",
                "München",
                "Hamburg",
                "Bundestag",
                "Bayern",
                "Rhein",
                "Frankfurt",
                "Siemens"
            ],
            templates: strs![
                "Gestern traf {name} den Vorstand in {place}, um das {noun} zu besprechen.",
                "Laut {name} wird das {noun} auf das nächste Quartal verschoben.",
                "{name} und {name2} stellten das neue {noun} im Büro in {place} vor.",
                "Der Ausschuss dankte {name} für die Organisation des {noun} in {place}.",
                "Ein Bericht von {name} kritisierte das in {place} angekündigte {noun}."
            ],
            nouns: strs![
                "Budget",
                "Projekt",
                "Festival",
                "Gutachten",
                "Abkommen",
                "Programm",
                "Audit",
                "Treffen",
                "Modell"
            ],
        },
    );
    map.insert(
        Language::Spanish,
        Lexicon {
            given_names: strs![
                "José",
                "María",
                "Antonio",
                "Carmen",
                "Manuel",
                "Lucía",
                "Francisco",
                "Isabel",
                "Javier",
                "Pilar",
                "Miguel",
                "Teresa",
                "Alejandro",
                "Rosa",
                "Fernando",
                "Elena",
                "Diego",
                "Marta",
                "Pablo",
                "Sofía"
            ],
            surnames: strs![
                "García",
                "Rodríguez",
                "González",
                "Fernández",
                "López",
                "Martínez",
                "Sánchez",
                "Pérez",
                "Gómez",
                "Martín",
                "Jiménez",
                "Ruiz",
                "Hernández",
                "Díaz",
                "Moreno"
            ],
            function_words: strs![
                "el", "la", "los", "de", "del", "y", "con", "para", "sobre", "ayer", "según",
                "será", "una", "que", "por", "reunión"
            ],
            distractors: strs![
                "Madrid",
                "Barcelona",
                "Sevilla",
                "Andalucía",
                "Catalunya",
                "Prado",
                "Valencia",
                "Bilbao"
            ],
            templates: strs![
                "Ayer {name} se reunió con el consejo de {place} para discutir el {noun}.",
                "Según {name}, el {noun} se retrasará hasta el próximo trimestre.",
                "{name} y {name2} presentaron el nuevo {noun} en la oficina de {place}.",
                "El comité agradeció a {name} por organizar el {noun} en {place}.",
                "Un informe de {name} criticó el {noun} anunciado en {place}."
            ],
            nouns: strs![
                "presupuesto",
                "proyecto",
                "festival",
                "informe",
                "contrato",
                "programa",
                "congreso",
                "prototipo"
            ],
        },
    );
    map.insert(
        Language::Italian,
        Lexicon {
            given_names: strs![
                "Giulia",
                "Marco",
                "Francesca",
                "Luca",
                "Alessandro",
                "Chiara",
                "Matteo",
                "Valentina",
                "Davide",
                "Sara",
                "Simone",
                "Martina",
                "Andrea",
                "Elisa",
                "Lorenzo",
                "Silvia",
                "Riccardo",
                "Federica"
            ],
            surnames: strs![
                "Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo", "Ricci",
                "Marino", "Greco", "Bruno", "Gallo", "Conti", "De Luca", "Costa"
            ],
            function_words: strs![
                "il", "la", "gli", "di", "del", "e", "con", "per", "su", "ieri", "secondo", "sarà",
                "una", "che", "riunione", "nuovo"
            ],
            distractors: strs![
                "Roma", "Milano", "Napoli", "Toscana", "Venezia", "Vaticano", "Torino", "Firenze"
            ],
            templates: strs![
                "Ieri {name} ha incontrato il consiglio di {place} per discutere il {noun}.",
                "Secondo {name}, il {noun} sarà rinviato al prossimo trimestre.",
                "{name} e {name2} hanno presentato il nuovo {noun} nell'ufficio di {place}.",
                "Il comitato ha ringraziato {name} per aver organizzato il {noun} a {place}.",
                "Un rapporto di {name} ha criticato il {noun} annunciato a {place}."
            ],
            nouns: strs![
                "bilancio",
                "progetto",
                "festival",
                "rapporto",
                "contratto",
                "programma",
                "congresso",
                "prototipo"
            ],
        },
    );
    map.insert(
        Language::Turkish,
        Lexicon {
            given_names: strs![
                "Mehmet", "Ayşe", "Mustafa", "Fatma", "Ahmet", "Emine", "Ali", "Hatice", "Hüseyin",
                "Zeynep", "Hasan", "Elif", "İbrahim", "Meryem", "Osman", "Şerife", "Yusuf",
                "Zehra"
            ],
            surnames: strs![
                "Yılmaz",
                "Kaya",
                "Demir",
                "Çelik",
                "Şahin",
                "Yıldız",
                "Yıldırım",
                "Öztürk",
                "Aydın",
                "Özdemir",
                "Arslan",
                "Doğan",
                "Kılıç",
                "Aslan",
                "Çetin"
            ],
            function_words: strs![
                "ve",
                "bir",
                "bu",
                "için",
                "ile",
                "dün",
                "göre",
                "olarak",
                "daha",
                "çok",
                "toplantı",
                "yeni",
                "olan",
                "gibi",
                "kadar"
            ],
            distractors: strs![
                "İstanbul",
                "Ankara",
                "İzmir",
                "Boğaziçi",
                "Anadolu",
                "Kapadokya",
                "Bursa",
                "Antalya"
            ],
            templates: strs![
                "Dün {name}, {noun} konusunu görüşmek için {place} kurulu ile buluştu.",
                "{name} göre {noun} gelecek çeyreğe ertelenecek.",
                "{name} ve {name2}, {place} ofisinde yeni {noun} sundu.",
                "Komite, {place} şehrindeki {noun} organizasyonu için {name} teşekkür etti.",
                "{name} tarafından hazırlanan rapor, {place} açıklanan {noun} eleştirdi."
            ],
            nouns: strs![
                "bütçe",
                "proje",
                "festival",
                "rapor",
                "sözleşme",
                "program",
                "kongre",
                "prototip"
            ],
        },
    );
    map.insert(
        Language::Chinese,
        Lexicon {
            given_names: strs![
                "Wei", "Fang", "Jun", "Min", "Lei", "Yan", "Qiang", "Xiu", "Hao", "Ling", "Peng",
                "Hui", "Bo", "Jing", "Tao", "Na", "Gang", "Mei"
            ],
            surnames: strs![
                "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu", "Zhou", "Xu",
                "Sun", "Ma", "Zhu", "Hu"
            ],
            function_words: strs![
                "de", "shi", "zai", "he", "yu", "zuotian", "genju", "jiang", "yige", "huiyi",
                "xin", "gongsi", "biaoshi", "jinxing", "guanyu"
            ],
            distractors: strs![
                "Beijing",
                "Shanghai",
                "Shenzhen",
                "Tsinghua",
                "Guangzhou",
                "Hangzhou",
                "Chengdu",
                "Nanjing"
            ],
            templates: strs![
                "Zuotian {name} zai {place} yu dongshihui taolun le {noun}.",
                "Genju {name} de shuofa, {noun} jiang tuichi dao xia jidu.",
                "{name} he {name2} zai {place} bangongshi zhanshi le xin {noun}.",
                "Weiyuanhui ganxie {name} zai {place} zuzhi le {noun}.",
                "{name} de baogao piping le zai {place} xuanbu de {noun}."
            ],
            nouns: strs![
                "yusuan", "xiangmu", "jiehui", "baogao", "hetong", "jihua", "dahui", "yangji"
            ],
        },
    );
    map.insert(
        Language::Japanese,
        Lexicon {
            given_names: strs![
                "Haruto", "Yui", "Sota", "Aoi", "Ren", "Hina", "Yuto", "Sakura", "Daiki", "Mio",
                "Kaito", "Rin", "Takumi", "Yuna", "Riku", "Koharu"
            ],
            surnames: strs![
                "Sato",
                "Suzuki",
                "Takahashi",
                "Tanaka",
                "Watanabe",
                "Ito",
                "Yamamoto",
                "Nakamura",
                "Kobayashi",
                "Kato",
                "Yoshida",
                "Yamada",
                "Sasaki",
                "Matsumoto",
                "Inoue"
            ],
            function_words: strs![
                "no",
                "wa",
                "ni",
                "wo",
                "ga",
                "to",
                "kinou",
                "niyoruto",
                "atarashii",
                "kaigi",
                "de",
                "shita",
                "sareru",
                "made",
                "kara"
            ],
            distractors: strs![
                "Tokyo", "Osaka", "Kyoto", "Hokkaido", "Shibuya", "Nagoya", "Fukuoka", "Yokohama"
            ],
            templates: strs![
                "Kinou {name} wa {place} de torishimariyaku to {noun} ni tsuite hanashita.",
                "{name} niyoruto, {noun} wa jiki shihanki made enki sareru.",
                "{name} to {name2} wa {place} no ofisu de atarashii {noun} wo happyou shita.",
                "Iinkai wa {place} de {noun} wo kaisai shita {name} ni kansha shita.",
                "{name} no houkokusho wa {place} de happyou sareta {noun} wo hihan shita."
            ],
            nouns: strs![
                "yosan",
                "purojekuto",
                "matsuri",
                "houkoku",
                "keiyaku",
                "keikaku",
                "taikai",
                "shisaku"
            ],
        },
    );
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = WorldSpec::generate(7);
        let b = WorldSpec::generate(7);
        assert_eq!(a.products, b.products);
        assert_eq!(a.beers, b.beers);
        assert_eq!(a.restaurants, b.restaurants);
        assert_eq!(a.songs, b.songs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldSpec::generate(1);
        let b = WorldSpec::generate(2);
        assert_ne!(a.products, b.products);
    }

    #[test]
    fn sizes_match_config() {
        let config = WorldConfig {
            products: 50,
            beers: 20,
            restaurants: 30,
            songs: 10,
            ..Default::default()
        };
        let w = WorldSpec::generate_with(3, &config);
        assert_eq!(w.products.len(), 50);
        assert_eq!(w.beers.len(), 20);
        assert_eq!(w.restaurants.len(), 30);
        assert_eq!(w.songs.len(), 10);
    }

    #[test]
    fn easy_fraction_is_respected() {
        let w = WorldSpec::generate(11);
        let easy = w.products.iter().filter(|p| p.mention != BrandMention::KnowledgeOnly).count();
        let frac = easy as f64 / w.products.len() as f64;
        assert!((frac - 5.0 / 6.0).abs() < 0.06, "easy fraction {frac}");
    }

    #[test]
    fn brand_mentions_are_honest() {
        let w = WorldSpec::generate(13);
        for p in &w.products {
            match p.mention {
                BrandMention::InName => {
                    assert!(p.name.contains(&p.manufacturer), "{p:?}")
                }
                BrandMention::InDescription => {
                    assert!(p.description.contains(&p.manufacturer), "{p:?}")
                }
                BrandMention::KnowledgeOnly => {
                    assert!(!p.name.contains(&p.manufacturer), "{p:?}");
                    assert!(!p.description.contains(&p.manufacturer), "{p:?}");
                }
            }
        }
    }

    #[test]
    fn product_lines_map_to_owners() {
        let w = WorldSpec::generate(17);
        for p in &w.products {
            assert_eq!(
                w.product_line_owners.get(&p.product_line.to_lowercase()),
                Some(&p.manufacturer),
                "line {} should belong to {}",
                p.product_line,
                p.manufacturer
            );
        }
    }

    #[test]
    fn all_languages_have_lexicons() {
        let w = WorldSpec::generate(19);
        for lang in Language::ALL {
            let lex = w.lexicons.get(&lang).expect("lexicon");
            assert!(!lex.given_names.is_empty());
            assert!(!lex.surnames.is_empty());
            assert!(!lex.function_words.is_empty());
            assert!(!lex.templates.is_empty());
        }
    }

    #[test]
    fn language_codes_roundtrip() {
        for lang in Language::ALL {
            assert_eq!(Language::from_code(lang.code()), Some(lang));
        }
        assert_eq!(Language::from_code("xx"), None);
    }

    #[test]
    fn entities_are_unique() {
        let w = WorldSpec::generate(23);
        let mut keys: Vec<String> =
            w.beers.iter().map(|b| format!("{}|{}", b.brewery, b.name)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), w.beers.len());
    }
}
