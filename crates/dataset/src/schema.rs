//! Table schemas: named, typed columns.

use crate::error::DataError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declared type of a column. `Any` admits every value (including mixed types),
/// which is the common case for scraped / uncurated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    Any,
    Bool,
    Int,
    Float,
    Str,
}

impl ColumnType {
    /// Whether `value` conforms to this column type. `Null` conforms to all
    /// types; `Int` conforms to `Float` columns.
    pub fn admits(self, value: &crate::Value) -> bool {
        use crate::Value as V;
        matches!(
            (self, value),
            (_, V::Null)
                | (ColumnType::Any, _)
                | (ColumnType::Bool, V::Bool(_))
                | (ColumnType::Int, V::Int(_))
                | (ColumnType::Float, V::Float(_) | V::Int(_))
                | (ColumnType::Str, V::Str(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ColumnType::Any => "any",
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
        };
        f.write_str(name)
    }
}

/// An ordered list of `(name, type)` columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema where every column has type `Any`.
    pub fn of_names<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema { columns: names.into_iter().map(|n| (n.into(), ColumnType::Any)).collect() }
    }

    /// Build a schema from explicit `(name, type)` pairs.
    pub fn new(columns: Vec<(String, ColumnType)>) -> Self {
        Schema { columns }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name (case-sensitive first, then case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .or_else(|| self.columns.iter().position(|(n, _)| n.eq_ignore_ascii_case(name)))
    }

    /// Index of a column, or an [`DataError::UnknownColumn`] error.
    pub fn require(&self, name: &str) -> Result<usize, DataError> {
        self.index_of(name).ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    pub fn name(&self, index: usize) -> &str {
        &self.columns[index].0
    }

    pub fn column_type(&self, index: usize) -> ColumnType {
        self.columns[index].1
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.columns.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// A new schema containing only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema { columns: indices.iter().map(|&i| self.columns[i].clone()).collect() }
    }

    /// Append a column, returning its index.
    pub fn push(&mut self, name: impl Into<String>, ty: ColumnType) -> usize {
        self.columns.push((name.into(), ty));
        self.columns.len() - 1
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (name, ty)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {ty}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn of_names_builds_any_columns() {
        let schema = Schema::of_names(["a", "b"]);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.column_type(0), ColumnType::Any);
        assert_eq!(schema.index_of("b"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
    }

    #[test]
    fn index_of_falls_back_to_case_insensitive() {
        let schema = Schema::of_names(["Name", "name_lower"]);
        assert_eq!(schema.index_of("Name"), Some(0));
        assert_eq!(schema.index_of("name"), Some(0));
        assert_eq!(schema.index_of("NAME_LOWER"), Some(1));
    }

    #[test]
    fn admits_covers_coercions() {
        assert!(ColumnType::Float.admits(&Value::Int(3)));
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(!ColumnType::Int.admits(&Value::Str("x".into())));
        assert!(ColumnType::Any.admits(&Value::Bool(true)));
    }

    #[test]
    fn project_keeps_order() {
        let schema = Schema::of_names(["a", "b", "c"]);
        let p = schema.project(&[2, 0]);
        assert_eq!(p.name(0), "c");
        assert_eq!(p.name(1), "a");
    }

    #[test]
    fn display_is_compact() {
        let schema = Schema::new(vec![("id".into(), ColumnType::Int)]);
        assert_eq!(schema.to_string(), "(id: int)");
    }
}
